"""Fig. 8: per-link partial gradient sizes (see repro.experiments.figures.fig08)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig08(benchmark):
    run_figure(benchmark, figures.fig08)
