"""Micro-benchmarks of the hot kernels.

Unlike the per-figure benches (one full experiment per run), these are
classic pytest-benchmark microbenchmarks with many rounds: the NumPy
kernels the simulator spends its wall-clock time in. Regressions here
multiply directly into every experiment's runtime.

CI runs this file in smoke mode (``REPRO_BENCH_SMOKE=1`` with
``--benchmark-disable``): every benchmark executes once for
correctness, and the wall-clock threshold assertions are skipped.
"""

import os
import time

import numpy as np
import pytest

from repro.cluster.simclock import SimClock
from repro.core.config import MaxNConfig
from repro.core.maxn import select_max_n
from repro.core.transmission import (
    GradientHistograms,
    TransmissionPlanner,
    _fit_n_bisect,
    fit_n_to_budget,
)
from repro.nn.layers.conv import Conv2D, im2col
from repro.nn.models import cipher_cnn
from repro.obs.profile import Profiler, activate

RNG = np.random.default_rng(0)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.fixture(scope="module")
def big_grad():
    return RNG.normal(size=786_432).astype(np.float32)  # a 3072x256 dense layer


@pytest.fixture(scope="module")
def many_links():
    """32 destinations with distinct bandwidths (no two budgets equal)."""
    return {dst: 1.5 * (dst + 1) for dst in range(32)}


@pytest.fixture(scope="module")
def conv_batch():
    return RNG.normal(size=(32, 10, 24, 24)).astype(np.float32)


def test_maxn_select_768k(benchmark, big_grad):
    idx, vals = benchmark(select_max_n, big_grad, 50.0)
    assert idx.size > 0


def test_budget_fit_768k(benchmark, big_grad):
    grads = {"w": big_grad}
    n = benchmark(fit_n_to_budget, grads, 500_000.0)
    assert 0.85 <= n <= 100.0


def test_batched_plan_32_links(benchmark, big_grad, many_links):
    """One full plan over 32 heterogeneous links: histograms built once,
    all budgets answered by one vectorized fit, payloads shared by bin."""
    planner = TransmissionPlanner(MaxNConfig())
    grads = {"w": big_grad}
    plans = benchmark(planner.plan, grads, many_links, 0.001)
    assert len(plans) == 32


def test_histogram_build_768k(benchmark, big_grad):
    hist = benchmark(GradientHistograms, {"w": big_grad})
    assert hist.bytes_at(100.0) > 0


def test_plan_builds_histograms_once(big_grad, many_links):
    """Correctness of the batching itself (always runs, smoke included):
    a 32-link plan enters the histogram scope exactly once and never
    falls back to the per-link fit."""
    planner = TransmissionPlanner(MaxNConfig())
    prof = Profiler()
    # pairs of links share a bandwidth -> 16 distinct budgets over 32 links
    paired = {dst: 1.5 * (dst // 2 + 1) for dst in range(32)}
    with activate(prof):
        plans = planner.plan({"w": big_grad}, paired, 0.001)
    assert len(plans) == 32
    calls, _ = prof.totals()["maxn/histograms"]
    assert calls == 1
    assert "maxn/fit_n_to_budget" not in prof.totals()
    # payload sharing: at most one selection per distinct budget
    select_calls, _ = prof.totals()["maxn/select_payload"]
    assert select_calls <= 16


@pytest.mark.skipif(SMOKE, reason="wall-clock threshold; skipped in CI smoke")
def test_batched_plan_speedup(big_grad, many_links):
    """The batched fit must beat a per-link bisection loop (the
    pre-batching planner) by >= 3x on a 32-link plan."""
    grads = {"w": big_grad}
    planner = TransmissionPlanner(MaxNConfig())
    budgets = [planner.budget_bytes(bw, 0.001) for bw in many_links.values()]

    def legacy():
        for b in budgets:
            _fit_n_bisect(grads, b)

    def batched():
        GradientHistograms(grads).fit_many(budgets)

    def best_of(fn, reps=5):
        fn()  # warm-up
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_legacy = best_of(legacy)
    t_batched = best_of(batched)
    assert t_legacy / t_batched >= 3.0, (
        f"batched fit only {t_legacy / t_batched:.1f}x faster "
        f"({t_legacy * 1e3:.2f}ms vs {t_batched * 1e3:.2f}ms)"
    )


def test_im2col_cipher_shape(benchmark, conv_batch):
    cols, _ = benchmark(im2col, conv_batch, 3, 3, 1, 1)
    assert cols.shape == (32 * 24 * 24, 10 * 9)


def test_conv_forward(benchmark, conv_batch):
    layer = Conv2D(10, 20, 3, np.random.default_rng(1))
    out = benchmark(layer.forward, conv_batch, False)
    assert out.shape == (32, 20, 24, 24)


def test_conv_backward(benchmark, conv_batch):
    layer = Conv2D(10, 20, 3, np.random.default_rng(1))
    out = layer.forward(conv_batch, True)
    dout = RNG.normal(size=out.shape).astype(np.float32)

    def fwd_bwd():
        layer.forward(conv_batch, True)
        return layer.backward(dout)

    dx = benchmark(fwd_bwd)
    assert dx.shape == conv_batch.shape


def test_cipher_training_step(benchmark):
    model = cipher_cnn(np.random.default_rng(2))
    x = RNG.normal(size=(32, 1, 24, 24)).astype(np.float32)
    y = RNG.integers(0, 10, size=32)

    def step():
        loss, grads = model.loss_and_grads(x, y)
        model.apply_grads(grads, lr=0.01)
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_sparse_apply_100k(benchmark):
    model = cipher_cnn(np.random.default_rng(3))
    name = max(model.variable_names, key=lambda n: model.get_variable(n).size)
    size = model.get_variable(name).size
    idx = np.sort(RNG.choice(size, size=min(100_000, size // 2), replace=False)).astype(np.int64)
    vals = RNG.normal(size=idx.size).astype(np.float32)

    benchmark(model.apply_sparse_grads, {name: (idx, vals)}, lr=0.01, coeff=0.5)


def test_event_clock_throughput(benchmark):
    def pump():
        clk = SimClock()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                clk.schedule_in(0.001, tick)

        clk.schedule(0.0, tick)
        clk.run_until(1e6)
        return count[0]

    assert benchmark(pump) == 20_000
