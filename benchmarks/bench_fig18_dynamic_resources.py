"""Fig. 18: dynamic resource changes (see repro.experiments.figures.fig18)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig18(benchmark):
    run_figure(benchmark, figures.fig18)
