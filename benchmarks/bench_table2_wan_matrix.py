"""Table 2: AWS inter-region WAN bandwidth matrix (see repro.experiments.figures.table2)."""

from repro.experiments import figures

from conftest import run_figure


def test_table2(benchmark):
    run_figure(benchmark, figures.table2)
