"""Event-dispatch scaling benchmark: calendar queue vs binary heap.

Two ladders over workers in {16, 128, 1000}, each run once per
scheduler kind — the production calendar queue and the frozen
:class:`~repro.cluster.simclock.HeapSimClock` baseline:

* ``training`` — the full ``Stress 1k`` preset (truncated fleet,
  ``hier:8`` overlay so per-worker degree stays bounded). End-to-end
  events/sec here is dominated by the event *payloads* (NumPy training
  steps), so the scheduler swap moves it only marginally; it is
  recorded to show the whole-system cost at scale, with peak
  heap/bucket occupancy straight off ``clock.occupancy()``.
* ``dispatch`` — the same event *shape* (per-worker iteration timers,
  degree-8 delivery fan-out) with no-op payloads: the scheduler itself
  is the measured quantity. This is where the calendar queue's O(1)
  schedule shows up; the remaining gap to the theoretical ceiling is
  the per-event floor both schedulers share (Event allocation + the
  Python callback call).

Both runs of a rung must process the *same* event count and produce
the same iteration counts: the schedulers are required to be
observationally identical, so any divergence here is a correctness
failure, not noise. Numbers land in ``BENCH_dispatch.json`` at the
repo root. CI runs this file in smoke mode (``REPRO_BENCH_SMOKE=1``):
small clusters and short horizons only — the parity assertions always
run.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.cluster.peergraph import PeerGraph
from repro.cluster.simclock import make_clock
from repro.core.engine import TrainingEngine
from repro.experiments.environments import get_environment
from repro.experiments.runner import build_config, build_topology, workload_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_dispatch.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (16, 128) if SMOKE else (16, 128, 1000)
# Shorter horizons at larger scale: event rate grows with the fleet, so
# these keep per-run wall clock comparable across the ladder.
HORIZONS = {16: 8.0, 128: 4.0} if SMOKE else {16: 60.0, 128: 20.0, 1000: 6.0}
OVERLAY = "hier:8"
ENV = "Stress 1k"


def _run_once(n_workers: int, kind: str) -> dict:
    """One measured stress run under the given scheduler kind."""
    env = get_environment(ENV)
    workload = workload_for(env)
    config = build_config("dlion", workload)
    topo = build_topology(env, workload, n_workers=n_workers)
    clock = make_clock(kind)
    engine = TrainingEngine(
        config,
        topo,
        seed=0,
        clock=clock,
        peer_graph=PeerGraph.from_spec(OVERLAY, n_workers),
        compute_threads=1,
    )
    t0 = time.perf_counter()
    result = engine.run(HORIZONS[n_workers])
    wall = time.perf_counter() - t0
    occ = clock.occupancy()
    return {
        "kind": kind,
        "workers": n_workers,
        "horizon_s": HORIZONS[n_workers],
        "events": clock.events_processed,
        "wall_s": wall,
        "events_per_s": clock.events_processed / wall,
        "peak_pending": occ["peak_pending"],
        "peak_bucket": occ.get("peak_bucket", 0),
        "peak_overflow": occ.get("peak_overflow", 0),
        "iterations": list(result.iterations),
    }


def _dispatch_once(n_workers: int, kind: str, fires: int) -> dict:
    """Scheduler-only throughput: fleet-shaped events, no-op payloads."""
    clock = make_clock(kind)
    count = [0]

    def deliver():
        count[0] += 1

    def iterate(w, period):
        count[0] += 1
        now = clock.now
        for k in range(8):  # the hier:8 overlay's delivery fan-out
            clock.schedule(now + 0.001 + 0.002 * k, deliver)
        clock.schedule(now + period, iterate, w, period)

    for w in range(n_workers):
        p = 0.085 + 0.00013 * (w % 500)
        clock.schedule(p * (w % 97) / 97.0, iterate, w, p)
    t0 = time.perf_counter()
    clock.run(max_events=fires)
    wall = time.perf_counter() - t0
    occ = clock.occupancy()
    return {
        "kind": kind,
        "workers": n_workers,
        "events": clock.events_processed,
        "wall_s": wall,
        "events_per_s": clock.events_processed / wall,
        "peak_pending": occ["peak_pending"],
        "peak_bucket": occ.get("peak_bucket", 0),
        "peak_overflow": occ.get("peak_overflow", 0),
    }


def _record(payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(payload)
    data["smoke"] = SMOKE
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_training_scaling():
    """Heap vs calendar full-stack ladder; throughput + occupancy."""
    rows = []
    for n in SIZES:
        heap = _run_once(n, "heap")
        cal = _run_once(n, "calendar")
        # Observational identity: same events, same training outcome.
        assert heap["events"] == cal["events"], (heap["events"], cal["events"])
        assert heap["iterations"] == cal["iterations"]
        speedup = cal["events_per_s"] / heap["events_per_s"]
        for row in (heap, cal):
            del row["iterations"]
        rows.append({
            "workers": n,
            "horizon_s": HORIZONS[n],
            "events": cal["events"],
            "speedup_events_per_s": speedup,
            "heap": heap,
            "calendar": cal,
        })
        print(
            f"\n{n:>4} workers: {cal['events']:,d} events | "
            f"heap {heap['events_per_s']:,.0f} ev/s, "
            f"calendar {cal['events_per_s']:,.0f} ev/s "
            f"({speedup:.2f}x) | peak pending {cal['peak_pending']:,d}"
        )
    _record({
        "overlay": OVERLAY,
        "environment": ENV,
        "cpu_count": os.cpu_count(),
        "training": rows,
    })


def test_dispatch_scaling():
    """Heap vs calendar scheduler-only ladder (no-op payloads)."""
    fires = 60_000 if SMOKE else 600_000
    rows = []
    # No-op payloads make this ladder cheap enough to cover the full
    # 1,000-worker rung even in CI smoke mode.
    for n in (16, 128, 1000):
        heap = _dispatch_once(n, "heap", fires)
        cal = _dispatch_once(n, "calendar", fires)
        assert heap["events"] == cal["events"], (heap["events"], cal["events"])
        speedup = cal["events_per_s"] / heap["events_per_s"]
        rows.append({
            "workers": n,
            "events": cal["events"],
            "speedup_events_per_s": speedup,
            "heap": heap,
            "calendar": cal,
        })
        print(
            f"\n{n:>4} workers (dispatch-only): "
            f"heap {heap['events_per_s']:,.0f} ev/s, "
            f"calendar {cal['events_per_s']:,.0f} ev/s "
            f"({speedup:.2f}x) | peak pending {cal['peak_pending']:,d}"
        )
    _record({"dispatch": rows})
