"""Shared harness for the per-figure benchmarks.

Every ``bench_*.py`` file regenerates one paper table/figure: it runs
the matching driver from :mod:`repro.experiments.figures` exactly once
under pytest-benchmark (the "benchmark" here is the experiment itself),
prints the paper-style rows, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from real
runs.

Scale control: ``REPRO_BENCH_SCALE=fast`` (default, compressed time
axis, one seed) or ``full`` (paper-length runs, three seeds).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_figure(benchmark, driver):
    """Run one figure driver once, print and archive its rows."""
    holder = {}

    def once():
        holder["fig"] = driver()

    benchmark.pedantic(once, rounds=1, iterations=1)
    fig = holder["fig"]
    rendered = fig.render()
    print("\n" + rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = fig.figure.lower().replace(" ", "").replace(".", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(rendered + "\n")
    return fig
