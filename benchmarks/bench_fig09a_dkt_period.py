"""Fig. 9a: DKT period sweep (see repro.experiments.figures.fig09a)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig09a(benchmark):
    run_figure(benchmark, figures.fig09a)
