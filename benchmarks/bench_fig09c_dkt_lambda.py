"""Fig. 9c: DKT merge-lambda sweep (see repro.experiments.figures.fig09c)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig09c(benchmark):
    run_figure(benchmark, figures.fig09c)
