"""Table 3: emulated micro-cloud environments (see repro.experiments.figures.table3)."""

from repro.experiments import figures

from conftest import run_figure


def test_table3(benchmark):
    run_figure(benchmark, figures.table3)
