"""Extension: per-link vs shared-egress network model study."""

from repro.experiments.ablations import ablation_network_model

from conftest import run_figure


def test_ablation_network_model(benchmark):
    run_figure(benchmark, ablation_network_model)
