"""Fig. 20: gradient size vs bandwidth dynamics (see repro.experiments.figures.fig20)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig20(benchmark):
    run_figure(benchmark, figures.fig20)
