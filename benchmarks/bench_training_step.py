"""Training-step benchmark: workspace buffers and the parallel compute stage.

Two measurements around this PR's hot path:

* ``test_workspace_step_throughput`` — one model's ``loss_and_grads`` +
  ``apply_grads`` loop with the workspace (buffer-reuse) path on vs the
  historical allocating path (``workspace.disabled()``).
* ``test_compute_threads_sim`` — a full Homo B simulation at
  ``compute_threads`` 1 vs 4, recording wall-clock, the ``nn/*``
  profile scopes, and the speculation hit rate; it also re-checks that
  both runs produce identical training trajectories.

Numbers are recorded to ``BENCH_compute.json`` at the repo root
(best-of-3 in full mode). CI runs this file in smoke mode
(``REPRO_BENCH_SMOKE=1``): tiny sizes, one rep, wall-clock assertions
skipped — correctness checks (trajectory identity) always run.

Honesty note: thread speedup depends on the machine. On a single-core
box the 4-thread run cannot beat serial (the JSON records whatever the
hardware gives); the determinism contract means the numbers are safe to
collect anywhere.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.experiments.runner import (
    RunSpec,
    build_config,
    build_topology,
    get_environment,
    workload_for,
)
from repro.core.engine import TrainingEngine
from repro.nn import workspace
from repro.nn.models import build_model
from repro.obs.profile import Profiler, activate

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_compute.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPS = 1 if SMOKE else 3


def _best_of(fn, reps: int = REPS) -> float:
    """Best wall-clock of ``reps`` timed calls after one warm-up."""
    fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_compute.json at the repo root."""
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    data["smoke"] = SMOKE
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_workspace_step_throughput():
    """Buffer-reuse vs allocating path on a bare training-step loop."""
    if SMOKE:
        kwargs, batch, steps = {"in_dim": 576, "hidden": (16,)}, 8, 3
    else:
        kwargs, batch, steps = {"in_dim": 576, "hidden": (128, 64)}, 32, 40
    rng = np.random.default_rng(0)
    xb = rng.standard_normal(size=(batch, kwargs["in_dim"])).astype(np.float32)
    yb = rng.integers(0, 10, size=batch)

    def loop_with(model):
        def run():
            for _ in range(steps):
                _, grads = model.loss_and_grads(xb, yb)
                model.apply_grads(grads, lr=0.05)

        return run

    model_ws = build_model("mlp", np.random.default_rng(7), **kwargs)
    t_ws = _best_of(loop_with(model_ws))
    with workspace.disabled():
        model_alloc = build_model("mlp", np.random.default_rng(7), **kwargs)
        t_alloc = _best_of(loop_with(model_alloc))

    payload = {
        "model": {"name": "mlp", **{k: list(v) if isinstance(v, tuple) else v
                                    for k, v in kwargs.items()}},
        "batch": batch,
        "steps_per_rep": steps,
        "reps": REPS,
        "workspace_on_s": t_ws,
        "workspace_off_s": t_alloc,
        "step_ms_on": t_ws / steps * 1e3,
        "step_ms_off": t_alloc / steps * 1e3,
        "speedup_on_vs_off": t_alloc / t_ws,
    }
    _record("workspace_step", payload)
    print(
        f"\nworkspace on {payload['step_ms_on']:.3f} ms/step, "
        f"off {payload['step_ms_off']:.3f} ms/step "
        f"({payload['speedup_on_vs_off']:.2f}x)"
    )
    if not SMOKE:
        # The reuse path must never *cost* throughput (generous jitter slack).
        assert t_ws <= 1.25 * t_alloc, payload


def _run_profiled(threads: int, horizon: float):
    spec = RunSpec(environment="Homo B", system="dlion", seed=0)
    env = get_environment(spec.environment)
    workload = workload_for(env)
    config = build_config(spec.system, workload)
    topo = build_topology(env, workload)
    prof = Profiler()
    engine = TrainingEngine(
        config, topo, seed=spec.seed, profiler=prof, compute_threads=threads
    )
    t0 = time.perf_counter()
    with activate(prof):
        result = engine.run(horizon)
    wall = time.perf_counter() - t0
    scopes = {
        name: {"calls": calls, "total_s": total}
        for name, (calls, total) in prof.totals().items()
        if name in ("nn/loss_and_grads", "nn/forward", "nn/backward",
                    "engine/compute_pool", "simclock/dispatch")
    }
    pool = engine.compute_pool
    return result, wall, scopes, (pool.hits, pool.misses, pool.discards)


def test_compute_threads_sim():
    """Full Homo B run, serial vs 4 compute threads: wall-clock + identity."""
    horizon = 10.0 if SMOKE else 80.0
    runs = {}
    for threads in (1, 4):
        best = None
        for _ in range(REPS):
            result, wall, scopes, counters = _run_profiled(threads, horizon)
            if best is None or wall < best[1]:
                best = (result, wall, scopes, counters)
        runs[threads] = best

    (r1, w1, s1, _), (r4, w4, s4, c4) = runs[1], runs[4]
    # Determinism contract: identical trajectory regardless of threads.
    assert r1.iterations == r4.iterations
    assert r1.epochs == r4.epochs
    assert [s.values[-1] for s in r1.accuracy] == [s.values[-1] for s in r4.accuracy]

    hits, misses, discards = c4
    payload = {
        "environment": "Homo B",
        "system": "dlion",
        "horizon_s": horizon,
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "serial": {"wall_s": w1, "scopes": s1},
        "threads_4": {
            "wall_s": w4,
            "scopes": s4,
            "speculation": {"hits": hits, "misses": misses, "discards": discards},
        },
        "speedup_serial_vs_4": w1 / w4,
    }
    _record("compute_threads", payload)
    print(
        f"\nserial {w1:.2f}s vs 4 threads {w4:.2f}s "
        f"({payload['speedup_serial_vs_4']:.2f}x on {os.cpu_count()} cpu); "
        f"speculation hits={hits} misses={misses} discards={discards}"
    )
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        # Only meaningful with real parallel hardware underneath.
        assert payload["speedup_serial_vs_4"] > 1.2, payload
