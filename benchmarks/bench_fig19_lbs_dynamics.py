"""Fig. 19: LBS under changing compute (see repro.experiments.figures.fig19)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig19(benchmark):
    run_figure(benchmark, figures.fig19)
