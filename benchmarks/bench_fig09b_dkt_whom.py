"""Fig. 9b: DKT whom-to-send variants (see repro.experiments.figures.fig09b)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig09b(benchmark):
    run_figure(benchmark, figures.fig09b)
