"""Extension: data-quality-assurance selector ablation (DESIGN.md §4)."""

from repro.experiments.ablations import ablation_selectors

from conftest import run_figure


def test_ablation_selectors(benchmark):
    run_figure(benchmark, ablation_selectors)
