"""Extension: per-technique ablation of the full DLion stack."""

from repro.experiments.ablations import ablation_techniques

from conftest import run_figure


def test_ablation_techniques(benchmark):
    run_figure(benchmark, ablation_techniques)
