"""Fig. 12: GPU cluster robustness (see repro.experiments.figures.fig12)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig12(benchmark):
    run_figure(benchmark, figures.fig12)
