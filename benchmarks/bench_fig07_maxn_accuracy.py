"""Fig. 7: accuracy vs. Max N (see repro.experiments.figures.fig07)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig07(benchmark):
    run_figure(benchmark, figures.fig07)
