"""Fig. 6: LBS adaptation under GBS growth (see repro.experiments.figures.fig06)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig06(benchmark):
    run_figure(benchmark, figures.fig06)
