"""Fig. 11: system heterogeneity, CPU cluster (see repro.experiments.figures.fig11)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig11(benchmark):
    run_figure(benchmark, figures.fig11)
