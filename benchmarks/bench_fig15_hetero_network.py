"""Fig. 15: heterogeneous network resources (see repro.experiments.figures.fig15)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig15(benchmark):
    run_figure(benchmark, figures.fig15)
