"""Fig. 21: converged accuracy and time (see repro.experiments.figures.fig21)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig21(benchmark):
    run_figure(benchmark, figures.fig21)
