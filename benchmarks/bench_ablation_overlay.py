"""Extension: partial exchange overlays (gossip topologies) for DLion."""

from repro.experiments.ablations import ablation_overlay

from conftest import run_figure


def test_ablation_overlay(benchmark):
    run_figure(benchmark, ablation_overlay)
