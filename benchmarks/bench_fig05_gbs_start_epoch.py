"""Fig. 5: accuracy vs. GBS-doubling start epoch (see repro.experiments.figures.fig05)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig05(benchmark):
    run_figure(benchmark, figures.fig05)
