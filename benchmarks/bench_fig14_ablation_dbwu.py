"""Fig. 14: dynamic batching / weighted update ablation (see repro.experiments.figures.fig14)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig14(benchmark):
    run_figure(benchmark, figures.fig14)
