"""Fig. 16: Max10 alone vs existing systems (see repro.experiments.figures.fig16)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig16(benchmark):
    run_figure(benchmark, figures.fig16)
