"""Fig. 13: heterogeneous compute resources (see repro.experiments.figures.fig13)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig13(benchmark):
    run_figure(benchmark, figures.fig13)
