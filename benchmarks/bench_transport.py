"""Loopback transport throughput benchmark for the live PeerMesh.

Stands up N :class:`~repro.transport.mesh.PeerMesh` endpoints on one
asyncio loop (ring topology: each worker opens links to its next
``RING_K`` successors, so 64 workers stay well under the fd limit) and
pushes pre-encoded dense-gradient frames until every expected frame has
been delivered. Per cluster size it records messages/sec, bytes/sec,
and the cluster-wide p99 enqueue-to-write frame latency — read straight
off the ``transport_frame_latency_seconds`` histogram the mesh's own
instrumentation records, so the benchmark doubles as an end-to-end
check of the telemetry plane.

The ladder runs once per lane: ``tcp`` (sockets + frame coalescing) and
``shm`` (shared-memory rings between the same pairs). A codec
micro-measurement also records the net allocation count and bytes per
encoded frame on the pooled zero-copy path, so the "allocation-free in
steady state" claim is machine-checked right next to the throughput it
buys.

Numbers land in ``BENCH_transport.json`` at the repo root (best-of-2 in
full mode). CI runs this file in smoke mode (``REPRO_BENCH_SMOKE=1``):
4 workers only, few frames, no wall-clock assertions — the delivery and
accounting checks always run.
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import pathlib
import time
import tracemalloc

import numpy as np

from repro.cluster.messages import GradientMessage
from repro.obs.metrics import MetricsRegistry
from repro.transport.codec import FrameBuffer, encode_into, encode_message
from repro.transport.mesh import CHANNEL_DATA, PeerMesh, TransportConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_transport.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPS = 1 if SMOKE else 2
CLUSTER_SIZES = (4,) if SMOKE else (4, 16, 64)
FRAMES_PER_LINK = 30 if SMOKE else 400
# Each worker opens links to its next RING_K ring successors: coverage
# of the multi-hop topology without the all-pairs fd explosion at 64.
RING_K = 2
PAYLOAD_FLOATS = 1024  # ~4 KB dense-gradient frames

# 256 KB rings keep the 64-worker shm ladder at ~32 MB of segments.
_CFG = TransportConfig(connect_timeout_s=10.0, shm_ring_bytes=1 << 18)

_token_counter = 0


def _successors(w: int, n: int) -> list[int]:
    return [(w + i) % n for i in range(1, RING_K + 1) if (w + i) % n != w]


def _predecessors(w: int, n: int) -> list[int]:
    return [(w - i) % n for i in range(1, RING_K + 1) if (w - i) % n != w]


def _payload_frame(sender: int) -> bytes:
    rng = np.random.default_rng(sender)
    dense = {"var0": rng.standard_normal(PAYLOAD_FLOATS).astype(np.float32)}
    return encode_message(
        GradientMessage(sender=sender, iteration=1, lbs=16, dense=dense)
    )


async def _run_cluster(n: int, lane: str) -> dict:
    """One measured round: every worker floods its ring successors."""
    global _token_counter
    registry = MetricsRegistry()
    expected = sum(len(_successors(w, n)) for w in range(n)) * FRAMES_PER_LINK
    got = 0
    done = asyncio.Event()

    def on_message(peer, channel, msg):
        nonlocal got
        got += 1
        if got >= expected:
            done.set()

    shm_kwargs = [{} for _ in range(n)]
    if lane == "shm":
        _token_counter += 1
        token = f"bench{os.getpid()}x{_token_counter}"
        shm_kwargs = [
            {
                "shm_out": set(_successors(w, n)),
                "shm_in": set(_predecessors(w, n)),
                "shm_token": token,
            }
            for w in range(n)
        ]
    meshes = [
        PeerMesh(w, on_message=on_message, config=_CFG, metrics=registry,
                 **shm_kwargs[w])
        for w in range(n)
    ]
    ports = [await m.start() for m in meshes]
    await asyncio.gather(*[
        m.connect({d: ("127.0.0.1", ports[d]) for d in _successors(w, n)})
        for w, m in enumerate(meshes)
    ])

    frames = [_payload_frame(w) for w in range(n)]
    frame_bytes = len(frames[0])
    t0 = time.perf_counter()
    for i in range(FRAMES_PER_LINK):
        for w, m in enumerate(meshes):
            for d in _successors(w, n):
                while not m.send(d, CHANNEL_DATA, frames[w]):
                    await asyncio.sleep(0)  # outbox backpressure
        if i % 4 == 0:
            await asyncio.sleep(0)  # let sender tasks drain
    await asyncio.wait_for(done.wait(), timeout=300.0)
    wall = time.perf_counter() - t0
    await asyncio.gather(*[m.close(bye=False) for m in meshes])

    assert got == expected, (got, expected)
    lat = registry.get("transport_frame_latency_seconds")
    sent = registry.get("transport_send_msgs_total")
    data_sent = sum(v for k, v in sent.items() if k[2] == "data")
    assert data_sent == expected, (data_sent, expected)
    coalesced = registry.get("transport_coalesced_frames_total")
    coalesced_frames = sum(
        v for k, v in coalesced.items() if k[2] == "data"
    )
    return {
        "workers": n,
        "lane": lane,
        "links": expected // FRAMES_PER_LINK,
        "frames": expected,
        "frame_bytes": frame_bytes,
        "wall_s": wall,
        "msgs_per_s": expected / wall,
        "bytes_per_s": expected * frame_bytes / wall,
        "coalesced_frac": coalesced_frames / expected,
        "frame_latency_p50_s": lat.percentile_all(0.50),
        "frame_latency_p99_s": lat.percentile_all(0.99),
    }


def _bench_cluster(n: int, lane: str) -> dict:
    best = None
    for _ in range(REPS):
        row = asyncio.run(_run_cluster(n, lane))
        if best is None or row["msgs_per_s"] > best["msgs_per_s"]:
            best = row
    return best


def _encode_allocs() -> dict:
    """Net allocations per frame on the pooled encode path (the
    zero-copy claim, measured): tracemalloc block/byte deltas across
    many re-encodes into one warmed FrameBuffer, divided per frame."""
    fbuf = FrameBuffer()
    rng = np.random.default_rng(0)
    msg = GradientMessage(
        sender=0, iteration=1, lbs=16,
        dense={"var0": rng.standard_normal(PAYLOAD_FLOATS).astype(np.float32)},
    )
    reps = 50 if SMOKE else 500
    for _ in range(3):  # warm the buffer to steady state
        encode_into(msg, fbuf)
    gc.collect()
    tracemalloc.start()
    try:
        snap0 = tracemalloc.take_snapshot()
        for _ in range(reps):
            encode_into(msg, fbuf)
        snap1 = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    diff = snap1.compare_to(snap0, "filename")
    # Exclude tracemalloc's own snapshot bookkeeping.
    blocks = sum(
        d.count_diff for d in diff if "tracemalloc" not in d.traceback[0].filename
    )
    nbytes = sum(
        d.size_diff for d in diff if "tracemalloc" not in d.traceback[0].filename
    )
    return {
        "frames": reps,
        "net_allocs_per_frame": blocks / reps,
        "net_bytes_per_frame": nbytes / reps,
    }


def _record(payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(payload)
    data["smoke"] = SMOKE
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_loopback_throughput():
    """Ring-flood each cluster size per lane; record throughput, p99
    latency, coalescing fraction, and encode allocation counts."""
    alloc = _encode_allocs()
    rows = [_bench_cluster(n, "tcp") for n in CLUSTER_SIZES]
    shm_rows = [_bench_cluster(n, "shm") for n in CLUSTER_SIZES]
    _record({
        "ring_k": RING_K,
        "frames_per_link": FRAMES_PER_LINK,
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "encode_allocations": alloc,
        "clusters": rows,
        "clusters_shm": shm_rows,
    })
    for row in rows + shm_rows:
        print(
            f"\n{row['workers']:>3} workers [{row['lane']}]: "
            f"{row['msgs_per_s']:,.0f} msgs/s, "
            f"{row['bytes_per_s'] / 1e6:.1f} MB/s, "
            f"coalesced {row['coalesced_frac'] * 100:.0f}%, "
            f"p99 frame latency "
            f"{(row['frame_latency_p99_s'] or 0.0) * 1e3:.2f} ms, "
            f"{alloc['net_allocs_per_frame']:.2f} allocs/frame"
        )
        # The instrumentation itself must have observed every frame.
        assert row["frame_latency_p99_s"] is not None
    # Steady-state encode must not allocate per frame (pool + views).
    assert alloc["net_allocs_per_frame"] < 1.0, alloc
    if not SMOKE:
        # Loopback should sustain well beyond paper-scale message rates.
        assert all(r["msgs_per_s"] > 1000 for r in rows + shm_rows), rows
