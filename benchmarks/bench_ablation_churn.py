"""Extension: elastic membership (worker churn) study."""

from repro.experiments.ablations import ablation_churn

from conftest import run_figure


def test_ablation_churn(benchmark):
    run_figure(benchmark, ablation_churn)
