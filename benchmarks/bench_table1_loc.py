"""Table 1: plugin lines-of-code accounting (see repro.experiments.figures.table1)."""

from repro.experiments import figures

from conftest import run_figure


def test_table1(benchmark):
    run_figure(benchmark, figures.table1)
