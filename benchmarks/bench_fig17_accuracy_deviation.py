"""Fig. 17: per-worker accuracy deviation (see repro.experiments.figures.fig17)."""

from repro.experiments import figures

from conftest import run_figure


def test_fig17(benchmark):
    run_figure(benchmark, figures.fig17)
