"""Documentation gate: every public item carries a docstring.

Walks the whole ``repro`` package and asserts that modules, public
classes, public functions, and public methods are documented. This is
a deliverable of the reproduction, enforced rather than hoped for.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_METHODS = {
    # object / dataclass plumbing that inherits useful docs anyway
    "__init__", "__repr__", "__post_init__", "__len__", "__bool__", "__lt__",
}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in ALL_MODULES if not (m.__doc__ or "").strip()]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing: list[str] = []
    for module in ALL_MODULES:
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_") or meth_name in IGNORED_METHODS:
                    continue
                if not inspect.isfunction(meth):
                    continue
                # inspect.getdoc follows the MRO: an override inherits
                # its interface documentation from the base class.
                if not (inspect.getdoc(getattr(cls, meth_name)) or "").strip():
                    missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert not missing, f"undocumented public methods: {missing}"
