"""Property-based tests: membership schedules and curve utilities."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.membership import MembershipSchedule
from repro.experiments.curves import auc, ema, resample
from repro.utils.metrics import TimeSeries


# ------------------------------------------------------------ membership
@st.composite
def churn_schedules(draw):
    """Valid alternating leave/join histories for a 6-worker cluster."""
    n_workers = 6
    events = []
    for worker in range(n_workers):
        k = draw(st.integers(0, 3))
        if k == 0:
            continue
        times = sorted(
            draw(
                st.lists(
                    st.floats(0.1, 1e4), min_size=k, max_size=k, unique=True
                )
            )
        )
        for i, t in enumerate(times):
            events.append((t, worker, "leave" if i % 2 == 0 else "join"))
    return MembershipSchedule(events, n_workers=n_workers)


@given(sched=churn_schedules(), t=st.floats(0, 2e4))
@settings(max_examples=150, deadline=None)
def test_active_set_is_subset_of_cluster(sched, t):
    active = sched.active_at(t)
    assert active <= set(range(6))


@given(sched=churn_schedules())
@settings(max_examples=100, deadline=None)
def test_everyone_active_at_time_zero_before_events(sched):
    first = min((e.time for e in sched.events), default=None)
    if first is None or first > 0:
        assert sched.active_at(0.0) == set(range(6))


@given(sched=churn_schedules())
@settings(max_examples=100, deadline=None)
def test_min_active_is_reachable_lower_bound(sched):
    lo = sched.min_active()
    probes = [0.0] + [e.time for e in sched.events]
    sizes = [len(sched.active_at(t)) for t in probes]
    assert lo == min(sizes)


@given(sched=churn_schedules(), t=st.floats(0, 2e4))
@settings(max_examples=100, deadline=None)
def test_active_at_matches_event_replay(sched, t):
    state = {w: True for w in range(6)}
    for ev in sched.events:
        if ev.time <= t:
            state[ev.worker] = ev.action == "join"
    assert sched.active_at(t) == {w for w, a in state.items() if a}


# ----------------------------------------------------------------- curves
@st.composite
def time_series(draw):
    n = draw(st.integers(1, 30))
    times = sorted(draw(st.lists(st.floats(0, 1e3), min_size=n, max_size=n)))
    values = draw(st.lists(st.floats(0, 1), min_size=n, max_size=n))
    s = TimeSeries()
    for t, v in zip(times, values):
        s.append(t, v)
    return s


@given(s=time_series(), grid_pts=st.integers(2, 40))
@settings(max_examples=150, deadline=None)
def test_resample_values_come_from_series(s, grid_pts):
    grid = np.linspace(0, 1200, grid_pts)
    out = resample(s, grid)
    assert set(np.unique(out)) <= set(s.values)


@given(s=time_series())
@settings(max_examples=100, deadline=None)
def test_resample_at_sample_times_recovers_last_value_per_time(s):
    grid = np.asarray(s.times)
    out = resample(s, grid)
    # duplicate timestamps keep the last appended value (LOCF semantics)
    expected = [s.value_at(t) for t in s.times]
    np.testing.assert_allclose(out, expected)


@given(s=time_series())
@settings(max_examples=150, deadline=None)
def test_auc_bounded_by_value_range(s):
    assume(s.times[-1] > 0)  # a series ending at t=0 has no horizon
    a = auc(s)
    assert min(s.values) - 1e-9 <= a <= max(s.values) + 1e-9


@given(s=time_series(), alpha=st.floats(0.05, 1.0))
@settings(max_examples=100, deadline=None)
def test_ema_stays_in_value_hull(s, alpha):
    out = ema(np.asarray(s.values), alpha=alpha)
    assert out.min() >= min(s.values) - 1e-9
    assert out.max() <= max(s.values) + 1e-9
