"""Property-based tests for the event clock and link FIFO invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Link
from repro.cluster.simclock import SimClock


@given(times=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60))
@settings(max_examples=150, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    clk = SimClock()
    fired: list[float] = []
    for t in times:
        clk.schedule(t, lambda t=t: fired.append(clk.now))
    clk.run_until(1e7)
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40),
    horizon=st.floats(0.0, 150.0),
)
@settings(max_examples=150, deadline=None)
def test_run_until_processes_exactly_due_events(times, horizon):
    clk = SimClock()
    for t in times:
        clk.schedule(t, lambda: None)
    n = clk.run_until(horizon)
    assert n == sum(1 for t in times if t <= horizon)
    assert clk.pending() == len(times) - n


@given(
    payloads=st.lists(st.integers(1, 10_000_000), min_size=1, max_size=40),
    enqueue_gaps=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=40),
    bw=st.floats(0.1, 1000.0),
)
@settings(max_examples=150, deadline=None)
def test_link_transfers_never_overlap(payloads, enqueue_gaps, bw):
    """FIFO invariant: deliveries are ordered and the link is never
    carrying two transfers at once (each starts after the previous
    delivery minus latency)."""
    link = Link(0, 1, bw, latency=0.0)
    t = 0.0
    deliveries = []
    for nbytes, gap in zip(payloads, enqueue_gaps):
        t += gap
        deliveries.append(link.enqueue_transfer(nbytes, t))
    assert deliveries == sorted(deliveries)
    # total serialization time is conserved
    total_bits = sum(payloads[: len(deliveries)]) * 8
    assert deliveries[-1] >= total_bits / (bw * 1e6) - 1e-9


@given(
    nbytes=st.integers(0, 10_000_000),
    bw=st.floats(0.1, 1000.0),
    t=st.floats(0.0, 1e4),
)
@settings(max_examples=150, deadline=None)
def test_transfer_duration_proportional_to_bytes(nbytes, bw, t):
    link = Link(0, 1, bw)
    d = link.transfer_duration(nbytes, t)
    assert d >= 0
    assert d == (nbytes * 8.0) / (bw * 1e6)
