"""Property-based tests for the pluggable gradient selectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.selectors import (
    MaxNSelector,
    RandomKSelector,
    ThresholdSelector,
    TopKSelector,
)

grads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 300),
    elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
)
levels = st.floats(0.01, 100.0)


def _selectors(rng_seed=0):
    return [
        MaxNSelector(),
        TopKSelector(),
        RandomKSelector(np.random.default_rng(rng_seed)),
        ThresholdSelector(base_threshold=0.5),
    ]


@given(g=grads, level=levels)
@settings(max_examples=120, deadline=None)
def test_all_selectors_return_valid_indices_and_values(g, level):
    for sel in _selectors():
        idx, vals = sel.select(g, level)
        assert idx.size == vals.size
        assert (idx >= 0).all() and (idx < g.size).all()
        assert np.unique(idx).size == idx.size  # no duplicates
        np.testing.assert_array_equal(vals, g.reshape(-1)[idx])


@given(g=grads, level=levels)
@settings(max_examples=120, deadline=None)
def test_count_at_matches_select_for_deterministic_selectors(g, level):
    for sel in (MaxNSelector(), TopKSelector(), ThresholdSelector(0.5)):
        assert sel.count_at(g, level) == sel.select(g, level)[0].size


@given(g=grads, l1=levels, l2=levels)
@settings(max_examples=120, deadline=None)
def test_counts_monotone_in_level(g, l1, l2):
    lo, hi = sorted((l1, l2))
    for sel in (MaxNSelector(), TopKSelector(), ThresholdSelector(0.5)):
        assert sel.count_at(g, lo) <= sel.count_at(g, hi)


@given(g=grads)
@settings(max_examples=80, deadline=None)
def test_level_100_ships_all_nonzero_entries(g):
    if np.abs(g).max() == 0:
        return
    nonzero = set(np.nonzero(g.reshape(-1))[0].tolist())
    # Relative selectors ship every informative entry at level 100 (and
    # may include exact zeros, as Max N does).
    for sel in (MaxNSelector(), TopKSelector(), RandomKSelector(np.random.default_rng(0))):
        idx, _ = sel.select(g, 100.0)
        assert nonzero <= set(idx.tolist())
    # The absolute-threshold rule keeps a floor threshold even at level
    # 100, so it only guarantees a non-empty selection.
    idx, _ = ThresholdSelector(0.5).select(g, 100.0)
    assert idx.size >= 1


@given(g=grads, level=levels)
@settings(max_examples=80, deadline=None)
def test_zero_gradient_ships_nothing(g, level):
    z = np.zeros_like(g)
    for sel in _selectors():
        idx, vals = sel.select(z, level)
        assert idx.size == 0
