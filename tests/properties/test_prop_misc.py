"""Property-based tests: traces, metrics, GBS controller, datasets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GbsConfig
from repro.core.gbs_controller import GbsController
from repro.cluster.traces import PiecewiseTrace
from repro.nn.datasets import SyntheticImageDataset
from repro.utils.metrics import TimeSeries, accuracy_at_time, mean_and_ci95


# ---------------------------------------------------------------- traces
@st.composite
def piecewise_segments(draw):
    n = draw(st.integers(1, 8))
    times = sorted(draw(st.lists(st.floats(0.1, 1e4), min_size=n - 1, max_size=n - 1, unique=True)))
    values = draw(st.lists(st.floats(0.1, 1e4), min_size=n, max_size=n))
    return [(0.0, values[0])] + list(zip(times, values[1:]))


@given(segments=piecewise_segments(), t=st.floats(0, 2e4))
@settings(max_examples=150, deadline=None)
def test_trace_value_is_last_breakpoint_at_or_before_t(segments, t):
    trace = PiecewiseTrace(segments)
    expected = [v for s, v in segments if s <= t][-1]
    assert trace.value_at(t) == expected


@given(segments=piecewise_segments())
@settings(max_examples=100, deadline=None)
def test_next_change_iteration_visits_all_breakpoints(segments):
    trace = PiecewiseTrace(segments)
    t, seen = 0.0, []
    while True:
        nxt = trace.next_change_after(t)
        if nxt is None:
            break
        seen.append(nxt)
        t = nxt
    assert seen == [s for s, _ in segments[1:]]


# --------------------------------------------------------------- metrics
@given(
    pairs=st.lists(
        st.tuples(st.floats(0, 1e5), st.floats(0, 1)), min_size=1, max_size=50
    )
)
@settings(max_examples=150, deadline=None)
def test_accuracy_at_time_is_monotone_in_t(pairs):
    pairs = sorted(pairs, key=lambda p: p[0])
    s = TimeSeries()
    for t, v in pairs:
        s.append(t, v)
    ts = [p[0] for p in pairs]
    accs = [accuracy_at_time(s, t) for t in ts]
    assert accs == sorted(accs)


@given(samples=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=11))
@settings(max_examples=150, deadline=None)
def test_ci_contains_no_nan_and_mean_in_range(samples):
    mean, ci = mean_and_ci95(samples)
    assert np.isfinite(mean) and np.isfinite(ci)
    assert min(samples) - 1e-9 <= mean <= max(samples) + 1e-9
    assert ci >= 0


# --------------------------------------------------------- GBS controller
@given(
    initial=st.integers(1, 1000),
    train_size=st.integers(1000, 100_000),
    ticks=st.integers(0, 40),
)
@settings(max_examples=150, deadline=None)
def test_gbs_never_decreases_and_respects_cap(initial, train_size, ticks):
    ctl = GbsController(
        GbsConfig(start_epoch=0.0), initial_gbs=initial, train_size=train_size
    )
    prev = ctl.gbs
    for _ in range(ticks):
        cur = ctl.maybe_update(epoch=10.0)
        assert cur >= prev
        prev = cur
    # one geometric step may overshoot the 10% cap, never more
    assert ctl.gbs <= max(initial, 2.0 * 0.10 * train_size + 32)


# ---------------------------------------------------------------- shards
@given(n_workers=st.integers(1, 12), mode=st.sampled_from(["iid", "contiguous"]))
@settings(max_examples=40, deadline=None)
def test_shards_partition_exactly(n_workers, mode):
    ds = SyntheticImageDataset.cifar_like(
        np.random.default_rng(0), train_size=240, test_size=40
    )
    shards = ds.shards(n_workers, mode=mode)
    assert len(shards) == n_workers
    assert sum(s.size for s in shards) == 240
    # label multiset is preserved
    all_labels = np.sort(np.concatenate([s.y for s in shards]))
    np.testing.assert_array_equal(all_labels, np.sort(ds.train_y))
