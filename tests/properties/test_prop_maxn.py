"""Property-based tests for Max N selection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.maxn import select_max_n

finite_grads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64),
)

valid_n = st.floats(0.01, 100.0, allow_nan=False)


@given(g=finite_grads, n=valid_n)
@settings(max_examples=150, deadline=None)
def test_selected_values_match_original(g, n):
    idx, vals = select_max_n(g, n)
    np.testing.assert_array_equal(vals, g.reshape(-1)[idx])


@given(g=finite_grads, n=valid_n)
@settings(max_examples=150, deadline=None)
def test_band_rule_holds_exactly(g, n):
    """Every selected entry is in the top-N% band; no unselected entry is."""
    idx, _ = select_max_n(g, n)
    mags = np.abs(g.reshape(-1))
    mx = mags.max()
    if mx == 0:
        assert idx.size == 0
        return
    thr = (1.0 - n / 100.0) * mx
    selected = np.zeros(mags.size, dtype=bool)
    selected[idx] = True
    assert (mags[selected] >= thr).all()
    assert (mags[~selected] < thr).all()


@given(g=finite_grads)
@settings(max_examples=100, deadline=None)
def test_max_entry_always_selected_for_nonzero(g):
    mags = np.abs(g.reshape(-1))
    if mags.max() == 0:
        return
    idx, _ = select_max_n(g, 0.01)
    assert np.argmax(mags) in idx


@given(g=finite_grads, n1=valid_n, n2=valid_n)
@settings(max_examples=150, deadline=None)
def test_monotone_nesting(g, n1, n2):
    """A larger N selects a superset of a smaller N's entries."""
    lo, hi = sorted((n1, n2))
    idx_lo, _ = select_max_n(g, lo)
    idx_hi, _ = select_max_n(g, hi)
    assert set(idx_lo.tolist()) <= set(idx_hi.tolist())


@given(g=finite_grads)
@settings(max_examples=100, deadline=None)
def test_n_100_is_identity(g):
    idx, vals = select_max_n(g, 100.0)
    if np.abs(g).max() == 0:
        assert idx.size == 0
    else:
        assert idx.size == g.size
        np.testing.assert_array_equal(vals, g.reshape(-1))


# Scale invariance only holds away from the float underflow boundary:
# a subnormal entry (e.g. 5e-324) times scale < 1 flushes to exactly
# zero, legitimately changing the selection. Keep magnitudes either
# zero or large enough that scaling by 0.01 stays normal.
scale_safe_grads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 200),
    elements=st.floats(
        -1e6, 1e6, allow_nan=False, allow_infinity=False, width=64
    ).filter(lambda v: v == 0.0 or abs(v) >= 1e-6),
)


@given(g=scale_safe_grads, n=valid_n, scale=st.floats(0.01, 100.0))
@settings(max_examples=100, deadline=None)
def test_selection_scale_invariant(g, n, scale):
    """Scaling all gradients never changes which entries are selected."""
    idx1, _ = select_max_n(g, n)
    idx2, _ = select_max_n(g * scale, n)
    np.testing.assert_array_equal(idx1, idx2)
