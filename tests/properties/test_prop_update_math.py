"""Property-based tests for the update mathematics (Eq. 4/7, DKT merge)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.dkt import merge_weights
from repro.core.weighted_update import dynamic_batching_weight
from repro.nn.layers import Dense
from repro.nn.model import Model

lbs_values = st.integers(1, 4096)


@given(lbs=lbs_values)
@settings(max_examples=100, deadline=None)
def test_equal_lbs_reduces_to_eq4(lbs):
    """db == 1 whenever sender and receiver batch sizes agree — the
    weighted update (Eq. 7) degenerates to the classic rule (Eq. 4)."""
    assert dynamic_batching_weight(lbs, lbs) == 1.0


@given(a=lbs_values, b=lbs_values)
@settings(max_examples=100, deadline=None)
def test_db_weights_are_reciprocal(a, b):
    """db_j^k * db_k^j == 1: the weighting is consistent between any
    pair of workers."""
    assert dynamic_batching_weight(a, b) * dynamic_batching_weight(b, a) == (
        np.float64(a) / b * (np.float64(b) / a)
    )


@given(a=lbs_values, b=lbs_values, c=lbs_values)
@settings(max_examples=100, deadline=None)
def test_db_weights_compose(a, b, c):
    """db_a^c == db_a^b * db_b^c (transitivity through a middle worker)."""
    lhs = dynamic_batching_weight(a, c)
    rhs = dynamic_batching_weight(a, b) * dynamic_batching_weight(b, c)
    assert lhs == np.float64(rhs) or abs(lhs - rhs) < 1e-12 * lhs


weight_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 64),
    elements=st.floats(-100, 100, allow_nan=False, width=64),
)


@given(w=weight_arrays, wb=weight_arrays, lam=st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_merge_is_convex_combination(w, wb, lam):
    if w.shape != wb.shape:
        return
    local = {"v": w.copy()}
    merge_weights(local, {"v": wb}, lam)
    np.testing.assert_allclose(local["v"], (1 - lam) * w + lam * wb, atol=1e-9)
    # merged weights stay inside the interval spanned by the inputs
    lo = np.minimum(w, wb) - 1e-9
    hi = np.maximum(w, wb) + 1e-9
    assert ((local["v"] >= lo) & (local["v"] <= hi)).all()


@given(
    seed=st.integers(0, 2**31 - 1),
    lr=st.floats(0.001, 1.0),
    n=st.integers(2, 8),
)
@settings(max_examples=50, deadline=None)
def test_sum_of_weighted_partial_updates_equals_full_update(seed, lr, n):
    """Applying each worker's gradient separately with coeff 1/n is
    exactly the Eq. 4 average update."""
    rng = np.random.default_rng(seed)
    model_a = Model([Dense(5, 3, np.random.default_rng(seed))])
    model_b = Model([Dense(5, 3, np.random.default_rng(seed))])
    grads = [
        {name: rng.normal(size=v.shape) for name, v in model_a.variables().items()}
        for _ in range(n)
    ]
    # one-shot average
    avg = {
        name: sum(g[name] for g in grads) / n
        for name in model_a.variable_names
    }
    model_a.apply_grads(avg, lr=lr)
    # incremental per-worker application
    for g in grads:
        model_b.apply_grads(g, lr=lr, coeff=1.0 / n)
    for name in model_a.variable_names:
        np.testing.assert_allclose(
            model_a.get_variable(name), model_b.get_variable(name), atol=1e-6
        )


@given(
    seed=st.integers(0, 2**31 - 1),
    nsel=st.integers(1, 15),
)
@settings(max_examples=50, deadline=None)
def test_sparse_apply_equals_dense_apply_on_support(seed, nsel):
    """Applying a sparse gradient equals applying the dense gradient
    restricted to the selected indices."""
    rng = np.random.default_rng(seed)
    dense_model = Model([Dense(4, 4, np.random.default_rng(seed))])
    sparse_model = Model([Dense(4, 4, np.random.default_rng(seed))])
    name = dense_model.variable_names[0]
    full = rng.normal(size=(4, 4))
    idx = rng.choice(16, size=min(nsel, 16), replace=False).astype(np.int64)
    masked = np.zeros_like(full)
    masked.reshape(-1)[idx] = full.reshape(-1)[idx]
    dense_model.apply_grads({name: masked}, lr=0.3, coeff=0.7)
    sparse_model.apply_sparse_grads(
        {name: (idx, full.reshape(-1)[idx])}, lr=0.3, coeff=0.7
    )
    np.testing.assert_allclose(
        dense_model.get_variable(name), sparse_model.get_variable(name), atol=1e-6
    )
