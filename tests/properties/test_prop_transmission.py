"""Property-based tests for the transmission budget fit."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.messages import sparse_payload_bytes
from repro.core.maxn import select_payload
from repro.core.transmission import fit_n_to_budget

grad_dicts = st.dictionaries(
    keys=st.sampled_from(["w1", "w2", "w3"]),
    values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 400),
        elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
    ),
    min_size=1,
    max_size=3,
)


@given(grads=grad_dicts, budget=st.floats(1.0, 1e7))
@settings(max_examples=150, deadline=None)
def test_chosen_n_in_bounds(grads, budget):
    n = fit_n_to_budget(grads, budget)
    assert 0.85 <= n <= 100.0


@given(grads=grad_dicts, budget=st.floats(1.0, 1e7))
@settings(max_examples=150, deadline=None)
def test_payload_fits_budget_unless_floored(grads, budget):
    """The fitted N's exact payload never exceeds the budget, except
    when the quality floor n_min forces a minimum payload."""
    n = fit_n_to_budget(grads, budget)
    if n > 0.85 + 1e-9:
        size = sparse_payload_bytes(select_payload(grads, n))
        assert size <= budget


@given(grads=grad_dicts, b1=st.floats(1.0, 1e6), b2=st.floats(1.0, 1e6))
@settings(max_examples=150, deadline=None)
def test_monotone_in_budget(grads, b1, b2):
    lo, hi = sorted((b1, b2))
    assert fit_n_to_budget(grads, lo) <= fit_n_to_budget(grads, hi) + 1e-9


@given(grads=grad_dicts)
@settings(max_examples=80, deadline=None)
def test_infinite_budget_sends_everything(grads):
    assert fit_n_to_budget(grads, 1e12) == 100.0
