"""Property-based tests for the transmission budget fit.

The batched resolver (:class:`GradientHistograms` + one vectorized
``searchsorted`` per plan) replaced the historical per-link bisection;
this suite pins down the invariants the replacement must preserve:

* the chosen N stays in ``[n_min, n_max]``;
* whenever the chosen N exceeds the floor, the **exact** encoded
  payload at that N fits the budget (the histogram only overcounts);
* the fit is monotone non-decreasing in the budget;
* the batched answer agrees with the reference bisection
  (``_fit_n_bisect``) within one histogram bin plus the bisection's
  precision;
* the generic selector path (``fit_level_to_budget`` with
  :class:`MaxNSelector`) agrees with the Max-N fast path within the
  same granularity, including on degenerate gradients (all-zero,
  single-entry, subnormal magnitudes).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.messages import sparse_payload_bytes
from repro.core.maxn import select_payload
from repro.core.selectors import MaxNSelector
from repro.core.transmission import (
    _BINS,
    _fit_n_bisect,
    fit_level_to_budget,
    fit_n_to_budget,
)

# One histogram bin of N plus the bisection's precision: the bound on
# how far the batched answer may sit from any exact-count resolver.
BIN_TOL = 100.0 / _BINS + 0.01 + 1e-9

grad_dicts = st.dictionaries(
    keys=st.sampled_from(["w1", "w2", "w3"]),
    values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 400),
        elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
    ),
    min_size=1,
    max_size=3,
)

# Degenerate shapes the batched resolver must survive: all-zero
# variables, single-entry variables, and subnormal magnitudes whose
# normalization (mags / mx) must not overflow or lose the max entry.
tricky_grads = st.dictionaries(
    keys=st.sampled_from(["w1", "w2", "w3"]),
    values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 50),
        elements=st.sampled_from(
            [0.0, 5e-324, -5e-324, 1e-310, -1e-310, 1e-3, -1.0, 1e3]
        ),
    ),
    min_size=1,
    max_size=3,
)


@given(grads=grad_dicts, budget=st.floats(1.0, 1e7))
@settings(max_examples=500, deadline=None)
def test_chosen_n_in_bounds(grads, budget):
    n = fit_n_to_budget(grads, budget)
    assert 0.85 <= n <= 100.0


@given(grads=grad_dicts, budget=st.floats(1.0, 1e7))
@settings(max_examples=500, deadline=None)
def test_payload_fits_budget_unless_floored(grads, budget):
    """The fitted N's exact payload never exceeds the budget, except
    when the quality floor n_min forces a minimum payload."""
    n = fit_n_to_budget(grads, budget)
    if n > 0.85 + 1e-9:
        size = sparse_payload_bytes(select_payload(grads, n))
        assert size <= budget


@given(grads=grad_dicts, b1=st.floats(1.0, 1e6), b2=st.floats(1.0, 1e6))
@settings(max_examples=500, deadline=None)
def test_monotone_in_budget(grads, b1, b2):
    lo, hi = sorted((b1, b2))
    assert fit_n_to_budget(grads, lo) <= fit_n_to_budget(grads, hi) + 1e-9


@given(grads=grad_dicts, budget=st.floats(1.0, 1e7))
@settings(max_examples=500, deadline=None)
def test_batched_matches_bisection(grads, budget):
    """The vectorized searchsorted fit lands within one histogram bin
    (plus the bisection's own precision) of the reference bisection."""
    batched = fit_n_to_budget(grads, budget)
    bisected = _fit_n_bisect(grads, budget)
    assert abs(batched - bisected) <= BIN_TOL


@given(grads=grad_dicts)
@settings(max_examples=100, deadline=None)
def test_infinite_budget_sends_everything(grads):
    assert fit_n_to_budget(grads, 1e12) == 100.0


@given(grads=tricky_grads, budget=st.floats(1.0, 1e5))
@settings(max_examples=500, deadline=None)
def test_generic_maxn_parity(grads, budget):
    """``fit_level_to_budget`` with the Max-N selector (exact counts,
    bisection) agrees with the histogram fast path within one bin —
    including all-zero, single-entry and subnormal variables."""
    fast = fit_n_to_budget(grads, budget)
    generic = fit_level_to_budget(MaxNSelector(), grads, budget)
    assert abs(fast - generic) <= BIN_TOL


@given(grads=tricky_grads, budget=st.floats(1.0, 1e5))
@settings(max_examples=200, deadline=None)
def test_tricky_payload_fits_budget_unless_floored(grads, budget):
    """Exact feasibility holds on degenerate gradients too."""
    n = fit_n_to_budget(grads, budget)
    assert 0.85 <= n <= 100.0
    if n > 0.85 + 1e-9:
        size = sparse_payload_bytes(select_payload(grads, n))
        assert size <= budget
