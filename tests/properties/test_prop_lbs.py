"""Property-based tests for LBS allocation (Eq. 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lbs_controller import allocate_lbs

rcps = st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=12)


@given(rcps=rcps, gbs_mult=st.integers(1, 100))
@settings(max_examples=200, deadline=None)
def test_allocation_sums_to_gbs(rcps, gbs_mult):
    gbs = len(rcps) * gbs_mult
    alloc = allocate_lbs(gbs, rcps)
    assert sum(alloc) == gbs


@given(rcps=rcps, gbs_mult=st.integers(1, 100))
@settings(max_examples=200, deadline=None)
def test_every_worker_gets_at_least_one(rcps, gbs_mult):
    gbs = len(rcps) * gbs_mult
    alloc = allocate_lbs(gbs, rcps)
    assert min(alloc) >= 1


@given(rcps=st.lists(st.floats(0.1, 1e4), min_size=2, max_size=8), mult=st.integers(10, 50))
@settings(max_examples=200, deadline=None)
def test_allocation_order_follows_rcp_order(rcps, mult):
    """A strictly more powerful worker never gets a smaller LBS."""
    gbs = len(rcps) * mult
    alloc = allocate_lbs(gbs, rcps)
    for i in range(len(rcps)):
        for j in range(len(rcps)):
            if rcps[i] > rcps[j]:
                assert alloc[i] >= alloc[j] - 1  # rounding slack of one


@given(rcps=st.lists(st.floats(0.1, 1e4), min_size=2, max_size=8), mult=st.integers(2, 40))
@settings(max_examples=200, deadline=None)
def test_proportionality_within_rounding(rcps, mult):
    gbs = len(rcps) * mult
    alloc = allocate_lbs(gbs, rcps)
    total = sum(rcps)
    ideals = [gbs * r / total for r in rcps]
    # The min-LBS floor may transfer units away from the largest shares:
    # each under-floor worker can pull at most one unit per enforcement.
    floor_slack = sum(1 for ideal in ideals if ideal < 1.0)
    for a, ideal in zip(alloc, ideals):
        assert abs(a - ideal) <= 1.0 + floor_slack + 1e-9


@given(rcps=rcps, gbs_mult=st.integers(1, 20))
@settings(max_examples=100, deadline=None)
def test_deterministic(rcps, gbs_mult):
    gbs = len(rcps) * gbs_mult
    assert allocate_lbs(gbs, rcps) == allocate_lbs(gbs, rcps)
