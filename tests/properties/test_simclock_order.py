"""Property suite: the calendar queue against the frozen heap reference.

Random interleavings of ``schedule`` / ``schedule_in`` / ``cancel`` /
``run_until`` / ``run`` are applied to a :class:`SimClock` (calendar
queue) and a :class:`HeapSimClock` (the frozen original) in lockstep.
After every operation the two clocks must agree on the firing log
(which callbacks fired, in what order, at what ``now``), the ``now``
trajectory, ``events_processed``, ``pending()``, and ``peek_time()``.
Timestamps are drawn from a tie-prone grid plus arbitrary floats, so
same-timestamp batches, cancelled heads, horizon-boundary events, and
events scheduled *during* a same-time batch are all exercised; the
past-schedule rejection path must raise on both clocks identically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simclock import Event, HeapSimClock, SimClock

# A coarse grid makes equal timestamps (and horizons landing exactly on
# event times) common instead of measure-zero.
GRID_TIMES = st.integers(min_value=0, max_value=160).map(lambda k: k * 0.25)
ANY_TIMES = st.one_of(
    GRID_TIMES,
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False,
              allow_infinity=False),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), ANY_TIMES),
        st.tuples(st.just("schedule_in"),
                  st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
                            allow_infinity=False)),
        # Same-instant scheduling: a guaranteed tie with `now`.
        st.tuples(st.just("schedule_now"), st.just(0.0)),
        # A callback that schedules more work when it fires — including
        # at its *own* timestamp, mid-batch.
        st.tuples(st.just("chain"), ANY_TIMES),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("run_until"), GRID_TIMES),
        st.tuples(st.just("run_until_capped"), GRID_TIMES,
                  st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("run"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("past"), st.just(0.0)),
    ),
    max_size=60,
)


class _Driver:
    """Applies one op stream to one clock, recording every firing."""

    def __init__(self, clock):
        self.clock = clock
        self.log: list[tuple[str, float]] = []
        self.events: list[Event] = []
        self.label = 0

    def _record(self, label: str) -> None:
        self.log.append((label, self.clock.now))

    def _chain(self, label: str, t: float) -> None:
        # Fires mid-batch: schedules a same-time event (must run in this
        # same pass, after the rest of the batch) and a later one.
        self.log.append((label, self.clock.now))
        self.events.append(
            self.clock.schedule(t, self._record, label + "/same"))
        self.events.append(
            self.clock.schedule(t + 0.5, self._record, label + "/later"))

    def apply(self, op: tuple):
        kind = op[0]
        clock = self.clock
        self.label += 1
        label = f"e{self.label}"
        if kind == "schedule":
            t = max(op[1], clock.now)
            self.events.append(clock.schedule(t, self._record, label))
        elif kind == "schedule_in":
            self.events.append(clock.schedule_in(op[1], self._record, label))
        elif kind == "schedule_now":
            self.events.append(clock.schedule(clock.now, self._record, label))
        elif kind == "chain":
            t = max(op[1], clock.now)
            self.events.append(clock.schedule(t, self._chain, label, t))
        elif kind == "cancel":
            if self.events:
                self.events[op[1] % len(self.events)].cancel()
        elif kind == "run_until":
            return clock.run_until(clock.now + op[1])
        elif kind == "run_until_capped":
            return clock.run_until(clock.now + op[1], max_events=op[2])
        elif kind == "run":
            return clock.run(max_events=op[1])
        elif kind == "past":
            t = clock.now - 1.0
            if t >= 0:
                with pytest.raises(ValueError):
                    clock.schedule(t, self._record, label)
        else:  # pragma: no cover
            raise AssertionError(kind)
        return None


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_calendar_matches_heap_reference(ops):
    """Every interleaving: identical observable behaviour on both clocks."""
    cal = _Driver(SimClock())
    heap = _Driver(HeapSimClock())
    for op in ops:
        r_cal = cal.apply(op)
        r_heap = heap.apply(op)
        assert r_cal == r_heap, (op, r_cal, r_heap)
        assert cal.log == heap.log
        assert cal.clock.now == heap.clock.now
        assert cal.clock.events_processed == heap.clock.events_processed
        assert cal.clock.pending() == heap.clock.pending()
        assert cal.clock.peek_time() == heap.clock.peek_time()
    # Drain both to the end: the tails must agree too.
    assert cal.clock.run() == heap.clock.run()
    assert cal.log == heap.log
    assert cal.clock.now == heap.clock.now
    assert cal.clock.pending() == heap.clock.pending() == 0


@settings(max_examples=60, deadline=None)
@given(ops=OPS, width=st.sampled_from([0.001, 0.02, 0.7, 13.0]),
       nbuckets=st.sampled_from([2, 7, 64, 512]))
def test_bucket_geometry_never_changes_order(ops, width, nbuckets):
    """Bucket width/count are performance knobs, not semantics."""
    ref = _Driver(SimClock())
    alt = _Driver(SimClock(bucket_width=width, n_buckets=nbuckets))
    for op in ops:
        assert ref.apply(op) == alt.apply(op)
        assert ref.log == alt.log
        assert ref.clock.now == alt.clock.now
        assert ref.clock.pending() == alt.clock.pending()
        assert ref.clock.peek_time() == alt.clock.peek_time()
    assert ref.clock.run() == alt.clock.run()
    assert ref.log == alt.log


def test_past_schedule_rejected_on_both():
    """The rejection tolerance is part of the shared contract."""
    for clock in (SimClock(), HeapSimClock()):
        clock.schedule(1.0, lambda: None)
        clock.run_until(1.0)
        with pytest.raises(ValueError):
            clock.schedule(0.5, lambda: None)
        # Within the float-noise tolerance: clamped to now, not rejected.
        ev = clock.schedule(1.0 - 1e-13, lambda: None)
        assert ev.time == 1.0
