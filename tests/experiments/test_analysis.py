"""Tests for run summaries and statistical comparisons."""

import math

import pytest

from repro.core.engine import TrainingEngine
from repro.experiments.analysis import (
    link_utilization,
    summarize,
    welch_comparison,
)


@pytest.fixture(scope="module")
def short_result():
    import numpy as np  # noqa: F401  (fixture-scope import)
    from repro.cluster.topology import ClusterTopology
    from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig

    topo = ClusterTopology.build(
        cores=[8, 4, 2], bandwidth=[20.0, 10.0, 5.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )
    cfg = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=240,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        gbs=GbsConfig(update_period_s=5.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
    )
    return TrainingEngine(cfg, topo, seed=0).run(20.0)


class TestSummarize:
    def test_consistency_with_result(self, short_result):
        s = summarize(short_result)
        assert s.total_iterations == sum(short_result.iterations)
        assert s.final_accuracy == short_result.final_mean_accuracy()
        assert s.epochs == short_result.epochs
        assert s.iterations_per_second == pytest.approx(
            s.total_iterations / short_result.horizon
        )

    def test_rows_render(self, short_result):
        rows = summarize(short_result).rows()
        assert len(rows) == 9
        assert rows[0][0] == "final accuracy"


class TestLinkUtilization:
    def test_all_links_present_and_positive(self, short_result):
        util = link_utilization(short_result)
        assert len(util) == 6  # 3 workers, full mesh
        assert all(v >= 0 for v in util.values())

    def test_matches_totals(self, short_result):
        util = link_utilization(short_result)
        total = sum(util.values()) * short_result.horizon
        assert total == pytest.approx(sum(short_result.link_bytes.values()) / 1e6)


class TestWelch:
    def test_clearly_different_samples(self):
        cmp = welch_comparison([0.9, 0.91, 0.89], [0.5, 0.52, 0.48])
        assert cmp.significant_at_05
        assert cmp.mean_a > cmp.mean_b

    def test_identical_samples_not_significant(self):
        cmp = welch_comparison([0.7, 0.71, 0.69], [0.7, 0.71, 0.69])
        assert not cmp.significant_at_05

    def test_single_seed_equal(self):
        cmp = welch_comparison([0.8], [0.8])
        assert cmp.p_value == 1.0

    def test_single_seed_different(self):
        cmp = welch_comparison([0.8], [0.6])
        assert cmp.p_value == 0.0
        assert math.isinf(cmp.t_statistic)

    def test_zero_variance_both_different_means(self):
        cmp = welch_comparison([0.8, 0.8], [0.6, 0.6])
        assert cmp.p_value == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            welch_comparison([], [0.5])
