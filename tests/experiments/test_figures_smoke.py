"""Smoke tests for every figure driver.

The benchmark suite runs the drivers at experiment scale; these tests
run each one end-to-end with a drastically shrunk workload (tiny
dataset, ~8 simulated seconds per run) so a broken driver fails the
unit suite rather than an hour-long benchmark run.
"""

import dataclasses

import pytest

import repro.experiments.ablations as ablations
import repro.experiments.figures as figures
import repro.experiments.runner as runner

_TINY = {"train_size": 400, "test_size": 120, "eval_subset": 100}


@pytest.fixture
def tiny_runs(monkeypatch):
    """Shrink every experiment the drivers launch."""
    original_run = runner.run_experiment

    def fast_run(spec):
        overrides = dict(spec.config_overrides)
        for key, value in _TINY.items():
            overrides.setdefault(key, value)
        return original_run(
            runner.RunSpec(
                environment=spec.environment,
                system=spec.system,
                seed=spec.seed,
                horizon=8.0,
                config_overrides=overrides,
            )
        )

    def fast_run_seeds(environment, system, *, seeds=None, horizon=None,
                       config_overrides=None):
        return [
            fast_run(
                runner.RunSpec(
                    environment=environment,
                    system=system,
                    seed=0,
                    config_overrides=dict(config_overrides or {}),
                )
            )
        ]

    def tiny_workload(base_fn):
        def make():
            w = base_fn()
            return dataclasses.replace(
                w, paper_horizon=32.0, train_size=400, test_size=120,
                eval_subset=100,
            )
        return make

    for module in (figures, ablations):
        if hasattr(module, "run_seeds"):
            monkeypatch.setattr(module, "run_seeds", fast_run_seeds)
        if hasattr(module, "bench_seeds"):
            monkeypatch.setattr(module, "bench_seeds", lambda: (0,))
        if hasattr(module, "cpu_workload"):
            monkeypatch.setattr(
                module, "cpu_workload", tiny_workload(runner.cpu_workload)
            )
    yield


CHEAP_TABLES = [figures.table1, figures.table2, figures.table3]

DRIVERS = [
    figures.fig05,
    figures.fig06,
    figures.fig07,
    figures.fig08,
    figures.fig09a,
    figures.fig09b,
    figures.fig09c,
    figures.fig11,
    figures.fig13,
    figures.fig14,
    figures.fig15,
    figures.fig16,
    figures.fig17,
    figures.fig18,
    figures.fig19,
    figures.fig20,
    figures.fig21,
    ablations.ablation_selectors,
    ablations.ablation_techniques,
    ablations.ablation_churn,
    ablations.ablation_network_model,
    ablations.ablation_overlay,
]


@pytest.mark.parametrize("driver", CHEAP_TABLES, ids=lambda d: d.__name__)
def test_table_drivers(driver):
    fig = driver()
    assert fig.rows
    assert "==" in fig.render()


@pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
def test_figure_driver_smoke(tiny_runs, driver):
    fig = driver()
    assert fig.rows, f"{driver.__name__} produced no rows"
    rendered = fig.render()
    assert fig.title in rendered
    # every row matches the header width
    for row in fig.rows:
        assert len(row) == len(fig.header)


def test_fig12_smoke(tiny_runs):
    # GPU driver exercised separately: its tiny runs are still the
    # slowest of the smoke set.
    fig = figures.fig12()
    assert len(fig.rows) == 10
