"""Tests for curve resampling, smoothing, and aggregation."""

import numpy as np
import pytest

from repro.experiments.curves import align_and_average, auc, ema, resample
from repro.utils.metrics import TimeSeries


def series(pairs):
    s = TimeSeries()
    for t, v in pairs:
        s.append(t, v)
    return s


class TestResample:
    def test_locf_semantics(self):
        s = series([(1, 0.1), (3, 0.5), (5, 0.9)])
        out = resample(s, np.array([0, 1, 2, 3, 4, 5, 6], dtype=float))
        np.testing.assert_allclose(out, [0.1, 0.1, 0.1, 0.5, 0.5, 0.9, 0.9])

    def test_exact_sample_times(self):
        s = series([(0, 0.0), (10, 1.0)])
        out = resample(s, np.array([0.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            resample(TimeSeries(), np.array([0.0]))

    def test_decreasing_grid_rejected(self):
        s = series([(0, 0.0)])
        with pytest.raises(ValueError):
            resample(s, np.array([1.0, 0.0]))


class TestEma:
    def test_constant_input_unchanged(self):
        out = ema(np.full(10, 0.7), alpha=0.3)
        np.testing.assert_allclose(out, 0.7)

    def test_smooths_toward_input(self):
        raw = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        out = ema(raw, alpha=0.5)
        assert out.std() < raw.std()

    def test_alpha_one_is_identity(self):
        raw = np.array([0.2, 0.9, 0.4])
        np.testing.assert_allclose(ema(raw, alpha=1.0), raw)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            ema(np.array([1.0]), alpha=0.0)


class TestAlignAndAverage:
    def test_mean_of_identical_runs(self):
        runs = [series([(0, 0.0), (10, 1.0)]) for _ in range(3)]
        grid, mean, std = align_and_average(runs, points=5)
        assert grid[0] == 0.0 and grid[-1] == 10.0
        np.testing.assert_allclose(std, 0.0)
        assert mean[-1] == 1.0

    def test_grid_spans_shortest_run(self):
        runs = [series([(0, 0.1), (20, 0.9)]), series([(0, 0.2), (10, 0.8)])]
        grid, _, _ = align_and_average(runs, points=4)
        assert grid[-1] == 10.0

    def test_std_reflects_disagreement(self):
        runs = [series([(0, 0.0), (10, 0.0)]), series([(0, 1.0), (10, 1.0)])]
        _, mean, std = align_and_average(runs, points=3)
        np.testing.assert_allclose(mean, 0.5)
        np.testing.assert_allclose(std, 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            align_and_average([])


class TestAuc:
    def test_constant_curve(self):
        s = series([(0, 0.5), (10, 0.5)])
        assert auc(s, horizon=10.0) == pytest.approx(0.5)

    def test_step_curve(self):
        # 0.0 until t=5, then 1.0 until t=10 -> mean 0.5
        s = series([(0, 0.0), (5, 1.0)])
        assert auc(s, horizon=10.0) == pytest.approx(0.5)

    def test_late_first_sample_counts_as_first_value(self):
        s = series([(5, 0.4)])
        assert auc(s, horizon=10.0) == pytest.approx(0.4)

    def test_better_curve_has_higher_auc(self):
        fast = series([(0, 0.0), (2, 0.8), (10, 0.9)])
        slow = series([(0, 0.0), (8, 0.8), (10, 0.9)])
        assert auc(fast, horizon=10.0) > auc(slow, horizon=10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            auc(TimeSeries())
