"""Tests for the generic sweep utility."""

import pytest

from repro.experiments.sweep import SweepPoint, grid_sweep, render_sweep

_FAST = {
    "train_size": 400,
    "test_size": 100,
    "eval_subset": 100,
}


class TestGridSweep:
    def test_cartesian_product_size(self):
        points = grid_sweep(
            "Homo A",
            "baseline",
            {"lr": [0.05, 0.1], "initial_lbs": [8, 16]},
            horizon=8.0,
            base_overrides=_FAST,
        )
        assert len(points) == 4
        assert {tuple(sorted(p.params.items())) for p in points} == {
            (("initial_lbs", 8), ("lr", 0.05)),
            (("initial_lbs", 8), ("lr", 0.1)),
            (("initial_lbs", 16), ("lr", 0.05)),
            (("initial_lbs", 16), ("lr", 0.1)),
        }

    def test_results_per_seed(self):
        points = grid_sweep(
            "Homo A",
            "baseline",
            {"lr": [0.1]},
            seeds=(0, 1),
            horizon=8.0,
            base_overrides=_FAST,
        )
        assert len(points[0].results) == 2
        assert all(a >= 0 for a in points[0].accuracies())

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep("Homo A", "baseline", {})

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep("Homo A", "baseline", {"lr": [0.1]}, seeds=())


class TestRenderSweep:
    def test_sorted_best_first(self):
        a = SweepPoint(params={"lr": 0.1})
        b = SweepPoint(params={"lr": 0.2})

        class Fake:
            def __init__(self, acc):
                self._acc = acc

            def final_mean_accuracy(self):
                return self._acc

        a.results = [Fake(0.5)]
        b.results = [Fake(0.9)]
        fig = render_sweep([a, b])
        assert fig.rows[0][0] == "0.2"
        assert fig.rows[0][1] == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_sweep([])
