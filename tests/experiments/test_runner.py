"""Tests for workload calibration, config building, and topology scaling."""

import pytest

from repro.experiments.environments import get_environment
from repro.experiments.runner import (
    RunSpec,
    SYSTEM_VARIANTS,
    build_config,
    build_topology,
    cpu_workload,
    gpu_workload,
    run_experiment,
)


class TestWorkloads:
    def test_cpu_workload_fast_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        w = cpu_workload()
        assert w.model == "mlp"
        assert w.time_scale == 0.25
        assert w.horizon() == pytest.approx(375.0)

    def test_cpu_workload_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        w = cpu_workload()
        assert w.model == "cipher"
        assert w.horizon() == pytest.approx(1500.0)

    def test_gpu_full_mode_stays_compressed(self, monkeypatch):
        # simulating 2 h of GPU-rate iterations is wall-infeasible and
        # dynamically redundant; full mode keeps a 10x compression.
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        w = gpu_workload()
        assert w.model == "mobilenet"
        assert w.horizon() == pytest.approx(720.0)

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "turbo")
        with pytest.raises(ValueError):
            cpu_workload().time_scale

    def test_wire_scale_preserves_comm_compute_ratio(self):
        w = cpu_workload()
        # scaled bandwidth divided by our model bytes equals paper
        # bandwidth divided by paper model bytes
        ours = 50.0 * w.wire_scale() / w.model_bytes()
        paper = 50.0 / (w.paper_model_mb * 1e6)
        assert ours == pytest.approx(paper)

    def test_gpu_workload_is_network_bound(self):
        w = gpu_workload()
        # one dense model exchange at scaled LAN speed must exceed the
        # iteration time (the severe-bottleneck regime of §5.2.2)
        transfer_s = w.model_bytes() * 8 / (1000.0 * w.wire_scale() * 1e6)
        iter_s = w.overhead + 32 / (8 * w.per_unit_rate)  # p2.8xlarge
        assert transfer_s > iter_s


class TestBuildConfig:
    def test_all_variants_build(self):
        w = cpu_workload()
        for variant in SYSTEM_VARIANTS:
            cfg = build_config(variant, w)
            assert cfg.lr == w.lr

    def test_baselines_have_dlion_features_off(self):
        cfg = build_config("hop", cpu_workload())
        assert not cfg.gbs.enabled
        assert not cfg.lbs.enabled
        assert not cfg.dkt.enabled
        assert not cfg.weighted_update
        assert cfg.system == "hop"

    def test_dlion_has_features_on(self):
        cfg = build_config("dlion", cpu_workload())
        assert cfg.gbs.enabled and cfg.lbs.enabled and cfg.dkt.enabled
        assert cfg.weighted_update

    def test_ablations(self):
        no_wu = build_config("dlion-no-wu", cpu_workload())
        assert not no_wu.weighted_update and no_wu.lbs.enabled
        no_dbwu = build_config("dlion-no-dbwu", cpu_workload())
        assert not no_dbwu.lbs.enabled and not no_dbwu.weighted_update
        assert no_dbwu.dkt.enabled  # DKT stays on in this ablation
        max10 = build_config("dlion-max10", cpu_workload())
        assert max10.maxn.fixed_n == 10.0
        assert not max10.dkt.enabled

    def test_overrides_win(self):
        cfg = build_config("dlion", cpu_workload(), lr=0.9)
        assert cfg.lr == 0.9

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_config("dlion-turbo", cpu_workload())


class TestBuildTopology:
    def test_static_env_scaled_bandwidth(self):
        w = cpu_workload()
        topo = build_topology(get_environment("Hetero NET A"), w)
        bw01 = topo.network.link(0, 1).bandwidth_at(0.0)
        assert bw01 == pytest.approx(50.0 * w.wire_scale())

    def test_compute_profile_from_cores(self):
        w = cpu_workload()
        topo = build_topology(get_environment("Hetero CPU A"), w)
        assert topo.compute[0].rate_at(0) == pytest.approx(24 * w.per_unit_rate)
        assert topo.compute[5].rate_at(0) == pytest.approx(6 * w.per_unit_rate)

    def test_dynamic_env_has_phase_traces(self):
        w = cpu_workload()
        topo = build_topology(get_environment("Dynamic SYS A"), w)
        dur = w.phase_duration()
        # Phase 1 = Homo B (24 cores); phase 2 = Hetero SYS A (worker 5: 6 cores)
        assert topo.compute[5].cores.value_at(0.0) == 24
        assert topo.compute[5].cores.value_at(dur + 1) == 6
        # Link 0-5 bandwidth: Homo B -> 50; Hetero SYS A -> min(50, 20) = 20
        ws = w.wire_scale()
        link = topo.network.link(0, 5)
        assert link.bandwidth_at(0.0) == pytest.approx(50 * ws)
        assert link.bandwidth_at(dur + 1) == pytest.approx(20 * ws)


class TestRunExperiment:
    def test_short_run_end_to_end(self):
        spec = RunSpec(
            environment="Homo A",
            system="baseline",
            seed=0,
            horizon=20.0,
            config_overrides={"train_size": 600, "test_size": 100, "eval_subset": 100},
        )
        res = run_experiment(spec)
        assert res.final_mean_accuracy() > 0.0
        assert all(it > 0 for it in res.iterations)
