"""Tests for the ASCII reporting helpers."""

from repro.experiments.reporting import FigureResult, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "long header"], [[1, 2.5], ["xx", None]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows equally wide
        assert len({len(l) for l in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.123" in out

    def test_none_renders_dash(self):
        out = format_table(["v"], [[None]])
        assert "-" in out.splitlines()[-1]


class TestFigureResult:
    def test_render_contains_everything(self):
        fr = FigureResult(
            figure="Fig. X",
            title="test",
            header=["k", "v"],
            rows=[["a", 1.0]],
            notes=["a note"],
        )
        out = fr.render()
        assert "Fig. X" in out
        assert "a note" in out
        assert "1.000" in out
