"""Tests for the Table 3 environment presets."""

import pytest

from repro.experiments.environments import ENVIRONMENTS, EnvSpec, get_environment


class TestTable3Coverage:
    def test_all_table3_rows_present(self):
        expected = {
            "Homo A", "Homo B", "Homo C",
            "Hetero CPU A", "Hetero CPU B",
            "Hetero NET A", "Hetero NET B",
            "Hetero SYS A", "Hetero SYS B", "Hetero SYS C",
            "Dynamic SYS A", "Dynamic SYS B",
        }
        assert expected <= set(ENVIRONMENTS)

    def test_paper_core_counts(self):
        assert get_environment("Hetero CPU A").cores == (24, 24, 12, 12, 6, 6)
        assert get_environment("Hetero CPU B").cores == (24, 24, 24, 24, 24, 4)

    def test_paper_bandwidths(self):
        assert get_environment("Hetero NET A").bandwidth == (50, 50, 35, 35, 20, 20)
        assert get_environment("Hetero SYS B").bandwidth == (20, 20, 35, 35, 50, 50)
        assert get_environment("Hetero SYS C").bandwidth == (190, 190, 140, 140, 100, 100)

    def test_gpu_environments_marked(self):
        assert get_environment("Homo C").platform == "gpu"
        assert get_environment("Hetero SYS C").platform == "gpu"
        assert get_environment("Homo A").platform == "cpu"

    def test_gpu_unit_counts(self):
        # 2x p2.8xlarge (8 GPUs) + 4x p2.xlarge (1 GPU)
        assert get_environment("Hetero SYS C").cores == (8, 8, 1, 1, 1, 1)

    def test_dynamic_envs_reference_real_phases(self):
        for name in ("Dynamic SYS A", "Dynamic SYS B"):
            env = get_environment(name)
            assert env.dynamic
            assert len(env.phases) == 3
            for phase in env.phases:
                assert phase in ENVIRONMENTS

    def test_dynamic_b_reverses_a(self):
        a = get_environment("Dynamic SYS A").phases
        b = get_environment("Dynamic SYS B").phases
        assert b == tuple(reversed(a))

    def test_unknown_environment(self):
        with pytest.raises(ValueError):
            get_environment("Homo Z")

    def test_static_paper_envs_have_six_workers(self):
        # Table 3 presets are all 6-worker clusters; scaling presets
        # like "Stress 1k" are exempt.
        for env in ENVIRONMENTS.values():
            if not env.dynamic and not env.name.startswith("Stress"):
                assert len(env.cores) == 6
                assert len(env.bandwidth) == 6

    def test_stress_preset_has_1000_workers(self):
        env = get_environment("Stress 1k")
        assert len(env.cores) == 1000
        assert len(env.bandwidth) == 1000
        # Tiled Hetero SYS A pattern
        assert env.cores[:6] == (24, 24, 12, 12, 6, 6)
        assert env.bandwidth[:6] == (50, 50, 35, 35, 20, 20)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EnvSpec(name="bad", platform="tpu")
        with pytest.raises(ValueError):
            EnvSpec(name="bad", platform="cpu", cores=(1,), bandwidth=(1,))
