"""Tests for custom environment files and result export."""

import json

import pytest

from repro.cluster.traces import ConstantTrace, PiecewiseTrace
from repro.experiments.envfile import load_environment, parse_environment, trace_from_spec
from repro.experiments.export import result_to_dict, write_accuracy_csv, write_json


VALID_DOC = {
    "name": "my-cluster",
    "platform": "cpu",
    "workers": [
        {"cores": 24, "bandwidth": 50},
        {"cores": [[0, 24], [300, 12]], "bandwidth": [[0, 50], [300, 20]]},
        {"cores": 6, "bandwidth": 20},
    ],
}


class TestTraceFromSpec:
    def test_scalar(self):
        t = trace_from_spec(24)
        assert isinstance(t, ConstantTrace)
        assert t.value_at(100.0) == 24.0

    def test_piecewise(self):
        t = trace_from_spec([[0, 24], [300, 12]])
        assert isinstance(t, PiecewiseTrace)
        assert t.value_at(299) == 24 and t.value_at(300) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            trace_from_spec("fast")
        with pytest.raises(ValueError):
            trace_from_spec([[0, 1, 2]])


class TestParseEnvironment:
    def test_valid_document(self):
        spec, cores, bandwidths = parse_environment(VALID_DOC)
        assert spec.name == "my-cluster"
        assert spec.platform == "cpu"
        assert len(cores) == 3
        assert cores[0] == 24.0
        assert isinstance(cores[1], PiecewiseTrace)
        assert isinstance(bandwidths[1], PiecewiseTrace)

    def test_missing_name(self):
        doc = dict(VALID_DOC)
        del doc["name"]
        with pytest.raises(ValueError, match="name"):
            parse_environment(doc)

    def test_too_few_workers(self):
        doc = dict(VALID_DOC)
        doc["workers"] = doc["workers"][:1]
        with pytest.raises(ValueError, match="workers"):
            parse_environment(doc)

    def test_worker_missing_fields(self):
        doc = json.loads(json.dumps(VALID_DOC))
        del doc["workers"][0]["cores"]
        with pytest.raises(ValueError, match="cores"):
            parse_environment(doc)

    def test_bad_platform(self):
        doc = dict(VALID_DOC)
        doc["platform"] = "tpu"
        with pytest.raises(ValueError, match="platform"):
            parse_environment(doc)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "env.json"
        path.write_text(json.dumps(VALID_DOC))
        spec, cores, bandwidths = load_environment(path)
        assert spec.name == "my-cluster"

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "env.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_environment(path)


class TestExport:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.cluster.topology import ClusterTopology
        from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
        from repro.core.engine import TrainingEngine

        topo = ClusterTopology.build(
            cores=[8, 4], bandwidth=[20.0, 10.0], per_core_rate=16.0,
            overhead=0.02, jitter=0.0,
        )
        cfg = TrainConfig(
            model="mlp",
            model_kwargs={"in_dim": 576, "hidden": (32,)},
            train_size=200, test_size=60, eval_subset=60, initial_lbs=8,
            gbs=GbsConfig(update_period_s=5.0),
            lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1),
            dkt=DktConfig(period_iters=10),
            eval_period_iters=10,
        )
        return TrainingEngine(cfg, topo, seed=0).run(15.0)

    def test_dict_roundtrips_through_json(self, result):
        doc = result_to_dict(result)
        text = json.dumps(doc)
        back = json.loads(text)
        assert back["n_workers"] == 2
        assert back["final_mean_accuracy"] == pytest.approx(
            result.final_mean_accuracy()
        )
        assert len(back["accuracy"]) == 2
        assert "0->1" in back["link_bytes"]

    def test_write_json(self, result, tmp_path):
        path = tmp_path / "run.json"
        write_json(result, path)
        doc = json.loads(path.read_text())
        assert doc["horizon"] == pytest.approx(result.horizon)

    def test_write_accuracy_csv(self, result, tmp_path):
        path = tmp_path / "acc.csv"
        write_accuracy_csv(result, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "worker,time_s,accuracy"
        assert len(lines) == 1 + sum(len(s) for s in result.accuracy)
