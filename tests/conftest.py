"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
from repro.nn.datasets import SyntheticImageDataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset.cifar_like(
        np.random.default_rng(7), train_size=240, test_size=80
    )


@pytest.fixture
def tiny_topology() -> ClusterTopology:
    """Three heterogeneous workers with modest bandwidth."""
    return ClusterTopology.build(
        cores=[8, 4, 2],
        bandwidth=[20.0, 10.0, 5.0],
        per_core_rate=16.0,
        overhead=0.02,
        jitter=0.0,
    )


@pytest.fixture
def fast_config() -> TrainConfig:
    """An MLP config small enough for sub-second engine runs."""
    return TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=240,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        lr=0.1,
        gbs=GbsConfig(update_period_s=5.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=50),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
    )
