"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_environment(self):
        # -e is validated in the command (either -e or --env-file).
        assert main(["run"]) == 2

    def test_run_rejects_unknown_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-e", "Homo Z"])

    def test_figure_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Hetero SYS A" in out
        assert "dlion" in out
        assert "fig11" in out

    def test_run_short(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "-s", "baseline", "--horizon", "15", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "iterations" in out

    def test_compare_short(self, capsys):
        rc = main(
            ["compare", "-e", "Homo A", "--systems", "baseline,hop", "--horizon", "12"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "hop" in out

    def test_compare_unknown_system(self, capsys):
        rc = main(["compare", "-e", "Homo A", "--systems", "zab"])
        assert rc == 2

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Virginia" in capsys.readouterr().out

    def test_run_with_churn(self, capsys):
        rc = main(
            [
                "run", "-e", "Homo A", "-s", "dlion", "--horizon", "20",
                "--churn", "6:3:leave", "--churn", "14:3:join",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "active workers" in out
        assert "6s->5" in out

    def test_run_with_bad_churn_entry(self):
        with pytest.raises(SystemExit):
            main(["run", "-e", "Homo A", "--churn", "oops"])

    def test_run_requires_exactly_one_env_source(self, capsys):
        assert main(["run", "-s", "baseline"]) == 2

    def test_run_with_env_file_and_outputs(self, tmp_path, capsys):
        import json

        env = {
            "name": "tiny",
            "platform": "cpu",
            "workers": [
                {"cores": 8, "bandwidth": 20},
                {"cores": [[0, 4], [10, 8]], "bandwidth": 10},
            ],
        }
        env_path = tmp_path / "env.json"
        env_path.write_text(json.dumps(env))
        out_json = tmp_path / "run.json"
        out_csv = tmp_path / "acc.csv"
        rc = main(
            [
                "run", "--env-file", str(env_path), "-s", "baseline",
                "--horizon", "12", "--output", str(out_json), "--csv", str(out_csv),
            ]
        )
        assert rc == 0
        assert "tiny" in capsys.readouterr().out
        doc = json.loads(out_json.read_text())
        assert doc["n_workers"] == 2
        assert out_csv.read_text().startswith("worker,time_s,accuracy")

    def test_run_with_observability_flags(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main(
            [
                "run", "-e", "Homo A", "-s", "dlion", "--horizon", "15",
                "--trace", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace          :" in out
        assert "simclock/dispatch" in out  # the profile table
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "compute" in names
        metrics = json.loads(metrics_path.read_text())
        assert "grad_bytes_total" in metrics
        assert "maxn_chosen_n" in metrics

    def test_report_summarizes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(
            ["run", "-e", "Homo A", "-s", "dlion", "--horizon", "15",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-worker compute/wait breakdown" in out
        assert "per-link utilization" in out
        assert "worker 0" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "not-a-trace.json"
        bad.write_text('{"foo": 1}')
        assert main(["report", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/trace.json"]) == 2


class TestRunBackendsAndWorkers:
    """The --backend / --workers / churn-sizing surface of run."""

    def test_workers_truncates_cluster(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "-s", "baseline", "--workers", "2",
             "--horizon", "10"]
        )
        assert rc == 0
        line = next(
            ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("iterations")
        )
        assert line.count(",") == 1  # two workers -> two counts

    def test_churn_validated_against_actual_cluster_size(self):
        # Regression: churn entries used to be validated against a
        # hard-coded 6-worker cluster instead of the built topology.
        with pytest.raises(ValueError, match="out of range"):
            main(
                ["run", "-e", "Homo A", "--workers", "3", "--horizon", "5",
                 "--churn", "2:4:leave"]
            )

    def test_churn_within_truncated_cluster(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "-s", "baseline", "--workers", "3",
             "--horizon", "12", "--churn", "5:2:leave"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "active workers" in out
        assert "->2" in out

    def test_proc_backend_rejects_churn(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--backend", "proc",
             "--churn", "5:0:leave"]
        )
        assert rc == 2
        assert "simulator feature" in capsys.readouterr().err

    def test_env_file_rejects_workers(self, tmp_path, capsys):
        import json

        env_path = tmp_path / "env.json"
        env_path.write_text(json.dumps({
            "name": "tiny",
            "platform": "cpu",
            "workers": [
                {"cores": 8, "bandwidth": 20},
                {"cores": 8, "bandwidth": 20},
            ],
        }))
        rc = main(
            ["run", "--env-file", str(env_path), "--workers", "2",
             "--horizon", "5"]
        )
        assert rc == 2
        assert "preset environments" in capsys.readouterr().err

    def test_proc_backend_smoke(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "-s", "baseline", "--backend", "proc",
             "--workers", "2", "--horizon", "10", "--speedup", "10"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "iterations" in out


class TestTelemetryFlags:
    """The --stats-interval/--status-dir/--ship-interval/status/report
    --metrics surface of the telemetry plane."""

    def test_telemetry_flags_rejected_on_sim_backend(self, capsys):
        for flag in (["--stats-interval", "1"], ["--status-dir", "/tmp/x"],
                     ["--ship-interval", "1"]):
            rc = main(["run", "-e", "Homo A", "--horizon", "5", *flag])
            assert rc == 2
            assert "--backend proc" in capsys.readouterr().err

    def test_nonpositive_intervals_rejected(self, capsys):
        for flag in ("--stats-interval", "--ship-interval"):
            rc = main(
                ["run", "-e", "Homo A", "--backend", "proc",
                 "--horizon", "5", flag, "0"]
            )
            assert rc == 2
            assert "must be positive" in capsys.readouterr().err

    def test_status_reads_a_snapshot(self, tmp_path, capsys):
        from repro.obs.live_status import build_snapshot, write_snapshot

        write_snapshot(tmp_path, build_snapshot(
            time_model_s=5.0, horizon_s=10.0, wall_elapsed_s=1.0,
            speedup=5.0,
            workers={0: {"iteration": 10, "rate": 2.0, "alive": True,
                         "restarts": 0}},
            cluster={"send_msgs_total": 7},
        ))
        assert main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[live t=" in out
        assert "worker" in out

    def test_status_without_snapshot_fails(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == 1
        assert "no live status snapshot" in capsys.readouterr().err

    def test_report_metrics_renders_percentiles(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["run", "-e", "Homo A", "-s", "dlion", "--horizon", "15",
             "--metrics-out", str(metrics_path)]
        ) == 0
        capsys.readouterr()
        assert main(["report", "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "iteration_seconds" in out

    def test_report_requires_some_input(self, capsys):
        assert main(["report"]) == 2
        assert "--metrics" in capsys.readouterr().err

    def test_report_rejects_garbage_metrics(self, tmp_path, capsys):
        bad = tmp_path / "m.json"
        bad.write_text("[1, 2]")
        assert main(["report", "--metrics", str(bad)]) == 2
        assert "cannot read metrics dump" in capsys.readouterr().err


class TestRunChaos:
    """The --chaos / --checkpoint-* validation surface of run."""

    def _plan(self, tmp_path, doc):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc) if isinstance(doc, dict) else doc)
        return str(path)

    def test_missing_plan_file(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--horizon", "5",
             "--chaos", "/nonexistent/plan.json"]
        )
        assert rc == 2
        assert "bad --chaos plan" in capsys.readouterr().err

    def test_plan_not_json(self, tmp_path, capsys):
        plan = self._plan(tmp_path, "{not json")
        rc = main(["run", "-e", "Homo A", "--horizon", "5", "--chaos", plan])
        assert rc == 2
        err = capsys.readouterr().err
        assert "bad --chaos plan" in err and "not valid JSON" in err

    def test_plan_with_unknown_keys(self, tmp_path, capsys):
        plan = self._plan(tmp_path, {"crashs": []})
        rc = main(["run", "-e", "Homo A", "--horizon", "5", "--chaos", plan])
        assert rc == 2
        assert "unknown chaos plan keys" in capsys.readouterr().err

    def test_plan_names_out_of_range_worker(self, tmp_path, capsys):
        # Validation must use the *built* topology size, like --churn.
        plan = self._plan(
            tmp_path, {"crashes": [{"time": 1.0, "worker": 5}]}
        )
        rc = main(
            ["run", "-e", "Homo A", "--workers", "3", "--horizon", "5",
             "--chaos", plan]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "worker 5" in err and "only 3 workers" in err

    def test_sim_run_with_plan(self, tmp_path, capsys):
        plan = self._plan(
            tmp_path,
            {"crashes": [{"time": 6.0, "worker": 2, "restart_after": 5.0}]},
        )
        rc = main(
            ["run", "-e", "Homo A", "-s", "dlion", "--workers", "3",
             "--horizon", "20", "--chaos", plan]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "active workers" in out
        assert "->2" in out and "->3" in out

    def test_checkpoint_flags_rejected_on_sim_backend(self, tmp_path, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--horizon", "5",
             "--checkpoint-dir", str(tmp_path)]
        )
        assert rc == 2
        assert "--backend proc" in capsys.readouterr().err

    def test_checkpoint_interval_requires_dir(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--backend", "proc", "--horizon", "5",
             "--checkpoint-interval", "2"]
        )
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_bad_checkpoint_interval(self, tmp_path, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--backend", "proc", "--horizon", "5",
             "--checkpoint-dir", str(tmp_path),
             "--checkpoint-interval", "-1"]
        )
        assert rc == 2
        assert "bad checkpoint settings" in capsys.readouterr().err


class TestOverlayFlag:
    def test_overlay_run(self, capsys):
        rc = main(["run", "-e", "Homo A", "--overlay", "ring",
                   "--horizon", "10", "--compute-threads", "1"])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_overlay_changes_traffic(self, tmp_path, capsys):
        import json

        paths = {}
        for name, extra in (("mesh", []), ("ring", ["--overlay", "ring"])):
            out = tmp_path / f"{name}.json"
            rc = main(["run", "-e", "Homo A", "--horizon", "10",
                       "--compute-threads", "1", "--output", str(out), *extra])
            assert rc == 0
            paths[name] = json.loads(out.read_text())
        capsys.readouterr()
        mesh_links = {k for k, v in paths["mesh"]["link_bytes"].items() if v}
        ring_links = {k for k, v in paths["ring"]["link_bytes"].items() if v}
        assert ring_links < mesh_links  # strictly fewer pairs exchange

    def test_overlay_rejected_on_proc_backend(self, capsys):
        rc = main(["run", "-e", "Homo A", "--backend", "proc",
                   "--overlay", "ring", "--horizon", "5"])
        assert rc == 2
        assert "--overlay" in capsys.readouterr().err

    def test_bad_overlay_spec(self, capsys):
        rc = main(["run", "-e", "Homo A", "--overlay", "mesh", "--horizon", "5"])
        assert rc == 2
        assert "bad --overlay" in capsys.readouterr().err

    def test_overlay_spec_validated_against_cluster_size(self, capsys):
        # kregular:7 is impossible on a 6-worker preset.
        rc = main(["run", "-e", "Homo A", "--overlay", "kregular:7",
                   "--horizon", "5"])
        assert rc == 2
        assert "bad --overlay" in capsys.readouterr().err

    def test_stress_preset_truncates(self, capsys):
        rc = main(["run", "-e", "Stress 1k", "--workers", "12",
                   "--overlay", "hier:4", "--horizon", "4",
                   "--compute-threads", "1"])
        assert rc == 0
        assert "Stress 1k" in capsys.readouterr().out
