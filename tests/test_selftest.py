"""Tests for the installation self-test."""

from repro.cli import main
from repro.selftest import CHECKS, run_selftest


class TestSelftest:
    def test_all_checks_pass(self, capsys):
        assert run_selftest(verbose=True) == 0
        out = capsys.readouterr().out
        assert f"{len(CHECKS)}/{len(CHECKS)} checks passed" in out

    def test_cli_command(self, capsys):
        assert main(["selftest"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_failure_counting(self, monkeypatch):
        import repro.selftest as st

        broken = [("always fails", lambda: "broken"),
                  ("raises", lambda: 1 / 0),
                  ("fine", lambda: None)]
        monkeypatch.setattr(st, "CHECKS", broken)
        assert st.run_selftest(verbose=False) == 2
