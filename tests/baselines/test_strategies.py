"""Unit tests for the four comparison-system strategies.

Strategies are tested against a stub WorkerContext — no engine needed.
"""

import numpy as np
import pytest

from repro.baselines.ako import AkoStrategy
from repro.baselines.baseline_full import BaselineStrategy
from repro.baselines.gaia import GaiaStrategy
from repro.baselines.hop import HopStrategy
from repro.core.strategy import DLionStrategy
from repro.core.config import MaxNConfig
from repro.core.sync import AsyncPolicy, BoundedPolicy, LockstepPolicy, SyncState


class StubCtx:
    """Minimal WorkerContext for strategy unit tests."""

    def __init__(self, n_workers=4, bandwidth=10.0, iter_time=0.5, weights=None):
        self.worker_id = 0
        self.n_workers = n_workers
        self._bw = bandwidth
        self._iter_time = iter_time
        self._weights = weights or {}

    @property
    def peers(self):
        return [i for i in range(self.n_workers) if i != self.worker_id]

    def now(self):
        return 0.0

    def iter_time_estimate(self):
        return self._iter_time

    def plan_epoch(self):
        return None  # no per-iteration cache reuse in unit tests

    def bandwidth_to(self, dst):
        return self._bw

    def model_variables(self):
        return self._weights


@pytest.fixture
def grads(rng):
    return {
        "a": rng.normal(size=(10, 10)).astype(np.float32),
        "b": rng.normal(size=(25,)).astype(np.float32),
    }


class TestBaselineStrategy:
    def test_sends_dense_to_all_peers(self, grads):
        s = BaselineStrategy(LockstepPolicy())
        plans = s.generate_partial_gradients(StubCtx(), grads)
        assert set(plans) == {1, 2, 3}
        for pg in plans.values():
            assert pg.kind == "dense"
            assert set(pg.payload) == {"a", "b"}

    def test_uses_lockstep_sync(self, grads):
        s = BaselineStrategy(LockstepPolicy())
        blocked = SyncState(iteration=2, received_from={1: 0, 2: 1, 3: 1})
        assert not s.synch_training(StubCtx(), blocked)


class TestHopStrategy:
    def test_dense_payload(self, grads):
        plans = HopStrategy().generate_partial_gradients(StubCtx(), grads)
        assert all(pg.kind == "dense" for pg in plans.values())

    def test_paper_defaults(self):
        s = HopStrategy()
        assert isinstance(s.sync_policy, BoundedPolicy)
        assert s.sync_policy.staleness == 5
        assert s.sync_policy.backup == 1

    def test_tolerates_one_straggler(self):
        s = HopStrategy()
        one_straggler = SyncState(iteration=10, received_from={1: 0, 2: 9, 3: 9})
        two_stragglers = SyncState(iteration=10, received_from={1: 0, 2: 0, 3: 9})
        assert s.synch_training(StubCtx(), one_straggler)
        assert not s.synch_training(StubCtx(), two_stragglers)


class TestGaiaStrategy:
    def test_insignificant_updates_accumulate(self, rng):
        weights = {"w": np.full(100, 10.0, dtype=np.float32)}
        s = GaiaStrategy(s_percent=1.0, lr=0.1, n_workers=4)
        ctx = StubCtx(weights=weights)
        tiny = {"w": np.full(100, 1e-4, dtype=np.float32)}
        plans = s.generate_partial_gradients(ctx, tiny)
        # |0.1/4 * 1e-4| / 10 << 1% -> nothing significant yet
        assert all(not pg.payload for pg in plans.values())
        # but the accumulator holds the gradient for later
        assert s._acc["w"].sum() == pytest.approx(100 * 1e-4, rel=1e-3)

    def test_significant_updates_ship_and_reset(self, rng):
        weights = {"w": np.full(10, 1.0, dtype=np.float32)}
        s = GaiaStrategy(s_percent=1.0, lr=1.0, n_workers=1)
        ctx = StubCtx(n_workers=2, weights=weights)
        big = {"w": np.full(10, 0.5, dtype=np.float32)}
        plans = s.generate_partial_gradients(ctx, big)
        idx, vals = plans[1].payload["w"]
        assert idx.size == 10
        np.testing.assert_allclose(vals, 0.5)
        assert s._acc["w"].sum() == 0.0  # shipped entries reset

    def test_same_payload_to_every_peer(self, rng):
        weights = {"w": rng.normal(size=20).astype(np.float32)}
        s = GaiaStrategy(lr=1.0, n_workers=1)
        plans = s.generate_partial_gradients(
            StubCtx(weights=weights), {"w": rng.normal(size=20).astype(np.float32)}
        )
        payloads = [pg.payload for pg in plans.values()]
        assert all(p is payloads[0] for p in payloads)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GaiaStrategy(s_percent=0.0)


class TestAkoStrategy:
    def test_round_robin_covers_everything(self, grads):
        s = AkoStrategy(partitions=4)
        ctx = StubCtx()
        seen: dict[str, set] = {"a": set(), "b": set()}
        for _ in range(4):
            plans = s.generate_partial_gradients(ctx, grads)
            for name, (idx, _) in plans[1].payload.items():
                seen[name].update(idx.tolist())
        assert len(seen["a"]) == 100
        assert len(seen["b"]) == 25

    def test_accumulates_unsent_partitions(self, rng):
        s = AkoStrategy(partitions=2)
        ctx = StubCtx(n_workers=2)
        g = {"w": np.ones(4, dtype=np.float32)}
        p0 = s.generate_partial_gradients(ctx, g)  # partition 0: idx 0,1
        idx0, vals0 = p0[1].payload["w"]
        np.testing.assert_array_equal(idx0, [0, 1])
        np.testing.assert_allclose(vals0, 1.0)
        p1 = s.generate_partial_gradients(ctx, g)  # partition 1 accumulated twice
        idx1, vals1 = p1[1].payload["w"]
        np.testing.assert_array_equal(idx1, [2, 3])
        np.testing.assert_allclose(vals1, 2.0)

    def test_async_policy(self):
        assert isinstance(AkoStrategy().sync_policy, AsyncPolicy)

    def test_partition_count_derived_from_budget(self, grads):
        # low bandwidth + short iterations -> many partitions
        s = AkoStrategy()
        s.generate_partial_gradients(StubCtx(bandwidth=0.5, iter_time=0.05), grads)
        many = s.partitions
        s2 = AkoStrategy()
        s2.generate_partial_gradients(StubCtx(bandwidth=1000.0, iter_time=10.0), grads)
        assert many > s2.partitions
        assert s2.partitions == 1

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            AkoStrategy(partitions=0)


class TestDLionStrategy:
    def test_sparse_payload_with_chosen_n(self, grads):
        s = DLionStrategy(BoundedPolicy(5), MaxNConfig())
        plans = s.generate_partial_gradients(StubCtx(bandwidth=1000.0), grads)
        for pg in plans.values():
            assert pg.kind == "sparse"
            assert pg.chosen_n is not None
