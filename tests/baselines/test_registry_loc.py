"""Tests for the system registry and Table 1 LoC accounting."""

import pytest

from repro.baselines.ako import AkoStrategy
from repro.baselines.baseline_full import BaselineStrategy
from repro.baselines.gaia import GaiaStrategy
from repro.baselines.hop import HopStrategy
from repro.baselines.loc import plugin_loc, table1_rows
from repro.baselines.registry import SYSTEMS, create_strategy
from repro.core.config import TrainConfig
from repro.core.strategy import DLionStrategy


class TestRegistry:
    def test_all_five_systems_resolve(self):
        expected = {
            "dlion": DLionStrategy,
            "baseline": BaselineStrategy,
            "ako": AkoStrategy,
            "gaia": GaiaStrategy,
            "hop": HopStrategy,
        }
        for name, cls in expected.items():
            cfg = TrainConfig(system=name)
            assert isinstance(create_strategy(cfg, worker_id=0), cls)

    def test_systems_tuple_matches_paper(self):
        assert set(SYSTEMS) == {"dlion", "baseline", "ako", "gaia", "hop"}

    def test_gaia_inherits_lr_from_config(self):
        cfg = TrainConfig(system="gaia", lr=0.42)
        s = create_strategy(cfg, 0)
        assert s.lr == 0.42

    def test_system_kwargs_forwarded(self):
        cfg = TrainConfig(system="hop", system_kwargs={"staleness": 9, "backup": 2})
        s = create_strategy(cfg, 0)
        assert s.sync_policy.staleness == 9
        assert s.sync_policy.backup == 2

    def test_dlion_sync_mode_respected(self):
        cfg = TrainConfig(system="dlion", sync_mode="async")
        s = create_strategy(cfg, 0)
        assert s.sync_policy.name == "async"

    def test_unknown_system(self):
        cfg = TrainConfig()
        object.__setattr__(cfg, "system", "pbft")
        with pytest.raises(ValueError):
            create_strategy(cfg, 0)

    def test_strategy_instances_are_per_worker(self):
        cfg = TrainConfig(system="ako")
        a = create_strategy(cfg, 0)
        b = create_strategy(cfg, 1)
        assert a is not b


class TestTable1Loc:
    def test_all_systems_counted(self):
        rows = table1_rows()
        assert set(rows) == {"baseline", "hop", "gaia", "ako", "dlion"}

    def test_baseline_is_one_liner(self):
        loc = plugin_loc("baseline")
        assert loc["generate_partial_gradients"] == 1
        assert loc["synch_training"] == 0  # inherited default

    def test_every_plugin_fits_the_papers_bound(self):
        # The paper's headline: each system needs at most ~23 lines.
        for system, apis in table1_rows().items():
            for api, loc in apis.items():
                assert loc <= 25, f"{system}.{api} too large ({loc})"

    def test_docstrings_not_counted(self):
        # Gaia's generate_partial_gradients has a body comment; counting
        # must exclude comments and docstrings so it stays small.
        assert plugin_loc("gaia")["generate_partial_gradients"] <= 20
