"""Live-backend integration tests: sim/proc parity, bytes, churn.

One real multi-process run (3 workers, truncated "Homo A", tiny MLP,
speedup 5) is shared module-wide and compared against the simulator on
the same config/topology/seed. A second run SIGKILLs a worker mid-run
to exercise the reconnect → retry-budget → membership-change path.
These are the acceptance criteria of the live-transport milestone.
"""

import pytest

from repro.cluster.chaos import ChaosPlan, CrashEvent
from repro.core.engine import TrainingEngine
from repro.core.live_engine import LiveEngine
from repro.experiments.environments import get_environment
from repro.experiments.runner import build_config, build_topology, workload_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.transport.codec import size_slack
from repro.transport.mesh import TransportConfig

N_WORKERS = 3
HORIZON = 30.0
SPEEDUP = 5.0
# The fast-mode MLP has three layers -> six weight variables.
N_VARS = 6

# Death detection must fit comfortably inside the horizon's wall budget.
FAST_TRANSPORT = TransportConfig(
    connect_timeout_s=2.0,
    send_timeout_s=1.0,
    retry_base_s=0.02,
    retry_max_s=0.1,
    retry_attempts=3,
    heartbeat_interval_s=0.05,
)


@pytest.fixture(scope="module")
def setup():
    """(config, topology) for a 3-worker slice of Homo A."""
    env = get_environment("Homo A")
    workload = workload_for(env)
    topo = build_topology(env, workload, n_workers=N_WORKERS)
    return build_config("dlion", workload), topo


@pytest.fixture(scope="module")
def sim_result(setup):
    config, topo = setup
    return TrainingEngine(config, topo, seed=0).run(HORIZON)


@pytest.fixture(scope="module")
def live_run(setup):
    """One full live run with tracing and metrics attached."""
    config, topo = setup
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = LiveEngine(
        config, topo, seed=0, speedup=SPEEDUP, tracer=tracer, metrics=metrics
    )
    result = engine.run(HORIZON)
    return result, tracer, metrics


class TestParity:
    def test_every_worker_trains(self, live_run):
        result, _, _ = live_run
        assert len(result.iterations) == N_WORKERS
        assert all(n > 10 for n in result.iterations)

    def test_final_accuracy_close_to_simulator(self, sim_result, live_run):
        result, _, _ = live_run
        live_acc = result.final_mean_accuracy()
        sim_acc = sim_result.final_mean_accuracy()
        assert live_acc == pytest.approx(sim_acc, abs=0.25)
        assert live_acc > 0.25  # actually learned, not noise-level

    def test_iteration_counts_same_regime(self, sim_result, live_run):
        result, _, _ = live_run
        # Real sockets and real numpy steps cost wall time the model
        # doesn't charge, so live lags sim slightly; it must stay in
        # the same regime, not collapse.
        assert min(result.iterations) >= 0.5 * min(sim_result.iterations)

    def test_cluster_series_merged(self, live_run):
        result, _, _ = live_run
        assert len(result.gbs) >= 1
        assert result.active_workers.values[0] == N_WORKERS
        assert result.epochs > 0


class TestByteAccounting:
    def test_estimates_and_sockets_agree_per_link(self, live_run):
        """Wire bytes track the Max-N plan estimates within the slack.

        ``grad_bytes_total`` counts the simulator-side estimates for
        every *planned* message; ``transport_send_bytes_total`` counts
        what the sockets actually carried. Frames still queued at the
        horizon never hit the wire, so actually-sent can trail the
        plan — but each sent frame is bounded by its estimate plus the
        documented codec slack, and most planned frames must ship.
        """
        _, _, metrics = live_run
        grad_b = metrics.get("grad_bytes_total")
        grad_n = metrics.get("grad_msgs_total")
        weight_b = metrics.get("weight_bytes_total")
        sent_b = metrics.get("transport_send_bytes_total")
        sent_n = metrics.get("transport_send_msgs_total")
        links = [
            (s, d)
            for s in range(N_WORKERS)
            for d in range(N_WORKERS)
            if s != d
        ]
        for s, d in links:
            est = grad_b.value(s, d) + weight_b.value(s, d)
            planned = grad_n.value(s, d)
            shipped = sent_n.value(s, d, "data")
            wire = sent_b.value(s, d, "data")
            assert planned > 0, f"link {s}->{d} planned nothing"
            assert shipped >= 0.5 * planned, f"link {s}->{d} barely shipped"
            assert wire <= est + size_slack(N_VARS) * shipped
            assert wire >= 0.25 * est

    def test_transport_connections_established(self, live_run):
        _, _, metrics = live_run
        connects = metrics.get("transport_connect_total")
        # Every worker opens control+data to each of its 2 peers.
        for w in range(N_WORKERS):
            assert sum(v for k, v in connects.items() if k[0] == w) >= 4

    def test_iterations_metric_matches_result(self, live_run):
        result, _, metrics = live_run
        iters = metrics.get("iterations_total")
        for w in range(N_WORKERS):
            assert iters.value(w) == result.iterations[w]


class TestTraceMerge:
    def test_all_workers_present_with_compute_spans(self, live_run):
        _, tracer, _ = live_run
        events = tracer.events()
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert {0, 1, 2} <= pids
        computes = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "compute"
        ]
        assert len(computes) > 3 * 10
        names = [
            e for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        ]
        assert len({e["pid"] for e in names}) >= 3  # deduped, one per worker


class TestChurn:
    def test_killed_worker_surfaces_clean_membership_change(self, setup):
        """SIGKILL one worker: survivors must detect the death through
        the retry budget and fold it into ``on_membership_change`` —
        and the run must end at the horizon, never hang.

        The kill is scripted as a chaos plan, so it is placed on the
        modelled clock and progress-gated: the victim must complete at
        least one iteration first, which keeps the scenario stable on
        loaded CI machines."""
        config, topo = setup
        plan = ChaosPlan(crashes=(CrashEvent(time=2.5, worker=2),))
        engine = LiveEngine(
            config, topo, seed=0, speedup=SPEEDUP, transport=FAST_TRANSPORT
        )
        result = engine.run(HORIZON, chaos=plan)
        # The victim never reported a final result; whatever telemetry
        # deltas it shipped before the kill are retained (crash-safe, at
        # most one shipping interval behind) and must stay consistent
        # with the merged metric catalog.
        iters = engine.metrics.get("iterations_total")
        assert result.iterations[2] == iters.value(2)
        assert result.iterations[2] < result.iterations[0]
        assert result.iterations[0] > 5
        assert result.iterations[1] > 5
        # Survivors recorded the 3 -> 2 membership transition.
        assert result.active_workers.values[0] == 3
        assert result.active_workers.values[-1] == 2
