"""Token-bucket shaper tests against an injected fake clock.

``reserve`` is a pure function of the injected ``time_fn``, so the
pacing arithmetic (debt, refill, burst cap, rate changes) is testable
without sleeping.
"""

import asyncio

import pytest

from repro.transport.shaper import TokenBucket


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestReserve:
    def test_within_burst_is_free(self):
        clock = FakeClock()
        b = TokenBucket(100.0, 50.0, time_fn=clock)
        assert b.reserve(30) == 0.0
        assert b.reserve(20) == 0.0

    def test_debt_waits_proportionally_to_rate(self):
        clock = FakeClock()
        b = TokenBucket(100.0, 50.0, time_fn=clock)
        # 70 bytes against a 50-byte burst: 20 bytes of debt at 100 B/s.
        assert b.reserve(70) == pytest.approx(0.2)

    def test_refill_restores_tokens_over_time(self):
        clock = FakeClock()
        b = TokenBucket(100.0, 50.0, time_fn=clock)
        assert b.reserve(70) == pytest.approx(0.2)
        clock.t += 0.2  # exactly pays the debt back
        assert b.reserve(10) == pytest.approx(0.1)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        b = TokenBucket(100.0, 50.0, time_fn=clock)
        clock.t += 1000.0
        # Long idle must not bank more than one burst of credit.
        assert b.reserve(50) == 0.0
        assert b.reserve(100) == pytest.approx(1.0)

    def test_average_rate_converges(self):
        clock = FakeClock()
        b = TokenBucket(1000.0, 100.0, time_fn=clock)
        total_wait = 0.0
        for _ in range(100):
            wait = b.reserve(100)
            total_wait += wait
            clock.t += wait
        # 10_000 bytes at 1000 B/s with a 100-byte burst: ~9.9 s total.
        assert total_wait == pytest.approx(9.9, rel=0.05)

    def test_set_rate_refills_at_old_rate_first(self):
        clock = FakeClock()
        b = TokenBucket(100.0, 50.0, time_fn=clock)
        b.reserve(50)  # empty the bucket at t=0
        clock.t += 1.0  # 100 tokens accrue at the OLD rate, capped at 50
        b.set_rate(1.0)
        # Burst restored by the old rate; further debt repaid at 1 B/s.
        assert b.reserve(51) == pytest.approx(1.0)

    def test_default_burst_floor(self):
        b = TokenBucket(1.0, time_fn=FakeClock())
        # Tiny rates still pass one typical frame without stalling.
        assert b.reserve(8192) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, -1.0)
        b = TokenBucket(10.0)
        with pytest.raises(ValueError):
            b.set_rate(0.0)
        with pytest.raises(ValueError):
            b.reserve(-1)


class TestThrottle:
    def test_throttle_sleeps_the_reserve_delay(self):
        async def run():
            clock = FakeClock()
            b = TokenBucket(1e9, 100.0, time_fn=clock)
            # Within burst: no sleep.
            assert await b.throttle(50) == 0.0
            # Beyond burst: positive (tiny, rate is huge) sleep.
            assert await b.throttle(1000) > 0.0

        asyncio.run(run())
