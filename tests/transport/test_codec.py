"""Wire-codec tests: round-trips, header validation, and size parity.

The hypothesis round-trip properties pin the invariant the mesh relies
on: any message the engine can emit survives encode → decode with its
payload intact. The size-parity tests pin the documented bound between
``len(encode_message(m))`` and the simulator's ``wire_bytes()``
estimates (codec module docstring), which keeps Max-N link budgets
computed from estimates honest on real sockets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.messages import (
    CONTROL_MESSAGE_BYTES,
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.transport.codec import (
    Bye,
    CodecError,
    FRAME_HEADER_BYTES,
    Heartbeat,
    Hello,
    MAGIC,
    VERSION,
    decode_frame_header,
    decode_message,
    encode_message,
    size_slack,
)

_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)
_f32 = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
)


@st.composite
def sparse_payloads(draw):
    """Dict of name -> (uint32 indices, float32 values), aligned 1-D."""
    payload = {}
    for name in draw(st.lists(_names, min_size=1, max_size=4, unique=True)):
        n = draw(st.integers(min_value=0, max_value=32))
        idx = np.array(
            draw(st.lists(st.integers(0, 2**31 - 1), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        vals = np.array(
            draw(st.lists(_f32, min_size=n, max_size=n)), dtype=np.float32
        )
        payload[name] = (idx, vals)
    return payload


@st.composite
def dense_payloads(draw):
    """Dict of name -> small float32 ndarray (1-3 dims)."""
    payload = {}
    for name in draw(st.lists(_names, min_size=1, max_size=3, unique=True)):
        shape = tuple(
            draw(st.lists(st.integers(1, 5), min_size=1, max_size=3))
        )
        flat = draw(
            st.lists(
                _f32,
                min_size=int(np.prod(shape)),
                max_size=int(np.prod(shape)),
            )
        )
        payload[name] = np.array(flat, dtype=np.float32).reshape(shape)
    return payload


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        sender=st.integers(0, 100),
        iteration=st.integers(0, 10**6),
        lbs=st.integers(1, 4096),
        payload=sparse_payloads(),
    )
    def test_sparse_gradients(self, sender, iteration, lbs, payload):
        msg = GradientMessage(
            sender=sender, iteration=iteration, lbs=lbs, sparse=payload
        )
        out = decode_message(encode_message(msg))
        assert isinstance(out, GradientMessage)
        assert (out.sender, out.iteration, out.lbs) == (sender, iteration, lbs)
        assert out.dense is None
        assert list(out.sparse) == list(payload)
        for name, (idx, vals) in payload.items():
            oi, ov = out.sparse[name]
            np.testing.assert_array_equal(oi, idx)
            np.testing.assert_array_equal(ov, vals)

    @settings(max_examples=50, deadline=None)
    @given(
        sender=st.integers(0, 100),
        iteration=st.integers(0, 10**6),
        lbs=st.integers(1, 4096),
        payload=dense_payloads(),
    )
    def test_dense_gradients(self, sender, iteration, lbs, payload):
        msg = GradientMessage(
            sender=sender, iteration=iteration, lbs=lbs, dense=payload
        )
        out = decode_message(encode_message(msg))
        assert out.sparse is None
        assert list(out.dense) == list(payload)
        for name, arr in payload.items():
            assert out.dense[name].shape == arr.shape
            np.testing.assert_array_equal(out.dense[name], arr)

    @settings(max_examples=30, deadline=None)
    @given(
        sender=st.integers(0, 100),
        iteration=st.integers(0, 10**6),
        payload=dense_payloads(),
    )
    def test_weights(self, sender, iteration, payload):
        msg = WeightMessage(sender=sender, iteration=iteration, weights=payload)
        out = decode_message(encode_message(msg))
        assert isinstance(out, WeightMessage)
        assert (out.sender, out.iteration) == (sender, iteration)
        for name, arr in payload.items():
            np.testing.assert_array_equal(out.weights[name], arr)

    @settings(max_examples=50, deadline=None)
    @given(
        sender=st.integers(0, 100),
        iteration=st.integers(0, 10**6),
        loss=st.floats(allow_nan=False, allow_infinity=False),
        rcp=st.floats(allow_nan=False, allow_infinity=False),
        samples=st.integers(0, 2**50),
        t=st.floats(min_value=0, max_value=1e9),
    )
    def test_small_messages(self, sender, iteration, loss, rcp, samples, t):
        for msg in (
            LossShareMessage(sender=sender, iteration=iteration, avg_loss=loss),
            DktRequestMessage(sender=sender, iteration=iteration),
            RcpShareMessage(sender=sender, rcp=rcp),
            Hello(sender, 1),
            Heartbeat(sender, samples, t),
            Bye(sender),
        ):
            assert decode_message(encode_message(msg)) == msg

    @settings(max_examples=30, deadline=None)
    @given(
        sender=st.integers(0, 100),
        kind=_names,
        payload=st.dictionaries(_names, st.integers(-1000, 1000), max_size=4),
    )
    def test_control(self, sender, kind, payload):
        msg = ControlMessage(sender=sender, kind=kind, payload=payload)
        out = decode_message(encode_message(msg))
        assert isinstance(out, ControlMessage)
        assert (out.sender, out.kind, out.payload) == (sender, kind, payload)


class TestSizeParity:
    """Satellite: codec frame sizes vs. the simulator's estimates."""

    def test_control_frames_match_estimates_exactly(self):
        for msg in (
            LossShareMessage(sender=1, iteration=7, avg_loss=0.5),
            DktRequestMessage(sender=2, iteration=9),
            RcpShareMessage(sender=3, rcp=42.0),
            ControlMessage(sender=4, kind="go", payload={"iteration": 3}),
        ):
            assert len(encode_message(msg)) == msg.wire_bytes()
            assert len(encode_message(msg)) == CONTROL_MESSAGE_BYTES

    def test_transport_frames_are_control_sized(self):
        for msg in (Hello(0, 1), Heartbeat(0, 123, 4.5), Bye(0)):
            assert len(encode_message(msg)) == CONTROL_MESSAGE_BYTES

    @settings(max_examples=40, deadline=None)
    @given(payload=sparse_payloads())
    def test_sparse_gradient_within_slack(self, payload):
        msg = GradientMessage(sender=0, iteration=1, lbs=32, sparse=payload)
        actual = len(encode_message(msg))
        assert abs(actual - msg.wire_bytes()) <= size_slack(len(payload))

    @settings(max_examples=40, deadline=None)
    @given(payload=dense_payloads())
    def test_dense_gradient_within_slack(self, payload):
        msg = GradientMessage(sender=0, iteration=1, lbs=32, dense=payload)
        actual = len(encode_message(msg))
        assert abs(actual - msg.wire_bytes()) <= size_slack(len(payload))

    @settings(max_examples=40, deadline=None)
    @given(payload=dense_payloads())
    def test_weight_snapshot_within_slack(self, payload):
        msg = WeightMessage(sender=0, iteration=1, weights=payload)
        actual = len(encode_message(msg))
        assert abs(actual - msg.wire_bytes()) <= size_slack(len(payload))


class TestValidation:
    def test_bad_magic_rejected(self):
        frame = bytearray(encode_message(Bye(0)))
        frame[0:2] = b"XX"
        with pytest.raises(CodecError, match="magic"):
            decode_message(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_message(Bye(0)))
        frame[2] = VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_message(bytes(frame))

    def test_unknown_type_rejected(self):
        frame = bytearray(encode_message(Bye(0)))
        frame[3] = 250
        with pytest.raises(CodecError, match="unknown message type"):
            decode_message(bytes(frame))

    def test_short_header_rejected(self):
        with pytest.raises(CodecError, match="short header"):
            decode_frame_header(MAGIC)

    def test_length_mismatch_rejected(self):
        frame = encode_message(Bye(0))
        with pytest.raises(CodecError, match="length mismatch"):
            decode_message(frame[:-1])

    def test_truncated_gradient_body_rejected(self):
        payload = {"w": (np.arange(8, dtype=np.int64), np.ones(8, dtype=np.float32))}
        msg = GradientMessage(sender=0, iteration=1, lbs=32, sparse=payload)
        frame = bytearray(encode_message(msg))
        # Keep the header's body_len but hand decode a shorter body.
        body = bytes(frame[FRAME_HEADER_BYTES:-12])
        from repro.transport.codec import FRAME_HEADER, T_GRADIENT

        hdr = FRAME_HEADER.pack(MAGIC, VERSION, T_GRADIENT, len(body))
        with pytest.raises(CodecError):
            decode_message(hdr + body)

    def test_misaligned_sparse_rejected(self):
        msg = GradientMessage(
            sender=0,
            iteration=1,
            lbs=32,
            sparse={"w": (np.arange(4, dtype=np.int64), np.ones(3, dtype=np.float32))},
        )
        with pytest.raises(CodecError, match="aligned"):
            encode_message(msg)

    def test_oversized_name_rejected(self):
        msg = WeightMessage(
            sender=0, iteration=0, weights={"x" * 100: np.ones(2, dtype=np.float32)}
        )
        with pytest.raises(CodecError, match="name too long"):
            encode_message(msg)

    def test_unencodable_object_rejected(self):
        with pytest.raises(CodecError, match="cannot encode"):
            encode_message(object())


class TestBufferPaths:
    """Edge cases of the preallocated-buffer encode path, plus the
    zero-allocation property the transport's throughput rests on."""

    def test_zero_length_sparse_gradient(self):
        msg = GradientMessage(
            sender=1, iteration=2, lbs=8,
            sparse={"w": (np.empty(0, dtype=np.int64),
                          np.empty(0, dtype=np.float32))},
        )
        out = decode_message(encode_message(msg))
        idx, vals = out.sparse["w"]
        assert idx.size == 0 and vals.size == 0

    def test_zero_length_dense_gradient(self):
        msg = GradientMessage(
            sender=1, iteration=2, lbs=8,
            dense={"b": np.empty((0,), dtype=np.float32)},
        )
        out = decode_message(encode_message(msg))
        assert out.dense["b"].shape == (0,)

    def test_single_var_weights(self):
        msg = WeightMessage(
            sender=3, iteration=7,
            weights={"w": np.arange(6, dtype=np.float32).reshape(2, 3)},
        )
        out = decode_message(encode_message(msg))
        np.testing.assert_array_equal(out.weights["w"], msg.weights["w"])
        assert out.weights["w"].shape == (2, 3)

    def test_max_size_frame_round_trips(self):
        from repro.transport.codec import MAX_BODY_BYTES

        # One dense var close to (but under) the body cap; one over it.
        n = (MAX_BODY_BYTES - 4096) // 4
        big = np.ones(n, dtype=np.float32)
        msg = WeightMessage(sender=0, iteration=0, weights={"w": big})
        out = decode_message(encode_message(msg))
        assert out.weights["w"].size == n
        too_big = np.ones(MAX_BODY_BYTES // 4 + 1, dtype=np.float32)
        with pytest.raises(CodecError, match="body too large"):
            encode_message(
                WeightMessage(sender=0, iteration=0, weights={"w": too_big})
            )

    def test_encode_into_reuses_one_buffer(self):
        from repro.transport.codec import FrameBuffer, encode_into

        fbuf = FrameBuffer(64)  # deliberately small: must grow once
        m1 = WeightMessage(
            sender=0, iteration=1, weights={"w": np.ones(500, dtype=np.float32)}
        )
        m2 = LossShareMessage(sender=0, iteration=2, avg_loss=0.5)
        f1 = bytes(encode_into(m1, fbuf))
        f2 = bytes(encode_into(m2, fbuf))  # smaller frame, same buffer
        assert decode_message(f1).weights["w"].size == 500
        assert decode_message(f2).avg_loss == 0.5
        assert f1 == encode_message(m1)  # bit-identical to the allocator path
        assert f2 == encode_message(m2)

    def test_encode_steady_state_allocates_nothing(self):
        """After warmup, re-encoding into a pooled buffer must not grow
        traced memory: the zero-copy claim, machine-checked (same idiom
        as tests/nn/test_workspace.py for the compute workspace)."""
        import gc
        import tracemalloc

        from repro.transport.codec import FrameBuffer, encode_into

        fbuf = FrameBuffer()
        sparse = {"w": (np.arange(256, dtype=np.int64),
                        np.ones(256, dtype=np.float32))}
        dense = {"layer": np.ones((32, 16), dtype=np.float32)}
        msgs = [
            GradientMessage(sender=0, iteration=1, lbs=32, sparse=sparse),
            GradientMessage(sender=0, iteration=1, lbs=32, dense=dense),
            WeightMessage(sender=0, iteration=1, weights=dense),
            Heartbeat(0, 123, 4.5, wall=6.7),
        ]
        for _ in range(3):  # warm the buffer to its steady-state size
            for m in msgs:
                encode_into(m, fbuf)
        gc.collect()
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            for _ in range(20):
                for m in msgs:
                    encode_into(m, fbuf)
            gc.collect()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert current - base < 4096, f"encode leaked {current - base} B"
        # Transients stay in bookkeeping territory — far below one
        # payload copy (the sparse grad alone is ~3 KB on the wire).
        assert peak - base < 8192, f"encode temporaries peaked at {peak - base} B"

    def test_decode_returns_views_on_little_endian(self):
        import sys

        if sys.byteorder != "little":
            pytest.skip("wire views require a little-endian host")
        msg = GradientMessage(
            sender=0, iteration=1, lbs=32,
            sparse={"w": (np.arange(8, dtype=np.int64),
                          np.ones(8, dtype=np.float32))},
        )
        out = decode_message(encode_message(msg))
        idx, vals = out.sparse["w"]
        # frombuffer views of the received frame: read-only, no copy.
        assert not vals.flags.writeable
        assert vals.base is not None
