"""ShmRing unit tests: SPSC ring mechanics over real shared memory.

The wrap sentinel, all-or-nothing batch push, monotonic positions, and
the create/attach/sweep lifecycle are exercised in-process (one object
as producer, one as consumer, same segment) — the cross-process story
is covered by the mesh lane tests and the live-smoke CI run.
"""

import os

import pytest

from repro.transport.shm import (
    ShmRing,
    ShmRingError,
    ring_name,
    shm_available,
    sweep_ring,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shared memory"
)


def _pair(capacity: int = 4096, tag: str = "t"):
    name = ring_name(f"{tag}{os.getpid()}", 0, 1)
    consumer = ShmRing.create(name, capacity)
    producer = ShmRing.attach(name)
    return name, producer, consumer


class TestRoundTrip:
    def test_records_come_back_in_order(self):
        _, w, r = _pair()
        try:
            frames = [bytes([i]) * (i * 7 % 50) for i in range(40)]
            assert w.push_many(frames)
            assert r.pop_all() == frames
            assert r.pending_bytes() == 0
        finally:
            w.close()
            r.close()

    def test_zero_length_records_survive(self):
        _, w, r = _pair()
        try:
            assert w.push_many([b"", b"x", b""])
            assert r.pop_all() == [b"", b"x", b""]
        finally:
            w.close()
            r.close()

    def test_wraparound_preserves_payloads(self):
        """Push/pop far more bytes than the capacity so records land on
        every offset, including the skip-sentinel edge cases."""
        _, w, r = _pair(capacity=4096)
        try:
            sent = []
            for i in range(300):
                batch = [bytes([i % 256]) * ((i * 131) % 200) for _ in range(3)]
                assert w.push_many(batch)
                sent.extend(batch)
                got = r.pop_all()
                assert got == sent[: len(got)]
                del sent[: len(got)]
            assert r.pop_all() == sent
        finally:
            w.close()
            r.close()

    def test_pop_all_respects_max_records(self):
        _, w, r = _pair()
        try:
            assert w.push_many([b"a"] * 10)
            assert len(r.pop_all(max_records=3)) == 3
            assert len(r.pop_all()) == 7
        finally:
            w.close()
            r.close()


class TestBackpressure:
    def test_full_ring_rejects_batch_without_writing(self):
        _, w, r = _pair(capacity=4096)
        try:
            big = bytes(1000)
            pushes = 0
            while w.push_many([big]):
                pushes += 1
            assert pushes >= 3
            pending = r.pending_bytes()
            assert not w.push_many([big])  # all-or-nothing: no partial write
            assert r.pending_bytes() == pending
            assert r.pop_all() == [big] * pushes  # drain frees space again
            assert w.push_many([big])
        finally:
            w.close()
            r.close()

    def test_oversized_frame_raises(self):
        _, w, r = _pair(capacity=4096)
        try:
            with pytest.raises(ShmRingError):
                w.push_many([bytes(5000)])
        finally:
            w.close()
            r.close()


class TestLifecycle:
    def test_attach_missing_ring_times_out(self):
        with pytest.raises(ShmRingError, match="never appeared"):
            ShmRing.attach(ring_name("nosuch", 0, 1), timeout_s=0.05)

    def test_creator_close_unlinks_segment(self):
        name, w, r = _pair()
        w.close()
        r.close()
        assert not sweep_ring(name)  # already gone

    def test_sweep_reclaims_a_leaked_segment(self):
        name = ring_name(f"leak{os.getpid()}", 0, 1)
        ring = ShmRing.create(name, 4096)
        # Simulate a crashed creator: detach without unlinking.
        ring._shm.close()
        assert sweep_ring(name)
        assert not sweep_ring(name)

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            ShmRing.create(ring_name(f"cap{os.getpid()}", 0, 1), 100)
