"""Unit tests for the atomic checkpoint store used by the live backend."""

import os
import pickle

import numpy as np
import pytest

from repro.transport.checkpoint import (
    CheckpointConfig,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    load_latest,
    write_checkpoint,
)


def _arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "dense0/W": rng.normal(size=(4, 3)).astype(np.float32),
        "dense0/b": rng.normal(size=(3,)).astype(np.float32),
        "__bn0/mean": rng.normal(size=(3,)).astype(np.float64),
    }


def _meta(iteration=5, **kw):
    meta = {
        "format": 1,
        "worker": 1,
        "iteration": iteration,
        "rng": {"sampler": {"state": 123}},
        "received_from": {0: 4, 2: 5},
    }
    meta.update(kw)
    return meta


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            CheckpointConfig(directory="x", interval_s=0.0)
        with pytest.raises(ValueError, match="retention"):
            CheckpointConfig(directory="x", retention=0)
        cfg = CheckpointConfig(directory="x")
        assert cfg.interval_s == 5.0 and cfg.retention == 2

    def test_picklable(self):
        cfg = CheckpointConfig(directory="/tmp/ck", interval_s=2.0, retention=3)
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestRoundTrip:
    def test_exact_restore(self, tmp_path):
        arrays, meta = _arrays(), _meta()
        path = write_checkpoint(str(tmp_path), 1, arrays, meta)
        assert path == checkpoint_path(str(tmp_path), 1, 5)
        got_arrays, got_meta = load_checkpoint(path)
        assert got_meta == meta
        assert set(got_arrays) == set(arrays)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(got_arrays[name], arr)
            assert got_arrays[name].dtype == arr.dtype

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_checkpoint(str(tmp_path), 0, _arrays(), _meta())
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]


class TestListing:
    def test_newest_first_and_per_worker(self, tmp_path):
        d = str(tmp_path)
        write_checkpoint(d, 0, _arrays(), _meta(iteration=3), retention=10)
        write_checkpoint(d, 0, _arrays(), _meta(iteration=12), retention=10)
        write_checkpoint(d, 1, _arrays(), _meta(iteration=7), retention=10)
        assert list_checkpoints(d, 0) == [
            checkpoint_path(d, 0, 12),
            checkpoint_path(d, 0, 3),
        ]
        assert list_checkpoints(d, 1) == [checkpoint_path(d, 1, 7)]
        assert list_checkpoints(d, 2) == []

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_checkpoints(str(tmp_path / "nope"), 0) == []


class TestRetention:
    def test_prunes_oldest(self, tmp_path):
        d = str(tmp_path)
        for it in (1, 2, 3, 4):
            write_checkpoint(d, 2, _arrays(), _meta(iteration=it), retention=2)
        assert list_checkpoints(d, 2) == [
            checkpoint_path(d, 2, 4),
            checkpoint_path(d, 2, 3),
        ]

    def test_retention_is_per_worker(self, tmp_path):
        d = str(tmp_path)
        write_checkpoint(d, 0, _arrays(), _meta(iteration=1), retention=1)
        write_checkpoint(d, 1, _arrays(), _meta(iteration=1), retention=1)
        assert list_checkpoints(d, 0) and list_checkpoints(d, 1)


class TestCorruption:
    def test_truncated_file_raises(self, tmp_path):
        path = write_checkpoint(str(tmp_path), 0, _arrays(), _meta())
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="corrupt"):
            load_checkpoint(path)

    def test_load_latest_skips_corrupt_and_falls_back(self, tmp_path):
        d = str(tmp_path)
        write_checkpoint(d, 0, _arrays(seed=1), _meta(iteration=3), retention=5)
        newest = write_checkpoint(
            d, 0, _arrays(seed=2), _meta(iteration=9), retention=5
        )
        with open(newest, "wb") as fh:
            fh.write(b"garbage that is not a zip archive")
        result = load_latest(d, 0)
        assert result is not None
        arrays, meta = result
        assert meta["iteration"] == 3
        np.testing.assert_array_equal(arrays["dense0/W"], _arrays(seed=1)["dense0/W"])

    def test_load_latest_none_when_nothing_readable(self, tmp_path):
        assert load_latest(str(tmp_path), 0) is None
        path = checkpoint_path(str(tmp_path), 0, 1)
        with open(path, "wb") as fh:
            fh.write(b"junk")
        assert load_latest(str(tmp_path), 0) is None
