"""Tests for the live transport stack (codec, shaper, mesh, engine)."""
