"""PeerMesh tests: two meshes talking over real loopback sockets.

Each test spins up real asyncio TCP endpoints inside ``asyncio.run``,
so delivery, channel separation, heartbeats, graceful Bye vs. crash
death, and outbox backpressure are exercised against actual sockets —
no pytest-asyncio dependency, no mocks of the transport itself.
"""

import asyncio

import numpy as np
import pytest

from repro.cluster.messages import (
    GradientMessage,
    LossShareMessage,
    WeightMessage,
)
from repro.obs.metrics import MetricsRegistry
from repro.transport.mesh import (
    CHANNEL_CONTROL,
    CHANNEL_DATA,
    PeerMesh,
    TransportConfig,
)

# Fast-failure config so death-detection tests finish in well under a
# second instead of the production multi-second retry budget.
FAST = TransportConfig(
    connect_timeout_s=1.0,
    send_timeout_s=1.0,
    retry_base_s=0.01,
    retry_max_s=0.05,
    retry_attempts=3,
    heartbeat_interval_s=0.05,
)


class Endpoint:
    """One mesh plus capture lists for everything it receives."""

    def __init__(self, worker_id: int, config=FAST, **kwargs):
        self.received = []
        self.dead = []
        self.heartbeats = []
        self.errors = []
        self.mesh = PeerMesh(
            worker_id,
            on_message=lambda peer, ch, msg: self.received.append((peer, ch, msg)),
            on_peer_dead=self.dead.append,
            on_heartbeat=self.heartbeats.append,
            on_error=self.errors.append,
            config=config,
            **kwargs,
        )


async def _start_pair(a: Endpoint, b: Endpoint):
    ports = {0: ("127.0.0.1", await a.mesh.start()),
             1: ("127.0.0.1", await b.mesh.start())}
    await asyncio.gather(a.mesh.connect(ports), b.mesh.connect(ports))


async def _wait_for(predicate, timeout_s: float = 5.0):
    deadline = asyncio.get_event_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


def _grad(sender: int, iteration: int) -> GradientMessage:
    return GradientMessage(
        sender=sender,
        iteration=iteration,
        lbs=32,
        sparse={"w": (np.arange(4, dtype=np.int64),
                      np.full(4, float(iteration), dtype=np.float32))},
    )


class TestDelivery:
    def test_messages_arrive_on_their_channels(self):
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            try:
                await _start_pair(a, b)
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 3))
                assert a.mesh.send(
                    1, CHANNEL_CONTROL,
                    LossShareMessage(sender=0, iteration=3, avg_loss=1.5),
                )
                await _wait_for(lambda: len(b.received) == 2)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            by_channel = {ch: msg for _, ch, msg in b.received}
            assert isinstance(by_channel[CHANNEL_DATA], GradientMessage)
            assert isinstance(by_channel[CHANNEL_CONTROL], LossShareMessage)
            assert all(peer == 0 for peer, _, _ in b.received)
            assert not a.errors and not b.errors

        asyncio.run(run())

    def test_fifo_order_per_link(self):
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            try:
                await _start_pair(a, b)
                for i in range(20):
                    assert a.mesh.send(1, CHANNEL_DATA, _grad(0, i))
                await _wait_for(lambda: len(b.received) == 20)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert [msg.iteration for _, _, msg in b.received] == list(range(20))

        asyncio.run(run())

    def test_heartbeats_carry_progress(self):
        async def run():
            a = Endpoint(0, progress_fn=lambda: 1234, now_fn=lambda: 9.0)
            b = Endpoint(1)
            try:
                await _start_pair(a, b)
                await _wait_for(lambda: len(b.heartbeats) >= 2)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            hb = b.heartbeats[0]
            assert (hb.sender, hb.samples_drawn, hb.time) == (0, 1234, 9.0)

        asyncio.run(run())


class TestDeath:
    def test_graceful_bye_suppresses_dead_callback(self):
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            await _start_pair(a, b)
            await a.mesh.close(bye=True)

            # B keeps trying to talk to the departed peer until the
            # retry budget declares it dead — gracefully, thanks to Bye.
            async def until_dead():
                while not b.mesh.is_dead(0):
                    b.mesh.send(0, CHANNEL_CONTROL,
                                LossShareMessage(sender=1, iteration=0,
                                                 avg_loss=0.0))
                    await asyncio.sleep(0.02)

            await asyncio.wait_for(until_dead(), 10.0)
            await b.mesh.close()
            assert b.dead == []  # Bye means: not a failure
            assert 0 not in b.mesh.live_peers()

        asyncio.run(run())

    def test_crash_fires_dead_callback_after_retries(self):
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            await _start_pair(a, b)
            # Simulated crash: A vanishes without announcing Bye.
            await a.mesh.close(bye=False)

            async def until_dead():
                while not b.mesh.is_dead(0):
                    b.mesh.send(0, CHANNEL_DATA, _grad(1, 0))
                    await asyncio.sleep(0.02)

            await asyncio.wait_for(until_dead(), 10.0)
            await b.mesh.close()
            assert b.dead == [0]
            assert b.mesh.live_peers() == []

        asyncio.run(run())

    def test_send_to_dead_or_unknown_peer_returns_false(self):
        async def run():
            a = Endpoint(0)
            await a.mesh.start()
            # Never connected: unknown link.
            assert not a.mesh.send(7, CHANNEL_DATA, _grad(0, 0))
            await a.mesh.close()

        asyncio.run(run())


class TestBackpressure:
    def test_full_outbox_drops_and_counts(self):
        async def run():
            registry = MetricsRegistry()
            cfg = TransportConfig(
                connect_timeout_s=1.0,
                send_timeout_s=5.0,
                retry_base_s=0.01,
                retry_max_s=0.05,
                retry_attempts=3,
                heartbeat_interval_s=5.0,
                outbox_capacity=1,
            )
            # A link throttled to ~1 B/s: the first big frame exhausts
            # the burst and parks the sender, so the outbox backs up.
            big = GradientMessage(
                sender=0, iteration=0, lbs=32,
                dense={"w": np.ones(8192, dtype=np.float32)},
            )
            a = Endpoint(0, config=cfg, metrics=registry,
                         rate_fn=lambda dst: 1.0)
            b = Endpoint(1, config=cfg)
            await _start_pair(a, b)
            assert a.mesh.send(1, CHANNEL_DATA, big)
            await asyncio.sleep(0.1)  # sender picks up frame 1, throttles
            assert a.mesh.send(1, CHANNEL_DATA, big)  # queued (capacity 1)
            assert not a.mesh.send(1, CHANNEL_DATA, big)  # dropped
            dropped = registry.get("transport_dropped_total")
            assert dropped.value(0, 1, "data") == 1.0
            await asyncio.gather(
                a.mesh.close(bye=False, drain_timeout_s=0.1),
                b.mesh.close(bye=False, drain_timeout_s=0.1),
            )

        asyncio.run(run())


class TestRevive:
    def test_dead_peer_comes_back_at_a_new_address(self):
        """The supervisor's rejoin path: B crashes, A declares it dead,
        then ``revive`` points A at the respawned B's new port and
        traffic flows again."""
        async def run():
            registry = MetricsRegistry()
            a, b = Endpoint(0, metrics=registry), Endpoint(1)
            await _start_pair(a, b)
            await b.mesh.close(bye=False)

            async def until_dead():
                while not a.mesh.is_dead(1):
                    a.mesh.send(1, CHANNEL_DATA, _grad(0, 0))
                    await asyncio.sleep(0.02)

            await asyncio.wait_for(until_dead(), 10.0)
            assert a.mesh.live_peers() == []

            b2 = Endpoint(1)
            port = await b2.mesh.start()
            a.mesh.revive(1, ("127.0.0.1", port))
            assert not a.mesh.is_dead(1)
            assert a.mesh.live_peers() == [1]
            assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 42))
            await _wait_for(lambda: len(b2.received) == 1)
            await asyncio.gather(a.mesh.close(), b2.mesh.close())
            peer, ch, msg = b2.received[0]
            assert (peer, ch, msg.iteration) == (0, CHANNEL_DATA, 42)
            assert registry.get("transport_revive_total").value(0, 1) == 1
            assert a.dead == [1]  # the real death was still surfaced once

        asyncio.run(run())

    def test_revive_before_death_declared_supersedes_links(self):
        """A fast supervisor can revive a peer while the old links are
        still mid-retry; the stale retry loops must unwind without
        declaring the revived peer dead."""
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            await _start_pair(a, b)
            await b.mesh.close(bye=False)
            # A send lands on the broken link and starts the retry loop.
            a.mesh.send(1, CHANNEL_DATA, _grad(0, 0))
            await asyncio.sleep(0.03)

            b2 = Endpoint(1)
            port = await b2.mesh.start()
            a.mesh.revive(1, ("127.0.0.1", port))
            assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 7))
            await _wait_for(lambda: len(b2.received) == 1)
            # Give the superseded retry loop time to unwind, then make
            # sure it never flipped the revived peer back to dead.
            await asyncio.sleep(0.3)
            assert not a.mesh.is_dead(1)
            assert a.dead == []
            await asyncio.gather(a.mesh.close(), b2.mesh.close())

        asyncio.run(run())


class TestTransientDisconnect:
    def test_severed_tcp_link_redelivers_in_order(self):
        """Abort the data channel's TCP connection under the sender's
        feet while it is idle: the next burst must reconnect and arrive
        complete, exactly once, in FIFO order."""
        async def run():
            a, b = Endpoint(0), Endpoint(1)
            try:
                await _start_pair(a, b)
                # Warm the link so a writer exists, then sever it.
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 0))
                await _wait_for(lambda: len(b.received) == 1)
                link = a.mesh._out[(1, CHANNEL_DATA)]
                link.writer.transport.abort()
                for i in range(1, 16):
                    assert a.mesh.send(1, CHANNEL_DATA, _grad(0, i))
                await _wait_for(lambda: len(b.received) == 16)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert [m.iteration for _, _, m in b.received] == list(range(16))
            assert a.dead == [] and b.dead == []

        asyncio.run(run())


class TestTelemetry:
    """Per-link instrumentation recorded by the mesh into obs.metrics."""

    def test_frame_histograms_and_high_water(self):
        async def run():
            registry = MetricsRegistry()
            a, b = Endpoint(0, metrics=registry), Endpoint(1)
            try:
                await _start_pair(a, b)
                # A burst with no awaits in between: the sender task
                # cannot drain until we yield, so the outbox backs up
                # and the high-water mark must register it.
                for i in range(12):
                    assert a.mesh.send(1, CHANNEL_DATA, _grad(0, i))
                await _wait_for(lambda: len(b.received) == 12)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            lat = registry.get("transport_frame_latency_seconds")
            size = registry.get("transport_frame_bytes")
            assert lat.count(0, 1, "data") == 12
            assert size.count(0, 1, "data") == 12
            # wire accounting agrees between histogram and counter views
            sent = registry.get("transport_send_bytes_total")
            assert size.sum(0, 1, "data") == sent.value(0, 1, "data") > 0
            assert registry.get("transport_send_msgs_total").value(
                0, 1, "data"
            ) == 12
            high = registry.get("transport_outbox_high_water")
            assert high.value(0, 1, "data") >= 1

        asyncio.run(run())

    def test_reconnect_counted_separately_from_connects(self):
        """Severing an established link and sending again must bump
        ``transport_reconnect_total``, not just the connect counter."""
        async def run():
            registry = MetricsRegistry()
            a, b = Endpoint(0, metrics=registry), Endpoint(1)
            try:
                await _start_pair(a, b)
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 0))
                await _wait_for(lambda: len(b.received) == 1)
                reconnects = registry.get("transport_reconnect_total")
                assert reconnects.value(0, 1) == 0
                link = a.mesh._out[(1, CHANNEL_DATA)]
                link.writer.transport.abort()
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 1))
                await _wait_for(lambda: len(b.received) == 2)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert reconnects.value(0, 1) >= 1
            connects = registry.get("transport_connect_total")
            assert connects.value(0, 1) > reconnects.value(0, 1)

        asyncio.run(run())

    def test_shaper_stall_seconds_accumulate(self):
        """Frames bigger than the token-bucket burst park the sender;
        the slept wall time lands in ``transport_stall_seconds_total``."""
        async def run():
            registry = MetricsRegistry()
            # 100 kB/s -> 10 kB burst; two 16 kB frames must throttle.
            a = Endpoint(0, metrics=registry, rate_fn=lambda dst: 100_000.0)
            b = Endpoint(1)
            big = GradientMessage(
                sender=0, iteration=0, lbs=32,
                dense={"w": np.ones(4096, dtype=np.float32)},
            )
            try:
                await _start_pair(a, b)
                assert a.mesh.send(1, CHANNEL_DATA, big)
                assert a.mesh.send(1, CHANNEL_DATA, big)
                await _wait_for(lambda: len(b.received) == 2)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            stall = registry.get("transport_stall_seconds_total")
            assert stall.value(0, 1) > 0.0

        asyncio.run(run())

    def test_heartbeat_rtt_gauge(self):
        """A heartbeat round-trip over loopback lands a positive RTT
        sample on the sender's (worker, peer) gauge."""
        async def run():
            registry = MetricsRegistry()
            a = Endpoint(0, metrics=registry, progress_fn=lambda: 0)
            b = Endpoint(1)
            rtt = registry.gauge(
                "transport_heartbeat_rtt_seconds",
                labels=("worker", "peer"),
            )
            try:
                await _start_pair(a, b)
                await _wait_for(lambda: rtt.value(0, 1) > 0.0)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert rtt.value(0, 1) < 1.0  # loopback, not a timeout echo
            assert registry.get("transport_heartbeat_total").value(0) >= 1

        asyncio.run(run())


class TestConfigValidation:
    def test_bad_timeouts_rejected(self):
        with pytest.raises(ValueError):
            TransportConfig(send_timeout_s=0.0)
        with pytest.raises(ValueError):
            TransportConfig(retry_attempts=0)
        with pytest.raises(ValueError):
            TransportConfig(outbox_capacity=0)


class TestCoalescing:
    def test_backlogged_frames_batch_into_one_write(self):
        """Hold the FIFO head back with an injected delay; everything
        queued behind it must go out as one coalesced write."""
        async def run():
            registry = MetricsRegistry()
            delays = iter([0.15])
            a = Endpoint(
                0, metrics=registry,
                fault_fn=lambda dst, ch: next(delays, 0.0),
            )
            b = Endpoint(1)
            try:
                await _start_pair(a, b)
                for i in range(10):
                    assert a.mesh.send(1, CHANNEL_DATA, _grad(0, i))
                await _wait_for(lambda: len(b.received) == 10)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert [m.iteration for _, _, m in b.received] == list(range(10))
            coalesced = registry.get("transport_coalesced_frames_total")
            assert coalesced.value(0, 1, "data") == 10.0
            # Telemetry parity holds under batching: every frame still
            # observed individually, bytes counted exactly once.
            sent = registry.get("transport_send_msgs_total").value(0, 1, "data")
            lat = registry.get("transport_frame_latency_seconds")
            assert lat.count(0, 1, "data") == sent == 10
            size = registry.get("transport_frame_bytes")
            assert size.sum(0, 1, "data") == registry.get(
                "transport_send_bytes_total"
            ).value(0, 1, "data")

        asyncio.run(run())

    def test_throttle_charged_once_per_batch(self):
        """A shaped link pays for a coalesced batch in one throttle()
        call: the stall counter reflects the batch's true sleep."""
        async def run():
            registry = MetricsRegistry()
            # 100 kB/s, burst 10 kB: a ~40 kB burst must stall ~0.3 s.
            a = Endpoint(0, metrics=registry, rate_fn=lambda dst: 100_000.0)
            b = Endpoint(1)
            try:
                await _start_pair(a, b)
                big = WeightMessage(
                    sender=0, iteration=0,
                    weights={"w": np.ones(2048, dtype=np.float32)},
                )
                for _ in range(5):
                    assert a.mesh.send(1, CHANNEL_DATA, big)
                await _wait_for(lambda: len(b.received) == 5, timeout_s=10.0)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            stall = registry.get("transport_stall_seconds_total").value(0, 1)
            assert stall > 0.1

        asyncio.run(run())


class TestCloseDrain:
    def test_close_flushes_queued_frames_without_polling(self):
        """Queued frames on a shaped link are delivered during close's
        drain phase, and close returns as soon as the flush lands."""
        async def run():
            # 200 kB/s, burst 20 kB: 10 x 4 kB queues ~0.1 s of work.
            a = Endpoint(0, rate_fn=lambda dst: 200_000.0)
            b = Endpoint(1)
            await _start_pair(a, b)
            msg = WeightMessage(
                sender=0, iteration=0,
                weights={"w": np.ones(1024, dtype=np.float32)},
            )
            for _ in range(10):
                assert a.mesh.send(1, CHANNEL_DATA, msg)
            t0 = asyncio.get_event_loop().time()
            await a.mesh.close(drain_timeout_s=5.0)
            elapsed = asyncio.get_event_loop().time() - t0
            await _wait_for(lambda: len(b.received) == 10)
            await b.mesh.close()
            assert elapsed < 2.0  # flushed and returned, not timed out
            assert not a.dead and not b.dead

        asyncio.run(run())


class TestShmLane:
    def test_data_channel_rides_the_ring(self):
        """Symmetric shm membership: data frames cross the ring in both
        directions, control stays on TCP, and closing unlinks segments."""
        async def run():
            from repro.transport.shm import ring_name, sweep_ring

            token = f"mesh{id(asyncio.get_event_loop()) & 0xFFFF:x}"
            registry = MetricsRegistry()
            a = Endpoint(0, metrics=registry, shm_out={1}, shm_in={1},
                         shm_token=token)
            b = Endpoint(1, shm_out={0}, shm_in={0}, shm_token=token)
            try:
                await _start_pair(a, b)
                link = a.mesh._out[(1, CHANNEL_DATA)]
                assert link.ring is not None  # shm lane selected
                assert link.writer is None  # no TCP dial for data
                lane = registry.get("transport_lane")
                assert lane.value(0, 1, "shm") == 1.0
                assert lane.value(0, 1, "tcp") == 0.0
                for i in range(25):
                    assert a.mesh.send(1, CHANNEL_DATA, _grad(0, i))
                    assert b.mesh.send(0, CHANNEL_DATA, _grad(1, i))
                await _wait_for(
                    lambda: len(b.received) == 25 and len(a.received) == 25
                )
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert [m.iteration for _, _, m in b.received] == list(range(25))
            assert [m.iteration for _, _, m in a.received] == list(range(25))
            assert all(ch == CHANNEL_DATA for _, ch, _ in b.received)
            # Close unlinked every segment of this run's token.
            for src, dst in ((0, 1), (1, 0)):
                assert not sweep_ring(ring_name(token, src, dst))

        asyncio.run(run())

    def test_shaper_still_paces_the_ring(self):
        """The modelled bandwidth applies on the shm lane too."""
        async def run():
            from repro.transport.shm import ring_name, sweep_ring

            token = f"pace{id(asyncio.get_event_loop()) & 0xFFFF:x}"
            registry = MetricsRegistry()
            a = Endpoint(0, metrics=registry, rate_fn=lambda dst: 100_000.0,
                         shm_out={1}, shm_in={1}, shm_token=token)
            b = Endpoint(1, shm_out={0}, shm_in={0}, shm_token=token)
            try:
                await _start_pair(a, b)
                big = WeightMessage(
                    sender=0, iteration=0,
                    weights={"w": np.ones(2048, dtype=np.float32)},
                )
                for _ in range(5):
                    assert a.mesh.send(1, CHANNEL_DATA, big)
                await _wait_for(lambda: len(b.received) == 5, timeout_s=10.0)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            assert registry.get("transport_stall_seconds_total").value(0, 1) > 0.1
            for src, dst in ((0, 1), (1, 0)):
                assert not sweep_ring(ring_name(token, src, dst))

        asyncio.run(run())

    def test_oversized_frame_demotes_link_to_tcp(self):
        """A frame bigger than the ring falls back to TCP mid-run,
        losing nothing and flipping the lane gauge."""
        async def run():
            from repro.transport.shm import ring_name, sweep_ring

            token = f"demo{id(asyncio.get_event_loop()) & 0xFFFF:x}"
            cfg = TransportConfig(
                connect_timeout_s=1.0, send_timeout_s=1.0,
                retry_base_s=0.01, retry_max_s=0.05, retry_attempts=3,
                heartbeat_interval_s=0.05, shm_ring_bytes=4096,
            )
            registry = MetricsRegistry()
            a = Endpoint(0, config=cfg, metrics=registry,
                         shm_out={1}, shm_in={1}, shm_token=token)
            b = Endpoint(1, config=cfg, shm_out={0}, shm_in={0},
                         shm_token=token)
            try:
                await _start_pair(a, b)
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 0))  # fits
                oversized = WeightMessage(
                    sender=0, iteration=1,
                    weights={"w": np.ones(4096, dtype=np.float32)},  # ~16 KB
                )
                assert a.mesh.send(1, CHANNEL_DATA, oversized)
                assert a.mesh.send(1, CHANNEL_DATA, _grad(0, 2))
                await _wait_for(lambda: len(b.received) == 3)
            finally:
                await asyncio.gather(a.mesh.close(), b.mesh.close())
            iters = [m.iteration for _, _, m in b.received]
            assert iters == [0, 1, 2]
            assert a.mesh._out[(1, CHANNEL_DATA)].ring is None  # demoted
            lane = registry.get("transport_lane")
            assert lane.value(0, 1, "tcp") == 1.0
            assert lane.value(0, 1, "shm") == 0.0
            for src, dst in ((0, 1), (1, 0)):
                sweep_ring(ring_name(token, src, dst))

        asyncio.run(run())


class TestConfigValidation:
    def test_new_fields_validated(self):
        with pytest.raises(ValueError):
            TransportConfig(coalesce_max_bytes=0)
        with pytest.raises(ValueError):
            TransportConfig(shm_min_mbps=-1.0)
        with pytest.raises(ValueError):
            TransportConfig(shm_ring_bytes=100)
