"""Telemetry-plane acceptance tests for the live backend.

One real 3-worker run SIGKILLs a worker (no restart) with a fast
delta-shipping cadence and a ``--status-dir`` attached: the victim's
metrics, trace spans, and flight-recorder events must survive the kill
through the delta stream (crash-safe, at most one shipping interval
behind), and the supervisor's ``live_status.json`` must be readable and
coherent. A second short run checks the ``--stats-interval`` one-line
cluster-health prints. Snapshot/render logic itself is covered without
any live runs (and without wall-clock sleeps) in
``tests/obs/test_live_status.py``.
"""

import pytest

from repro.cluster.chaos import ChaosPlan, CrashEvent
from repro.core.engine import TrainingEngine
from repro.core.live_engine import LiveEngine
from repro.experiments.environments import get_environment
from repro.experiments.runner import build_config, build_topology, workload_for
from repro.obs.live_status import read_snapshot, render_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.transport.mesh import TransportConfig

N_WORKERS = 3
HORIZON = 30.0
SPEEDUP = 5.0
VICTIM = 2
SHIP_INTERVAL_S = 0.25

FAST_TRANSPORT = TransportConfig(
    connect_timeout_s=2.0,
    send_timeout_s=1.0,
    retry_base_s=0.02,
    retry_max_s=0.1,
    retry_attempts=3,
    heartbeat_interval_s=0.05,
)

PLAN = ChaosPlan(crashes=(CrashEvent(time=4.0, worker=VICTIM),))


@pytest.fixture(scope="module")
def setup():
    env = get_environment("Homo A")
    workload = workload_for(env)
    topo = build_topology(env, workload, n_workers=N_WORKERS)
    return build_config("dlion", workload), topo


@pytest.fixture(scope="module")
def kill_run(setup, tmp_path_factory):
    """Kill the victim for good mid-run, with fast delta shipping and a
    status dir attached."""
    config, topo = setup
    status_dir = tmp_path_factory.mktemp("live-status")
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = LiveEngine(
        config,
        topo,
        seed=0,
        speedup=SPEEDUP,
        transport=FAST_TRANSPORT,
        tracer=tracer,
        metrics=metrics,
        ship_interval_s=SHIP_INTERVAL_S,
        status_dir=str(status_dir),
    )
    result = engine.run(HORIZON, chaos=PLAN)
    return engine, result, tracer, metrics, status_dir


class TestCrashSafeRetention:
    def test_deltas_flowed(self, kill_run):
        engine, _, _, _, _ = kill_run
        # ~6 s of wall at a 0.25 s cadence from three workers.
        assert engine.deltas_received > 10

    def test_victim_metrics_survive_the_kill(self, kill_run):
        """The acceptance criterion: a SIGKILLed worker's metrics are
        retained up to at most one shipping interval behind the kill."""
        engine, result, _, metrics, _ = kill_run
        iters = metrics.get("iterations_total")
        assert iters.value(VICTIM) > 0
        # and stay consistent with the merged result view
        assert result.iterations[VICTIM] == iters.value(VICTIM)
        # the victim died early, so it must trail the survivors
        assert result.iterations[VICTIM] < min(
            result.iterations[w] for w in range(N_WORKERS) if w != VICTIM
        )

    def test_victim_trace_spans_survive(self, kill_run):
        _, _, tracer, _, _ = kill_run
        victim_spans = [
            e for e in tracer.events()
            if e.get("pid") == VICTIM
            and e.get("ph") == "X"
            and e.get("name") == "compute"
        ]
        assert victim_spans  # shipped by deltas; no final payload existed

    def test_victim_flight_events_survive(self, kill_run):
        engine, _, _, _, _ = kill_run
        flight = engine.flight_events.get(VICTIM)
        assert flight
        assert any(e.get("name") == "iteration" for e in flight)
        assert all(e.get("cat") == "flight" for e in flight)

    def test_survivors_recorded_the_death(self, kill_run):
        engine, _, _, _, _ = kill_run
        for w in range(N_WORKERS):
            if w == VICTIM:
                continue
            names = {e.get("name") for e in engine.flight_events.get(w, ())}
            assert "peer-dead" in names
            assert "finalize" in names

    def test_flight_events_land_in_the_trace(self, kill_run):
        _, _, tracer, _, _ = kill_run
        flight_evs = [
            e for e in tracer.events() if e.get("cat") == "flight"
        ]
        assert {e["pid"] for e in flight_evs} == set(range(N_WORKERS))


class TestStatusSnapshot:
    def test_snapshot_readable_and_coherent(self, kill_run):
        _, _, _, _, status_dir = kill_run
        snap = read_snapshot(status_dir)
        assert snap is not None
        assert snap["version"] == 1
        assert set(snap["workers"]) == {"0", "1", "2"}
        cluster = snap["cluster"]
        assert cluster["deltas_received"] > 0
        assert cluster["send_msgs_total"] > 0
        assert cluster["send_bytes_total"] > 0
        assert cluster["frame_latency_p99_s"] is not None
        assert "queue_depth_max" in cluster
        assert "queue_dropped_total" in cluster

    def test_final_snapshot_saw_the_dead_victim(self, kill_run):
        _, _, _, _, status_dir = kill_run
        snap = read_snapshot(status_dir)
        # the victim dies ~1 s into a ~6 s run; the last written
        # snapshot must reflect the loss
        assert snap["workers"][str(VICTIM)]["alive"] is False
        assert snap["workers"]["0"]["iteration"] > snap["workers"][
            str(VICTIM)
        ]["iteration"]

    def test_snapshot_renders(self, kill_run):
        _, _, _, _, status_dir = kill_run
        text = render_snapshot(read_snapshot(status_dir))
        assert "[live t=" in text
        assert "worker" in text


class TestStatsInterval:
    def test_periodic_health_lines(self, setup, capsys):
        """--stats-interval prints parseable one-line summaries."""
        config, topo = setup
        engine = LiveEngine(
            config,
            topo,
            seed=0,
            speedup=SPEEDUP,
            transport=FAST_TRANSPORT,
            ship_interval_s=0.25,
            stats_interval_s=0.4,
        )
        engine.run(10.0)
        lines = [
            ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("[live t=")
        ]
        assert len(lines) >= 2  # ~2 s of wall at a 0.4 s cadence
        for ln in lines:
            assert "it/s" in ln and "p99" in ln and "|" in ln
        # early ticks see the whole cluster up (later ones may catch
        # workers that already delivered their result and exited)
        assert any(
            ln.endswith(f"up {N_WORKERS}/{N_WORKERS}") for ln in lines
        )


class TestQueueFamilyParity:
    def test_queue_families_match_across_backends(self, setup, kill_run):
        """queue_depth / queue_dropped_total carry the same kind and
        label schema whichever backend recorded them."""
        config, topo = setup
        _, _, _, live_metrics, _ = kill_run
        sim_metrics = MetricsRegistry()
        TrainingEngine(config, topo, seed=0, metrics=sim_metrics).run(5.0)
        for name in ("queue_depth", "queue_dropped_total"):
            sim_fam = sim_metrics.get(name)
            live_fam = live_metrics.get(name)
            assert sim_fam is not None and live_fam is not None
            assert sim_fam.kind == live_fam.kind
            assert tuple(sim_fam.label_names) == tuple(live_fam.label_names)
            assert tuple(live_fam.label_names) == ("worker", "kind")
