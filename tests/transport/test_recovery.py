"""Crash-recovery acceptance tests for the live backend.

One real 4-worker multi-process run SIGKILLs worker 3 mid-run via a
chaos plan; the supervisor must respawn it, the child must restore its
newest checkpoint and rejoin the mesh (revive fanout + DKT bootstrap
pull), and the recovery metrics/trace spans must land. A sim run of the
same plan checks cross-backend parity of the recovery accounting.
"""

import pytest

from repro.cluster.chaos import ChaosPlan, CrashEvent
from repro.core.engine import TrainingEngine
from repro.core.live_engine import LiveEngine
from repro.experiments.environments import get_environment
from repro.experiments.runner import build_config, build_topology, workload_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.transport.mesh import TransportConfig

N_WORKERS = 4
HORIZON = 40.0
SPEEDUP = 5.0
VICTIM = 3
CRASH_AT = 8.0
RESTART_AFTER = 6.0

FAST_TRANSPORT = TransportConfig(
    connect_timeout_s=2.0,
    send_timeout_s=1.0,
    retry_base_s=0.02,
    retry_max_s=0.1,
    retry_attempts=3,
    heartbeat_interval_s=0.05,
)

PLAN = ChaosPlan(
    crashes=(CrashEvent(time=CRASH_AT, worker=VICTIM, restart_after=RESTART_AFTER),)
)


@pytest.fixture(scope="module")
def setup():
    """(config, topology) for a 4-worker slice of Homo A."""
    env = get_environment("Homo A")
    workload = workload_for(env)
    topo = build_topology(env, workload, n_workers=N_WORKERS)
    return build_config("dlion", workload), topo


@pytest.fixture(scope="module")
def recovery_run(setup):
    """The acceptance scenario: kill worker 3 at t=8, respawn at t=14."""
    config, topo = setup
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = LiveEngine(
        config,
        topo,
        seed=0,
        speedup=SPEEDUP,
        transport=FAST_TRANSPORT,
        tracer=tracer,
        metrics=metrics,
    )
    result = engine.run(HORIZON, chaos=PLAN)
    return result, tracer, metrics


class TestRecoveryRun:
    def test_victim_resumes_and_everyone_trains(self, recovery_run):
        result, _, _ = recovery_run
        assert len(result.iterations) == N_WORKERS
        assert all(n > 10 for n in result.iterations)
        # The victim lost wall time to the crash window, so it must
        # trail the survivors — proof the respawn resumed rather than
        # some survivor's result being double-counted.
        assert result.iterations[VICTIM] < max(result.iterations)

    def test_membership_dips_then_recovers(self, recovery_run):
        result, _, _ = recovery_run
        values = result.active_workers.values
        assert values[0] == N_WORKERS
        assert N_WORKERS - 1 in values
        assert values[-1] == N_WORKERS

    def test_restart_and_recovery_metrics(self, recovery_run):
        _, _, metrics = recovery_run
        restarts = metrics.get("worker_restarts_total")
        assert restarts.value(VICTIM) == 1
        for w in range(N_WORKERS):
            if w != VICTIM:
                assert restarts.value(w) == 0
        hist = metrics.get("recovery_time_seconds")
        assert hist.count(VICTIM) == 1
        assert hist.sum(VICTIM) > 0.0
        # Only the victim can lose work to the checkpoint lag.
        lost = metrics.get("lost_iterations_total")
        assert {key for key, _ in lost.items()} <= {(VICTIM,)}

    def test_survivors_revived_the_rejoiner(self, recovery_run):
        _, _, metrics = recovery_run
        revives = metrics.get("transport_revive_total")
        for w in range(N_WORKERS):
            if w != VICTIM:
                assert revives.value(w, VICTIM) >= 1

    def test_kill_and_recovery_trace_spans(self, recovery_run):
        _, tracer, _ = recovery_run
        events = tracer.events()
        assert any(e.get("name") == "worker-killed" for e in events)
        recoveries = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "recovery"
        ]
        assert len(recoveries) == 1
        assert recoveries[0]["args"]["worker"] == VICTIM


class TestRespawnTraceMonotonicity:
    """Respawn clock re-anchoring: the victim's merged timeline must be
    monotonic and non-overlapping across the crash, on both backends.

    The pre-crash spans only exist in the merged trace because the
    victim's telemetry deltas shipped them before the SIGKILL — so the
    live variant also exercises the crash-safe delta stream."""

    # A regression in clock_offset re-anchoring overlaps the incarnations
    # by whole modelled seconds; half a second of slack absorbs rounding
    # and pipe latency without masking the failure.
    _EPS_US = 0.5e6

    def _assert_monotonic(self, spans):
        assert spans
        spans = sorted(spans, key=lambda e: e["ts"])
        for cur, nxt in zip(spans, spans[1:]):
            assert nxt["ts"] + self._EPS_US >= cur["ts"] + cur.get("dur", 0.0)
        return spans

    def test_live_victim_timeline(self, recovery_run):
        _, tracer, _ = recovery_run
        events = tracer.events()
        kills = [e for e in events if e.get("name") == "worker-killed"]
        assert kills
        t_kill = kills[0]["ts"]
        spans = self._assert_monotonic([
            e for e in events
            if e.get("pid") == VICTIM
            and e.get("ph") == "X"
            and e.get("name") == "compute"
        ])
        pre = [e for e in spans if e["ts"] < t_kill]
        post = [e for e in spans if e["ts"] >= t_kill]
        assert pre, "pre-crash spans must survive via telemetry deltas"
        assert post, "the respawned incarnation must keep training"
        assert min(e["ts"] for e in post) + self._EPS_US >= max(
            e["ts"] + e.get("dur", 0.0) for e in pre
        )

    def test_sim_victim_timeline(self, setup):
        config, topo = setup
        tracer = Tracer()
        TrainingEngine(config, topo, seed=0, chaos=PLAN, tracer=tracer).run(
            HORIZON
        )
        events = tracer.events()
        spans = self._assert_monotonic([
            e for e in events
            if e.get("pid") == VICTIM
            and e.get("ph") == "X"
            and e.get("name") == "compute"
        ])
        # The sim victim leaves at CRASH_AT and rejoins RESTART_AFTER
        # later; spans must exist on both sides of the gap.
        assert any(e["ts"] < CRASH_AT * 1e6 for e in spans)
        assert any(e["ts"] > (CRASH_AT + RESTART_AFTER) * 1e6 for e in spans)


class TestSimProcParity:
    def test_sim_records_the_same_recovery_shape(self, setup):
        """The same plan on the simulator: one restart for the victim,
        a 4 -> 3 -> 4 active-worker series, and a recovery-time sample
        equal to the modelled downtime."""
        config, topo = setup
        metrics = MetricsRegistry()
        result = TrainingEngine(
            config, topo, seed=0, chaos=PLAN, metrics=metrics
        ).run(HORIZON)
        assert result.active_workers.values == [4.0, 3.0, 4.0]
        assert metrics.get("worker_restarts_total").value(VICTIM) == 1
        hist = metrics.get("recovery_time_seconds")
        assert hist.count(VICTIM) == 1
        assert hist.sum(VICTIM) == pytest.approx(RESTART_AFTER)
