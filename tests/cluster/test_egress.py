"""Tests for the shared-egress (NIC contention) link model."""

import pytest

from repro.cluster.network import BandwidthMatrix, EgressQueue
from repro.cluster.topology import ClusterTopology


class TestEgressQueue:
    def test_serialization(self):
        q = EgressQueue(0, 80.0)  # 80 Mbps = 10 MB/s
        d1 = q.enqueue(1_000_000, 0.0)
        d2 = q.enqueue(1_000_000, 0.0)
        assert d1 == pytest.approx(0.1)
        assert d2 == pytest.approx(0.2)

    def test_idle_gap(self):
        q = EgressQueue(0, 80.0)
        q.enqueue(1_000_000, 0.0)
        assert q.enqueue(1_000_000, 5.0) == pytest.approx(5.1)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            EgressQueue(0, 10.0).enqueue(-1, 0.0)


class TestSharedEgressMatrix:
    def test_parallel_transfers_contend_at_the_nic(self):
        """Per-link model: two transfers to different peers overlap.
        Shared-egress: they serialize through the sender's NIC."""
        per_link = BandwidthMatrix.from_worker_capacity([80.0] * 3)
        shared = BandwidthMatrix.from_worker_capacity(
            [80.0] * 3, shared_egress=True
        )
        nbytes = 1_000_000  # 0.1 s at 80 Mbps

        a1 = per_link.enqueue_transfer(0, 1, nbytes, 0.0)
        a2 = per_link.enqueue_transfer(0, 2, nbytes, 0.0)
        assert a1 == pytest.approx(a2)  # parallel links

        b1 = shared.enqueue_transfer(0, 1, nbytes, 0.0)
        b2 = shared.enqueue_transfer(0, 2, nbytes, 0.0)
        assert b2 > b1  # NIC serializes
        assert b2 >= a2 + 0.09  # roughly one extra serialization slot

    def test_egress_requires_per_worker_capacity(self):
        with pytest.raises(ValueError):
            BandwidthMatrix([[1, 2], [3, 4]], egress=[10.0])

    def test_default_matrix_has_no_egress(self):
        m = BandwidthMatrix.from_worker_capacity([10.0] * 2)
        assert m.egress is None

    def test_enqueue_transfer_without_egress_matches_link(self):
        m = BandwidthMatrix.from_worker_capacity([80.0] * 2)
        t_via_matrix = m.enqueue_transfer(0, 1, 1_000_000, 0.0)
        m2 = BandwidthMatrix.from_worker_capacity([80.0] * 2)
        t_via_link = m2.link(0, 1).enqueue_transfer(1_000_000, 0.0)
        assert t_via_matrix == pytest.approx(t_via_link)


class TestEngineWithSharedEgress:
    def test_shared_egress_slows_whole_gradient_systems(self):
        """Baseline sends its full gradient to every peer each
        iteration; under NIC contention that costs ~(n-1)x the per-link
        model's time, so it completes fewer iterations."""
        from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
        from repro.core.engine import TrainingEngine

        cfg = TrainConfig(
            model="mlp",
            model_kwargs={"in_dim": 576, "hidden": (32,)},
            train_size=240, test_size=60, eval_subset=60, initial_lbs=8,
            system="baseline",
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            maxn=MaxNConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
            eval_period_iters=25,
        )

        def run(shared):
            topo = ClusterTopology.build(
                cores=[8, 8, 8, 8], bandwidth=[3.0] * 4,
                per_core_rate=16.0, overhead=0.02, jitter=0.0,
                shared_egress=shared,
            )
            return TrainingEngine(cfg, topo, seed=0).run(40.0)

        per_link = run(False)
        shared = run(True)
        assert sum(shared.iterations) < sum(per_link.iterations)
