"""Tests for partial peer topologies (gossip overlays)."""

import networkx as nx
import pytest

from repro.cluster.peergraph import PeerGraph


class TestConstruction:
    def test_full_mesh_degrees(self):
        pg = PeerGraph.full_mesh(6)
        assert all(pg.degree(w) == 5 for w in range(6))
        assert pg.edges == 15

    def test_ring(self):
        pg = PeerGraph.ring(6)
        assert all(pg.degree(w) == 2 for w in range(6))
        assert pg.neighbors(0) == {1, 5}

    def test_k_regular(self):
        pg = PeerGraph.k_regular(6, 3, seed=1)
        assert all(pg.degree(w) == 3 for w in range(6))
        assert nx.is_connected(pg.graph)

    def test_star(self):
        pg = PeerGraph.star(5, hub=2)
        assert pg.degree(2) == 4
        assert all(pg.degree(w) == 1 for w in range(5) if w != 2)

    def test_diameter(self):
        assert PeerGraph.full_mesh(6).diameter() == 1
        assert PeerGraph.ring(6).diameter() == 3

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError, match="connected"):
            PeerGraph(g, 4)

    def test_wrong_node_labels_rejected(self):
        g = nx.complete_graph(4)
        g = nx.relabel_nodes(g, {0: 9})
        with pytest.raises(ValueError, match="nodes"):
            PeerGraph(g, 4)

    def test_self_loop_rejected(self):
        g = nx.complete_graph(3)
        g.add_edge(1, 1)
        with pytest.raises(ValueError, match="loops"):
            PeerGraph(g, 3)

    def test_k_regular_validation(self):
        with pytest.raises(ValueError):
            PeerGraph.k_regular(6, 1)
        with pytest.raises(ValueError):
            PeerGraph.k_regular(5, 3)  # odd k*n


class TestEngineWithOverlay:
    @pytest.fixture
    def cfg(self, fast_config):
        return fast_config

    def _topo(self):
        from repro.cluster.topology import ClusterTopology

        return ClusterTopology.build(
            cores=[8, 8, 8, 8], bandwidth=[20.0] * 4,
            per_core_rate=16.0, overhead=0.02, jitter=0.0,
        )

    def test_messages_flow_only_along_edges(self, cfg):
        from repro.core.engine import TrainingEngine

        pg = PeerGraph.ring(4)
        engine = TrainingEngine(cfg, self._topo(), seed=0, peer_graph=pg)
        res = engine.run(15.0)
        for (src, dst), nbytes in res.link_bytes.items():
            assert dst in pg.neighbors(src), f"traffic on non-edge {src}->{dst}"
        # and every edge carries something
        for u, v in pg.graph.edges:
            assert res.link_bytes.get((u, v), 0) > 0

    def test_ring_still_learns(self, cfg):
        from repro.core.engine import TrainingEngine

        pg = PeerGraph.ring(4)
        res = TrainingEngine(cfg, self._topo(), seed=0, peer_graph=pg).run(30.0)
        assert res.final_mean_accuracy() > 0.4

    def test_sync_state_spans_neighbors_only(self, cfg):
        from repro.core.engine import TrainingEngine

        pg = PeerGraph.ring(4)
        engine = TrainingEngine(cfg, self._topo(), seed=0, peer_graph=pg)
        assert set(engine.workers[0].sync_state.received_from) == {1, 3}

    def test_size_mismatch_rejected(self, cfg):
        from repro.core.engine import TrainingEngine

        with pytest.raises(ValueError, match="different cluster"):
            TrainingEngine(cfg, self._topo(), seed=0, peer_graph=PeerGraph.ring(6))

    def test_full_mesh_overlay_equals_no_overlay(self, cfg):
        """The all-to-all overlay must be bit-identical to the default."""
        from repro.core.engine import TrainingEngine

        a = TrainingEngine(cfg, self._topo(), seed=3).run(12.0)
        b = TrainingEngine(
            cfg, self._topo(), seed=3, peer_graph=PeerGraph.full_mesh(4)
        ).run(12.0)
        assert a.iterations == b.iterations
        assert a.loss[0].values == b.loss[0].values


class TestHierarchical:
    def test_lan_cliques_and_ring_gateways(self):
        pg = PeerGraph.hierarchical(12, 4)
        # Intra-group cliques: every non-gateway worker sees its group.
        assert pg.neighbors(1) == {0, 2, 3}
        assert pg.neighbors(5) == {4, 6, 7}
        # Gateways (0, 4, 8) add the WAN ring on top of their LAN.
        assert pg.neighbors(0) == {1, 2, 3, 4, 8}
        assert pg.neighbors(4) == {5, 6, 7, 0, 8}

    def test_last_group_absorbs_remainder(self):
        pg = PeerGraph.hierarchical(10, 4)  # groups: [0..3], [4..9]
        assert pg.neighbors(9) == {4, 5, 6, 7, 8}
        assert pg.neighbors(0) == {1, 2, 3, 4}

    def test_full_wan(self):
        pg = PeerGraph.hierarchical(12, 3, wan="full")
        gateways = {0, 3, 6, 9}
        for g in gateways:
            assert gateways - {g} <= pg.neighbors(g)

    def test_degree_bounded_at_scale(self):
        pg = PeerGraph.hierarchical(1000, 8)
        # group_size-1 LAN peers + at most 2 WAN ring peers.
        assert max(pg.degree(w) for w in range(1000)) <= 9 + 2
        assert pg.diameter() < 1000  # connected, and nowhere near a chain

    def test_validation(self):
        with pytest.raises(ValueError, match="group_size"):
            PeerGraph.hierarchical(8, 1)
        with pytest.raises(ValueError, match="group_size"):
            PeerGraph.hierarchical(4, 8)
        with pytest.raises(ValueError, match="wan"):
            PeerGraph.hierarchical(8, 4, wan="mesh")


class TestFromSpec:
    def test_named_overlays(self):
        assert PeerGraph.from_spec("full", 5).edges == 10
        assert PeerGraph.from_spec("ring", 6).degree(0) == 2
        assert PeerGraph.from_spec("star", 6).degree(0) == 5
        assert PeerGraph.from_spec("kregular:4", 9).degree(3) == 4

    def test_hier_specs(self):
        pg = PeerGraph.from_spec("hier:4", 12)
        assert pg.neighbors(1) == {0, 2, 3}
        full = PeerGraph.from_spec("hier:3:full", 12)
        assert {3, 6, 9} <= full.neighbors(0)

    def test_bad_specs_rejected(self):
        for spec in ("mesh", "kregular", "kregular:x", "hier", "hier:2:tree",
                     "ring:3", "kregular:1:2:3"):
            with pytest.raises(ValueError):
                PeerGraph.from_spec(spec, 8)

    def test_arg_errors_name_the_spec(self):
        with pytest.raises(ValueError, match="kregular:7"):
            PeerGraph.from_spec("kregular:7", 4)
