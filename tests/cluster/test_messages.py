"""Tests for message types and wire-size accounting."""

import numpy as np
import pytest

from repro.cluster.messages import (
    CONTROL_MESSAGE_BYTES,
    VARIABLE_HEADER_BYTES,
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
    dense_payload_bytes,
    sparse_payload_bytes,
)


class TestPayloadBytes:
    def test_sparse_bytes(self):
        payload = {"w": (np.arange(10, dtype=np.int64), np.ones(10, np.float32))}
        assert sparse_payload_bytes(payload) == VARIABLE_HEADER_BYTES + 80

    def test_sparse_multiple_variables(self):
        payload = {
            "a": (np.arange(3), np.ones(3)),
            "b": (np.arange(5), np.ones(5)),
        }
        assert sparse_payload_bytes(payload) == 2 * VARIABLE_HEADER_BYTES + 8 * 8

    def test_sparse_misaligned_rejected(self):
        with pytest.raises(ValueError):
            sparse_payload_bytes({"w": (np.arange(3), np.ones(4))})

    def test_dense_bytes(self):
        payload = {"w": np.zeros((4, 5), np.float32)}
        assert dense_payload_bytes(payload) == VARIABLE_HEADER_BYTES + 80

    def test_dense_cheaper_per_entry_than_sparse(self):
        g = np.zeros(100, np.float32)
        dense = dense_payload_bytes({"w": g})
        sparse = sparse_payload_bytes({"w": (np.arange(100), g)})
        assert dense < sparse  # indices double the per-entry cost


class TestGradientMessage:
    def test_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            GradientMessage(sender=0, iteration=1, lbs=8)
        with pytest.raises(ValueError):
            GradientMessage(
                sender=0, iteration=1, lbs=8,
                sparse={}, dense={"w": np.zeros(3)},
            )

    def test_sparse_message_counts(self):
        msg = GradientMessage(
            sender=1, iteration=2, lbs=16,
            sparse={"w": (np.arange(7), np.ones(7, np.float32))},
        )
        assert msg.num_entries() == 7
        assert msg.wire_bytes() == VARIABLE_HEADER_BYTES + 56

    def test_dense_message_counts(self):
        msg = GradientMessage(
            sender=1, iteration=2, lbs=16, dense={"w": np.zeros((2, 3), np.float32)}
        )
        assert msg.num_entries() == 6
        assert msg.wire_bytes() == VARIABLE_HEADER_BYTES + 24

    def test_empty_sparse_is_a_progress_beacon(self):
        msg = GradientMessage(sender=0, iteration=5, lbs=8, sparse={})
        assert msg.wire_bytes() == 0
        assert msg.num_entries() == 0

    def test_lbs_must_be_positive(self):
        with pytest.raises(ValueError):
            GradientMessage(sender=0, iteration=0, lbs=0, sparse={})


class TestOtherMessages:
    def test_weight_message_bytes(self):
        msg = WeightMessage(sender=0, iteration=1,
                            weights={"w": np.zeros(10, np.float32)})
        assert msg.wire_bytes() == VARIABLE_HEADER_BYTES + 40

    def test_control_messages_fixed_size(self):
        assert LossShareMessage(0, 1, 0.5).wire_bytes() == CONTROL_MESSAGE_BYTES
        assert DktRequestMessage(0, 1).wire_bytes() == CONTROL_MESSAGE_BYTES
        assert RcpShareMessage(0, 12.5).wire_bytes() == CONTROL_MESSAGE_BYTES
        assert ControlMessage(0, "go").wire_bytes() == CONTROL_MESSAGE_BYTES
