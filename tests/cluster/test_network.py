"""Tests for links, FIFO serialization, and the bandwidth matrix."""

import numpy as np
import pytest

from repro.cluster.network import (
    AWS_REGION_BANDWIDTH,
    AWS_REGIONS,
    BandwidthMatrix,
    Link,
)
from repro.cluster.traces import PiecewiseTrace


class TestLink:
    def test_transfer_duration(self):
        link = Link(0, 1, 50.0, latency=0.0)
        # 1 MB at 50 Mbps = 8e6 bits / 5e7 bps = 0.16 s
        assert link.transfer_duration(1_000_000, 0.0) == pytest.approx(0.16)

    def test_fifo_serialization(self):
        link = Link(0, 1, 80.0, latency=0.0)
        d1 = link.enqueue_transfer(1_000_000, 0.0)   # 0.1 s
        d2 = link.enqueue_transfer(1_000_000, 0.0)   # queued behind
        assert d1 == pytest.approx(0.1)
        assert d2 == pytest.approx(0.2)

    def test_idle_gap_resets_queue(self):
        link = Link(0, 1, 80.0, latency=0.0)
        link.enqueue_transfer(1_000_000, 0.0)
        d = link.enqueue_transfer(1_000_000, 10.0)  # queue long drained
        assert d == pytest.approx(10.1)

    def test_latency_added_after_serialization(self):
        link = Link(0, 1, 80.0, latency=0.05)
        assert link.enqueue_transfer(1_000_000, 0.0) == pytest.approx(0.15)

    def test_queue_delay(self):
        link = Link(0, 1, 80.0, latency=0.0)
        link.enqueue_transfer(2_000_000, 0.0)  # busy until 0.2
        assert link.queue_delay(0.1) == pytest.approx(0.1)
        assert link.queue_delay(0.5) == 0.0

    def test_bandwidth_trace_respected(self):
        link = Link(0, 1, PiecewiseTrace([(0, 10), (100, 100)]), latency=0.0)
        slow = link.transfer_duration(1_000_000, 0.0)
        fast = link.transfer_duration(1_000_000, 150.0)
        assert slow == pytest.approx(10 * fast)

    def test_stats(self):
        link = Link(0, 1, 80.0)
        link.enqueue_transfer(100, 0.0)
        link.enqueue_transfer(200, 0.0)
        assert link.bytes_sent == 300
        assert link.transfers == 2

    def test_no_self_link(self):
        with pytest.raises(ValueError):
            Link(2, 2, 10.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, 10.0).transfer_duration(-1, 0.0)


class TestBandwidthMatrix:
    def test_from_worker_capacity_uses_min(self):
        m = BandwidthMatrix.from_worker_capacity([50, 20, 35])
        assert m.link(0, 1).bandwidth_at(0) == 20
        assert m.link(1, 0).bandwidth_at(0) == 20
        assert m.link(0, 2).bandwidth_at(0) == 35

    def test_full_mesh_no_self_links(self):
        m = BandwidthMatrix.from_worker_capacity([10] * 4)
        assert len(m.links) == 12
        assert (1, 1) not in m.links

    def test_out_links(self):
        m = BandwidthMatrix.from_worker_capacity([10] * 3)
        outs = m.out_links(1)
        assert sorted(l.dst for l in outs) == [0, 2]

    def test_from_regions_lan_and_wan(self):
        m = BandwidthMatrix.from_regions([0, 0, 3], lan_mbps=1000.0)
        assert m.link(0, 1).bandwidth_at(0) == 1000.0  # same region
        # Virginia -> Mumbai from Table 2 = 53 Mbps
        assert m.link(0, 2).bandwidth_at(0) == 53.0
        # Mumbai -> Virginia = 53 as well (table is roughly symmetric here)
        assert m.link(2, 0).bandwidth_at(0) == AWS_REGION_BANDWIDTH[3][0]

    def test_table2_shape_and_values(self):
        assert AWS_REGION_BANDWIDTH.shape == (6, 6)
        assert len(AWS_REGIONS) == 6
        # spot-check the paper's numbers
        assert AWS_REGION_BANDWIDTH[0][1] == 190   # Virginia -> Oregon
        assert AWS_REGION_BANDWIDTH[2][4] == 30    # Ireland -> Seoul
        assert AWS_REGION_BANDWIDTH[5][2] == 36    # Sydney -> Ireland
        assert (np.diag(AWS_REGION_BANDWIDTH) == 0).all()

    def test_total_bytes(self):
        m = BandwidthMatrix.from_worker_capacity([10] * 2)
        m.link(0, 1).enqueue_transfer(500, 0.0)
        assert m.total_bytes() == 500

    def test_square_spec_required(self):
        with pytest.raises(ValueError):
            BandwidthMatrix([[1, 2], [3]])


class TestVectorMode:
    """The allocation-free array backend behind all-scalar matrices."""

    def _scalar_matrix(self):
        return BandwidthMatrix.from_worker_capacity(
            [50.0, 35.0, 20.0, 10.0], latency=0.01
        )

    def test_scalar_spec_is_vectorized(self):
        assert self._scalar_matrix().vectorized

    def test_trace_spec_is_not_vectorized(self):
        tr = PiecewiseTrace([(0.0, 10.0), (5.0, 20.0)])
        m = BandwidthMatrix([[1.0, tr], [tr, 1.0]])
        assert not m.vectorized

    def test_egress_disables_vector_mode(self):
        m = BandwidthMatrix.from_worker_capacity(
            [50.0, 35.0], shared_egress=True
        )
        assert not m.vectorized

    def test_links_mapping_view(self):
        m = self._scalar_matrix()
        assert len(m.links) == 12
        assert (0, 1) in m.links and (1, 1) not in m.links
        view = m.links[(0, 2)]
        assert view.bandwidth_at(0.0) == 20.0
        assert view.latency == 0.01
        with pytest.raises(KeyError):
            m.links[(2, 2)]

    def test_batch_matches_sequential_bit_exact(self):
        """enqueue_transfers == the scalar loop, to the last ulp."""
        a, b = self._scalar_matrix(), self._scalar_matrix()
        # Load some links so busy_until differs per destination.
        for m in (a, b):
            m.enqueue_transfer(0, 1, 2_000_000, 0.0)
            m.enqueue_transfer(0, 3, 500_000, 0.0)
        dsts = [1, 2, 3]
        seq = [a.enqueue_transfer(0, d, 750_000, 1.0) for d in dsts]
        vec = b.enqueue_transfers(0, dsts, [750_000] * 3, 1.0)
        assert list(vec) == seq
        # Stats written back identically.
        for d in dsts:
            la, lb = a.links[(0, d)], b.links[(0, d)]
            assert la.busy_until == lb.busy_until
            assert la.bytes_sent == lb.bytes_sent
            assert la.transfers == lb.transfers
        assert a.total_bytes() == b.total_bytes()

    def test_batch_requires_vector_mode(self):
        tr = PiecewiseTrace([(0.0, 10.0)])
        m = BandwidthMatrix([[1.0, tr], [tr, 1.0]])
        with pytest.raises(RuntimeError):
            m.enqueue_transfers(0, [1], [100], 0.0)

    def test_batch_validation(self):
        m = self._scalar_matrix()
        with pytest.raises(KeyError):
            m.enqueue_transfers(0, [0, 1], [10, 10], 0.0)
        with pytest.raises(ValueError):
            m.enqueue_transfers(0, [1], [-5], 0.0)

    def test_scalar_path_returns_python_float(self):
        end = self._scalar_matrix().enqueue_transfer(0, 1, 1000, 0.0)
        assert type(end) is float

    def test_fifo_serialization_in_vector_mode(self):
        m = self._scalar_matrix()
        first = m.enqueue_transfer(0, 1, 35_000_000 // 8, 0.0)
        second = m.enqueue_transfer(0, 1, 35_000_000 // 8, 0.0)
        assert first == pytest.approx(1.0 + 0.01)
        assert second == pytest.approx(2.0 + 0.01)

    def test_vector_total_bytes(self):
        m = self._scalar_matrix()
        m.enqueue_transfer(0, 1, 1000, 0.0)
        m.enqueue_transfer(2, 3, 234, 0.0)
        assert m.total_bytes() == 1234
