"""Tests for resource traces."""

import pytest

from repro.cluster.traces import ConstantTrace, PiecewiseTrace, square_wave


class TestConstantTrace:
    def test_value_everywhere(self):
        t = ConstantTrace(24.0)
        assert t.value_at(0) == 24.0
        assert t.value_at(1e9) == 24.0
        assert t.next_change_after(0) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantTrace(0.0)


class TestPiecewiseTrace:
    def test_segment_lookup(self):
        t = PiecewiseTrace([(0, 24), (100, 12), (300, 4)])
        assert t.value_at(0) == 24
        assert t.value_at(99.999) == 24
        assert t.value_at(100) == 12
        assert t.value_at(250) == 12
        assert t.value_at(10_000) == 4

    def test_next_change_after(self):
        t = PiecewiseTrace([(0, 1), (10, 2), (20, 3)])
        assert t.next_change_after(0) == 10
        assert t.next_change_after(10) == 20
        assert t.next_change_after(20) is None

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([(1, 5)])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([(0, 1), (5, 2), (5, 3)])

    def test_positive_levels_only(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([(0, 1), (5, 0)])

    def test_negative_time_rejected(self):
        t = PiecewiseTrace([(0, 1)])
        with pytest.raises(ValueError):
            t.value_at(-0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([])


class TestSquareWave:
    def test_alternation(self):
        t = square_wave(30, 100, period=100, horizon=500)
        assert t.value_at(0) == 30
        assert t.value_at(100) == 100
        assert t.value_at(250) == 30
        assert t.value_at(350) == 100

    def test_start_high(self):
        t = square_wave(30, 100, period=50, start_high=True, horizon=200)
        assert t.value_at(0) == 100
        assert t.value_at(50) == 30

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            square_wave(1, 2, period=0)
