"""Tests for the compute model."""

import numpy as np
import pytest

from repro.cluster.compute import ComputeProfile
from repro.cluster.traces import PiecewiseTrace


class TestComputeProfile:
    def test_iter_time_affine_in_batch(self):
        p = ComputeProfile(24, per_core_rate=8, overhead=0.05, jitter=0.0)
        t32 = p.iter_time(32, 0.0)
        t64 = p.iter_time(64, 0.0)
        assert t32 == pytest.approx(0.05 + 32 / 192)
        assert t64 - t32 == pytest.approx(32 / 192)

    def test_more_cores_is_faster(self):
        fast = ComputeProfile(24, jitter=0.0)
        slow = ComputeProfile(6, jitter=0.0)
        assert fast.iter_time(32, 0.0) < slow.iter_time(32, 0.0)

    def test_trace_changes_rate_over_time(self):
        p = ComputeProfile(PiecewiseTrace([(0, 24), (100, 6)]), jitter=0.0)
        assert p.iter_time(48, 0.0) < p.iter_time(48, 100.0)
        assert p.rate_at(0.0) == 4 * p.rate_at(100.0)

    def test_jitter_is_multiplicative_and_seeded(self):
        p = ComputeProfile(24, jitter=0.1)
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        assert p.iter_time(32, 0.0, rng1) == p.iter_time(32, 0.0, rng2)

    def test_jitter_without_rng_is_deterministic(self):
        p = ComputeProfile(24, jitter=0.5)
        assert p.iter_time(32, 0.0) == p.iter_time(32, 0.0)

    def test_jitter_mean_reasonable(self):
        p = ComputeProfile(24, jitter=0.05)
        rng = np.random.default_rng(0)
        base = ComputeProfile(24, jitter=0.0).iter_time(32, 0.0)
        times = [p.iter_time(32, 0.0, rng) for _ in range(500)]
        assert np.mean(times) == pytest.approx(base, rel=0.02)

    def test_max_batch_in_inverts_iter_time(self):
        p = ComputeProfile(24, per_core_rate=8, overhead=0.05, jitter=0.0)
        b = p.max_batch_in(1.0, 0.0)
        assert p.iter_time(int(b), 0.0) == pytest.approx(1.0, rel=0.01)

    def test_max_batch_zero_when_overhead_dominates(self):
        p = ComputeProfile(24, overhead=2.0, jitter=0.0)
        assert p.max_batch_in(1.0, 0.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ComputeProfile(24, per_core_rate=0)
        with pytest.raises(ValueError):
            ComputeProfile(24, overhead=-1)
        with pytest.raises(ValueError):
            ComputeProfile(24, jitter=-0.1)
        with pytest.raises(ValueError):
            ComputeProfile(24).iter_time(0, 0.0)
