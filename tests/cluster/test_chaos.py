"""Chaos-plan tests: schema validation, lowering, injection, determinism.

The unit half exercises :mod:`repro.cluster.chaos` directly; the
integration half drives the simulator with plans and checks that
crash/restart lowers onto the membership machinery, that link faults
drop/delay messages, and that a fixed seed reproduces a chaotic run
byte-for-byte.
"""

import json

import numpy as np
import pytest

from repro.cluster.chaos import ChaosPlan, CrashEvent, LinkFault, LinkFaultInjector
from repro.cluster.membership import MembershipSchedule
from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
from repro.core.engine import TrainingEngine
from repro.obs.metrics import MetricsRegistry


def topo():
    return ClusterTopology.build(
        cores=[8, 8, 4, 2], bandwidth=[20.0, 20.0, 10.0, 5.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )


def config(**kw):
    base = dict(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=320,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        gbs=GbsConfig(update_period_s=8.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=15),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
        system="dlion",
    )
    base.update(kw)
    return TrainConfig(**base)


class TestSchema:
    def test_crash_event_validation(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            CrashEvent(time=-1.0, worker=0)
        with pytest.raises(ValueError, match="worker id"):
            CrashEvent(time=1.0, worker=-2)
        with pytest.raises(ValueError, match="restart_after"):
            CrashEvent(time=1.0, worker=0, restart_after=0.0)

    def test_link_fault_validation(self):
        with pytest.raises(ValueError, match="kind"):
            LinkFault(kind="melt", start=0.0, duration=1.0, src=0, dst=1)
        with pytest.raises(ValueError, match="duration"):
            LinkFault(kind="blackout", start=0.0, duration=0.0, src=0, dst=1)
        with pytest.raises(ValueError, match="src == dst"):
            LinkFault(kind="blackout", start=0.0, duration=1.0, src=1, dst=1)
        with pytest.raises(ValueError, match="probability"):
            LinkFault(kind="drop", start=0.0, duration=1.0, src=0, dst=1,
                      probability=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            LinkFault(kind="delay", start=0.0, duration=1.0, src=0, dst=1)

    def test_crash_narrative_no_crash_while_down(self):
        with pytest.raises(ValueError, match="no restart"):
            ChaosPlan(crashes=(
                CrashEvent(time=5.0, worker=1),
                CrashEvent(time=9.0, worker=1),
            ))
        with pytest.raises(ValueError, match="before its"):
            ChaosPlan(crashes=(
                CrashEvent(time=5.0, worker=1, restart_after=10.0),
                CrashEvent(time=9.0, worker=1),
            ))

    def test_validate_names_the_offending_worker(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=1.0, worker=7),))
        with pytest.raises(ValueError, match=r"worker 7 .* only 4 workers .*0\.\.3"):
            plan.validate(4)

    def test_validate_names_the_offending_link(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=0.0, duration=1.0, src=0, dst=9),
        ))
        with pytest.raises(ValueError, match=r"link 0->9 .* only 4 workers"):
            plan.validate(4)

    def test_from_dict_rejects_unknown_keys_and_bad_entries(self):
        with pytest.raises(ValueError, match="unknown chaos plan keys"):
            ChaosPlan.from_dict({"crashs": []})
        with pytest.raises(ValueError, match="bad crash entry #0"):
            ChaosPlan.from_dict({"crashes": [{"when": 3.0, "worker": 0}]})
        with pytest.raises(ValueError, match="bad link_fault entry #1"):
            ChaosPlan.from_dict({"link_faults": [
                {"kind": "blackout", "start": 0.0, "duration": 1.0,
                 "src": 0, "dst": 1},
                {"kind": "blackout", "start": 0.0},
            ]})

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "crashes": [{"time": 8.0, "worker": 3, "restart_after": 6.0}],
            "link_faults": [{"kind": "delay", "start": 1.0, "duration": 2.0,
                             "src": 0, "dst": 1, "delay_s": 0.5}],
        }))
        plan = ChaosPlan.from_file(str(path))
        assert plan.crashes == (CrashEvent(time=8.0, worker=3, restart_after=6.0),)
        assert plan.link_faults[0].delay_s == 0.5

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            ChaosPlan.from_file(str(path))


class TestLowering:
    def test_membership_events(self):
        plan = ChaosPlan(crashes=(
            CrashEvent(time=5.0, worker=1, restart_after=3.0),
            CrashEvent(time=7.0, worker=2),
        ))
        assert plan.membership_events() == [
            (5.0, 1, "leave"), (8.0, 1, "join"), (7.0, 2, "leave"),
        ]
        assert plan.has_restarts()
        assert not ChaosPlan(crashes=(CrashEvent(time=7.0, worker=2),)).has_restarts()

    def test_events_feed_a_membership_schedule(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=5.0, worker=1, restart_after=3.0),))
        sched = MembershipSchedule(plan.membership_events(), n_workers=4)
        assert sched.active_at(6.0) == {0, 2, 3}
        assert sched.active_at(8.0) == {0, 1, 2, 3}


class TestInjector:
    def _rng(self):
        return np.random.default_rng(0)

    def test_blackout_window_drops_only_inside(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=2.0, duration=3.0, src=0, dst=1),
        ))
        inj = LinkFaultInjector(plan, self._rng())
        assert inj.on_send(0, 1, 1.9) == 0.0
        assert inj.on_send(0, 1, 2.0) is None
        assert inj.on_send(0, 1, 4.999) is None
        assert inj.on_send(0, 1, 5.0) == 0.0
        assert inj.on_send(1, 0, 3.0) == 0.0  # directed: reverse unaffected
        assert inj.blackout_active(0, 1, 3.0)
        assert not inj.blackout_active(1, 0, 3.0)

    def test_bidirectional_covers_both_directions(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=0.0, duration=1.0, src=0, dst=1,
                      bidirectional=True),
        ))
        inj = LinkFaultInjector(plan, self._rng())
        assert inj.on_send(0, 1, 0.5) is None
        assert inj.on_send(1, 0, 0.5) is None
        assert inj.on_send(0, 2, 0.5) == 0.0

    def test_drop_probability_extremes(self):
        always = ChaosPlan(link_faults=(
            LinkFault(kind="drop", start=0.0, duration=1.0, src=0, dst=1,
                      probability=1.0),
        ))
        never = ChaosPlan(link_faults=(
            LinkFault(kind="drop", start=0.0, duration=1.0, src=0, dst=1,
                      probability=0.0),
        ))
        assert LinkFaultInjector(always, self._rng()).on_send(0, 1, 0.5) is None
        assert LinkFaultInjector(never, self._rng()).on_send(0, 1, 0.5) == 0.0

    def test_delay_windows_accumulate(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="delay", start=0.0, duration=2.0, src=0, dst=1,
                      delay_s=0.5),
            LinkFault(kind="delay", start=1.0, duration=2.0, src=0, dst=1,
                      delay_s=0.25),
        ))
        inj = LinkFaultInjector(plan, self._rng())
        assert inj.on_send(0, 1, 0.5) == 0.5
        assert inj.on_send(0, 1, 1.5) == 0.75
        assert inj.on_send(0, 1, 2.5) == 0.25

    def test_rng_untouched_outside_drop_windows(self):
        """The injector must consume randomness only for drop coin flips,
        so attaching a blackout/delay-only plan perturbs nothing."""
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=0.0, duration=1.0, src=0, dst=1),
            LinkFault(kind="delay", start=2.0, duration=1.0, src=0, dst=1,
                      delay_s=0.1),
        ))
        rng = self._rng()
        before = rng.bit_generator.state
        inj = LinkFaultInjector(plan, rng)
        inj.on_send(0, 1, 0.5)
        inj.on_send(0, 1, 2.5)
        inj.on_send(0, 1, 9.0)
        assert rng.bit_generator.state == before


class TestSimIntegration:
    def test_crash_restart_lowers_to_leave_join(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=10.0, worker=3, restart_after=15.0),))
        metrics = MetricsRegistry()
        engine = TrainingEngine(
            config(), topo(), seed=0, chaos=plan, metrics=metrics
        )
        res = engine.run(60.0)
        assert res.active_workers.values == [4.0, 3.0, 4.0]
        assert engine.workers[3].active
        # The rejoin ran the DKT bootstrap pull.
        assert engine.workers[3].dkt.merges_applied >= 1
        # Recovery accounting: one restart, recovery == modelled downtime.
        assert metrics.get("worker_restarts_total").value(3) == 1
        hist = metrics.get("recovery_time_seconds")
        assert hist.count(3) == 1
        assert hist.sum(3) == pytest.approx(15.0)
        assert metrics.get("lost_iterations_total").value(3) == 0

    def test_chaos_merges_with_churn_schedule(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=30.0, worker=3, restart_after=5.0),))
        sched = MembershipSchedule([(10.0, 1, "leave"), (20.0, 1, "join")],
                                   n_workers=4)
        engine = TrainingEngine(
            config(), topo(), seed=0, chaos=plan, membership=sched
        )
        res = engine.run(50.0)
        assert res.active_workers.values == [4.0, 3.0, 4.0, 3.0, 4.0]

    def test_conflicting_narratives_rejected(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=15.0, worker=1),))
        sched = MembershipSchedule([(10.0, 1, "leave")], n_workers=4)
        with pytest.raises(ValueError, match="conflicts with the membership"):
            TrainingEngine(config(), topo(), seed=0, chaos=plan, membership=sched)

    def test_oversized_plan_rejected(self):
        plan = ChaosPlan(crashes=(CrashEvent(time=1.0, worker=9),))
        with pytest.raises(ValueError, match="only 4 workers"):
            TrainingEngine(config(), topo(), seed=0, chaos=plan)

    def test_blackout_drops_messages_and_flips_gauge(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=5.0, duration=20.0, src=0, dst=1,
                      bidirectional=True),
        ))
        metrics = MetricsRegistry()
        engine = TrainingEngine(config(), topo(), seed=0, chaos=plan,
                                metrics=metrics)
        engine.advance_to(15.0)
        dropped = metrics.get("chaos_dropped_total")
        assert dropped.value(0, 1) > 0
        assert dropped.value(1, 0) > 0
        assert metrics.get("partition_active").value() == 1
        engine.run(30.0)
        assert metrics.get("partition_active").value() == 0

    def test_training_survives_a_partition(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="blackout", start=5.0, duration=10.0, src=0, dst=1,
                      bidirectional=True),
        ))
        res = TrainingEngine(config(), topo(), seed=0, chaos=plan).run(40.0)
        assert all(n > 20 for n in res.iterations)
        assert res.final_mean_accuracy() > 0.3

    def test_delay_fault_slows_but_delivers(self):
        plan = ChaosPlan(link_faults=(
            LinkFault(kind="delay", start=0.0, duration=40.0, src=0, dst=1,
                      delay_s=1.0),
        ))
        metrics = MetricsRegistry()
        res = TrainingEngine(config(), topo(), seed=0, chaos=plan,
                             metrics=metrics).run(40.0)
        # Nothing dropped; the cluster still trains.
        assert metrics.get("chaos_dropped_total").value(0, 1) == 0
        assert all(n > 10 for n in res.iterations)

    def test_chaotic_run_is_seed_deterministic(self):
        """The acceptance criterion: the same plan + seed reproduces the
        run byte-for-byte (loss series, iteration counts, drop counts)."""
        plan = ChaosPlan(
            crashes=(CrashEvent(time=10.0, worker=3, restart_after=8.0),),
            link_faults=(
                LinkFault(kind="drop", start=5.0, duration=15.0, src=0, dst=1,
                          probability=0.5),
                LinkFault(kind="delay", start=0.0, duration=30.0, src=1, dst=2,
                          delay_s=0.2),
            ),
        )

        def run():
            metrics = MetricsRegistry()
            res = TrainingEngine(config(), topo(), seed=7, chaos=plan,
                                 metrics=metrics).run(35.0)
            return (
                res.iterations,
                [tuple(s.values) for s in res.loss],
                [tuple(s.times) for s in res.loss],
                sorted(metrics.get("chaos_dropped_total").items()),
            )

        assert run() == run()
