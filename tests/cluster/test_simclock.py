"""Tests for the discrete-event clock."""

import pytest

from repro.cluster.simclock import SimClock


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clk = SimClock()
        order = []
        clk.schedule(3.0, order.append, "c")
        clk.schedule(1.0, order.append, "a")
        clk.schedule(2.0, order.append, "b")
        clk.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        clk = SimClock()
        order = []
        for tag in "abcde":
            clk.schedule(1.0, order.append, tag)
        clk.run_until(1.0)
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        clk = SimClock()
        seen = []
        clk.schedule(2.5, lambda: seen.append(clk.now))
        clk.run_until(5.0)
        assert seen == [2.5]
        assert clk.now == 5.0  # clock lands on the horizon

    def test_schedule_in_relative(self):
        clk = SimClock()
        fired = []
        clk.schedule(1.0, lambda: clk.schedule_in(0.5, lambda: fired.append(clk.now)))
        clk.run_until(2.0)
        assert fired == [1.5]

    def test_past_scheduling_rejected(self):
        clk = SimClock()
        clk.schedule(1.0, lambda: None)
        clk.run_until(1.0)
        with pytest.raises(ValueError):
            clk.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clk = SimClock()
        fired = []
        ev = clk.schedule(1.0, fired.append, "x")
        ev.cancel()
        clk.run_until(2.0)
        assert fired == []

    def test_peek_skips_cancelled(self):
        clk = SimClock()
        ev = clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        ev.cancel()
        assert clk.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        clk = SimClock()
        ev = clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        ev.cancel()
        assert clk.pending() == 1


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        clk = SimClock()
        fired = []
        clk.schedule(1.0, fired.append, 1)
        clk.schedule(5.0, fired.append, 5)
        n = clk.run_until(2.0)
        assert n == 1 and fired == [1]
        clk.run_until(10.0)
        assert fired == [1, 5]

    def test_events_may_schedule_events(self):
        clk = SimClock()
        count = []

        def chain(depth):
            count.append(depth)
            if depth < 5:
                clk.schedule_in(1.0, chain, depth + 1)

        clk.schedule(0.0, chain, 0)
        clk.run_until(100.0)
        assert count == [0, 1, 2, 3, 4, 5]

    def test_max_events_bounds_processing(self):
        clk = SimClock()
        for i in range(10):
            clk.schedule(float(i), lambda: None)
        n = clk.run_until(100.0, max_events=4)
        assert n == 4
        assert clk.pending() == 6

    def test_run_drains_everything(self):
        clk = SimClock()
        for i in range(7):
            clk.schedule(float(i), lambda: None)
        assert clk.run() == 7
        assert clk.pending() == 0

    def test_events_processed_counter(self):
        clk = SimClock()
        clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        clk.run_until(5.0)
        assert clk.events_processed == 2
