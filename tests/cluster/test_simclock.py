"""Tests for the discrete-event clock."""

import pytest

from repro.cluster.simclock import SimClock


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clk = SimClock()
        order = []
        clk.schedule(3.0, order.append, "c")
        clk.schedule(1.0, order.append, "a")
        clk.schedule(2.0, order.append, "b")
        clk.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        clk = SimClock()
        order = []
        for tag in "abcde":
            clk.schedule(1.0, order.append, tag)
        clk.run_until(1.0)
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        clk = SimClock()
        seen = []
        clk.schedule(2.5, lambda: seen.append(clk.now))
        clk.run_until(5.0)
        assert seen == [2.5]
        assert clk.now == 5.0  # clock lands on the horizon

    def test_schedule_in_relative(self):
        clk = SimClock()
        fired = []
        clk.schedule(1.0, lambda: clk.schedule_in(0.5, lambda: fired.append(clk.now)))
        clk.run_until(2.0)
        assert fired == [1.5]

    def test_past_scheduling_rejected(self):
        clk = SimClock()
        clk.schedule(1.0, lambda: None)
        clk.run_until(1.0)
        with pytest.raises(ValueError):
            clk.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clk = SimClock()
        fired = []
        ev = clk.schedule(1.0, fired.append, "x")
        ev.cancel()
        clk.run_until(2.0)
        assert fired == []

    def test_peek_skips_cancelled(self):
        clk = SimClock()
        ev = clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        ev.cancel()
        assert clk.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        clk = SimClock()
        ev = clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        ev.cancel()
        assert clk.pending() == 1


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        clk = SimClock()
        fired = []
        clk.schedule(1.0, fired.append, 1)
        clk.schedule(5.0, fired.append, 5)
        n = clk.run_until(2.0)
        assert n == 1 and fired == [1]
        clk.run_until(10.0)
        assert fired == [1, 5]

    def test_events_may_schedule_events(self):
        clk = SimClock()
        count = []

        def chain(depth):
            count.append(depth)
            if depth < 5:
                clk.schedule_in(1.0, chain, depth + 1)

        clk.schedule(0.0, chain, 0)
        clk.run_until(100.0)
        assert count == [0, 1, 2, 3, 4, 5]

    def test_max_events_bounds_processing(self):
        clk = SimClock()
        for i in range(10):
            clk.schedule(float(i), lambda: None)
        n = clk.run_until(100.0, max_events=4)
        assert n == 4
        assert clk.pending() == 6

    def test_run_drains_everything(self):
        clk = SimClock()
        for i in range(7):
            clk.schedule(float(i), lambda: None)
        assert clk.run() == 7
        assert clk.pending() == 0

    def test_events_processed_counter(self):
        clk = SimClock()
        clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        clk.run_until(5.0)
        assert clk.events_processed == 2


class TestPendingCounter:
    """The O(1) live-event counter must stay exact through every path."""

    @pytest.fixture(params=["calendar", "heap"])
    def clk(self, request):
        from repro.cluster.simclock import make_clock

        return make_clock(request.param)

    def test_cancel_then_pending(self, clk):
        evs = [clk.schedule(float(i), lambda: None) for i in range(5)]
        assert clk.pending() == 5
        evs[2].cancel()
        evs[4].cancel()
        assert clk.pending() == 3
        # Double-cancel must not decrement twice.
        evs[2].cancel()
        assert clk.pending() == 3
        clk.run()
        assert clk.pending() == 0

    def test_cancelled_head_drain(self, clk):
        """A cancelled head neither fires nor leaks from the counter."""
        head = clk.schedule(1.0, lambda: None)
        fired = []
        clk.schedule(2.0, fired.append, "live")
        head.cancel()
        assert clk.pending() == 1
        assert clk.peek_time() == 2.0  # drains the cancelled head
        assert clk.pending() == 1
        assert clk.run_until(3.0) == 1
        assert fired == ["live"] and clk.pending() == 0

    def test_cancel_fired_event_is_counter_neutral(self, clk):
        ev = clk.schedule(1.0, lambda: None)
        clk.schedule(2.0, lambda: None)
        clk.run_until(1.5)
        assert clk.pending() == 1
        ev.cancel()  # already fired: flag flips, counter untouched
        assert clk.pending() == 1

    def test_cancel_mid_batch(self, clk):
        """Cancelling a same-timestamp sibling from inside a callback."""
        fired = []
        evs = []

        def killer():
            fired.append("killer")
            evs[1].cancel()

        clk.schedule(1.0, killer)
        evs.append(None)
        evs.append(clk.schedule(1.0, fired.append, "victim"))
        clk.schedule(1.0, fired.append, "bystander")
        clk.run_until(1.0)
        assert fired == ["killer", "bystander"]
        assert clk.pending() == 0

    def test_occupancy_reports_peaks(self, clk):
        for i in range(8):
            clk.schedule(float(i), lambda: None)
        occ = clk.occupancy()
        assert occ["pending"] == 8
        assert occ["peak_pending"] >= 8
        clk.run()
        assert clk.occupancy()["pending"] == 0
        assert clk.occupancy()["peak_pending"] >= 8

    def test_iter_pending_firing_order(self, clk):
        clk.schedule(3.0, lambda: None)
        a = clk.schedule(1.0, lambda: None)
        clk.schedule(1.0, lambda: None)
        clk.schedule(200.0, lambda: None)  # overflow territory (calendar)
        order = [(ev.time, ev.seq) for ev in clk.iter_pending()]
        assert order == sorted(order)
        assert [t for t, _ in order] == [1.0, 1.0, 3.0, 200.0]
        a.cancel()
        assert sum(1 for ev in clk.iter_pending() if not ev.cancelled) == 3


class TestMakeClock:
    def test_kinds(self):
        from repro.cluster.simclock import HeapSimClock, make_clock

        assert isinstance(make_clock("calendar"), SimClock)
        assert isinstance(make_clock("heap"), HeapSimClock)
        with pytest.raises(ValueError):
            make_clock("fibheap")

    def test_env_var_default(self, monkeypatch):
        from repro.cluster import simclock

        monkeypatch.setenv("REPRO_SIMCLOCK", "heap")
        assert isinstance(simclock.make_clock(), simclock.HeapSimClock)
        monkeypatch.delenv("REPRO_SIMCLOCK")
        assert isinstance(simclock.make_clock(), simclock.SimClock)
