"""Tests for queues, the network monitor, and topology construction."""

import numpy as np
import pytest

from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.network import BandwidthMatrix
from repro.cluster.queues import MessageQueues
from repro.cluster.topology import ClusterTopology
from repro.cluster.traces import PiecewiseTrace


class TestMessageQueues:
    def test_fifo_order(self):
        q = MessageQueues(owner=0)
        q.push_data("a")
        q.push_data("b")
        assert q.pop_data() == "a"
        assert q.pop_data() == "b"
        assert q.pop_data() is None

    def test_control_and_data_separate(self):
        q = MessageQueues(owner=0)
        q.push_control("ctl")
        q.push_data("dat")
        assert q.pop_control() == "ctl"
        assert q.pop_data() == "dat"

    def test_drain(self):
        q = MessageQueues(owner=0)
        for x in range(5):
            q.push_data(x)
        assert q.drain_data() == [0, 1, 2, 3, 4]
        assert len(q) == 0

    def test_delivery_counters(self):
        q = MessageQueues(owner=0)
        q.push_control("a")
        q.push_data("b")
        q.push_data("c")
        assert q.delivered_control == 1
        assert q.delivered_data == 2

    def test_unbounded_by_default(self):
        q = MessageQueues(owner=0)
        assert all(q.push_data(i) for i in range(10_000))
        assert q.dropped_data == 0

    def test_bounded_capacity_drops_newest(self):
        q = MessageQueues(owner=0, capacity=2)
        assert q.push_data("a")
        assert q.push_data("b")
        assert not q.push_data("c")  # full: rejected, not queued
        assert q.dropped_data == 1
        assert q.drain_data() == ["a", "b"]
        # Draining frees capacity again.
        assert q.push_data("d")

    def test_bounds_apply_per_queue(self):
        q = MessageQueues(owner=0, capacity=1)
        assert q.push_control("ctl")
        assert q.push_data("dat")  # control fullness must not leak over
        assert not q.push_control("ctl2")
        assert q.dropped_control == 1
        assert q.dropped_data == 0

    def test_depth_properties(self):
        q = MessageQueues(owner=0)
        q.push_control("a")
        q.push_data("b")
        q.push_data("c")
        assert (q.control_depth, q.data_depth) == (1, 2)
        q.pop_data()
        assert q.data_depth == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MessageQueues(owner=0, capacity=0)


class TestBoundedQueuesInEngine:
    @staticmethod
    def _build_engine(metrics):
        from repro.core.engine import TrainingEngine
        from repro.experiments.environments import get_environment
        from repro.experiments.runner import (
            build_config,
            build_topology,
            workload_for,
        )

        env = get_environment("Homo A")
        workload = workload_for(env)
        return TrainingEngine(
            build_config("dlion", workload, queue_capacity=1),
            build_topology(env, workload, n_workers=3),
            seed=0,
            metrics=metrics,
        )

    def test_capacity_one_run_completes_without_drops(self):
        """Even a pathologically tight bound is safe in the simulator.

        Sim handlers push, apply, and pop within a single synchronous
        call, so queue depth never exceeds one and capacity=1 never
        overflows — the run must complete normally with zero drops.
        """
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        result = self._build_engine(metrics).run(10.0)
        assert min(result.iterations) > 0
        dropped = metrics.get("queue_dropped_total")
        assert sum(v for _, v in dropped.items()) == 0

    def test_overflow_drops_and_ignores_message(self):
        """When the bounded queue *is* full, the handler must count the
        drop and discard the update without applying it."""
        from repro.cluster.messages import GradientMessage
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        engine = self._build_engine(metrics)
        w = engine.workers[0]
        assert w.queues.push_data("stuck")  # fills the capacity-1 queue
        msg = GradientMessage(
            sender=1, iteration=1, lbs=32,
            dense={"w": np.zeros(4, dtype=np.float32)},
        )
        w.on_gradient_message(msg)
        assert metrics.get("queue_dropped_total").value(0, "data") == 1.0
        assert w.stats_grad_msgs_received == 0  # never applied
        assert w.queues.pop_data() == "stuck"  # original entry untouched


class TestNetworkResourceMonitor:
    def test_reads_link_bandwidth(self):
        m = BandwidthMatrix.from_worker_capacity([50, 20, 35])
        mon = NetworkResourceMonitor(0, m)
        assert mon.available_bandwidth(1, 0.0) == 20.0
        assert mon.available_bandwidth(2, 0.0) == 35.0

    def test_tracks_traces(self):
        trace = PiecewiseTrace([(0, 30), (100, 100)])
        m = BandwidthMatrix([[1, trace], [trace, 1]])
        mon = NetworkResourceMonitor(0, m)
        assert mon.available_bandwidth(1, 0.0) == 30
        assert mon.available_bandwidth(1, 150.0) == 100

    def test_snapshot_covers_all_peers(self):
        m = BandwidthMatrix.from_worker_capacity([10] * 4)
        snap = NetworkResourceMonitor(2, m).snapshot(0.0)
        assert set(snap) == {0, 1, 3}

    def test_noise_is_seeded(self):
        m = BandwidthMatrix.from_worker_capacity([50, 50])
        a = NetworkResourceMonitor(0, m, noise=0.2, rng=np.random.default_rng(1))
        b = NetworkResourceMonitor(0, m, noise=0.2, rng=np.random.default_rng(1))
        assert a.available_bandwidth(1, 0.0) == b.available_bandwidth(1, 0.0)

    def test_noise_unbiased_on_average(self):
        m = BandwidthMatrix.from_worker_capacity([50, 50])
        mon = NetworkResourceMonitor(0, m, noise=0.1, rng=np.random.default_rng(0))
        vals = [mon.available_bandwidth(1, 0.0) for _ in range(400)]
        assert np.mean(vals) == pytest.approx(50.0, rel=0.05)

    def test_noise_without_rng_rejected(self):
        # noise > 0 with no rng would silently return noiseless
        # estimates; the constructor must refuse the combination.
        m = BandwidthMatrix.from_worker_capacity([50, 50])
        with pytest.raises(ValueError, match="requires an rng"):
            NetworkResourceMonitor(0, m, noise=0.2)

    def test_negative_noise_rejected(self):
        m = BandwidthMatrix.from_worker_capacity([50, 50])
        with pytest.raises(ValueError, match="non-negative"):
            NetworkResourceMonitor(0, m, noise=-0.1, rng=np.random.default_rng(0))


class TestClusterTopology:
    def test_build_from_table3_style_spec(self):
        topo = ClusterTopology.build(
            cores=[24, 24, 12, 12, 6, 6], bandwidth=[50, 50, 35, 35, 20, 20]
        )
        assert topo.n_workers == 6
        assert topo.compute[0].rate_at(0) == 4 * topo.compute[4].rate_at(0)
        assert topo.network.link(0, 5).bandwidth_at(0) == 20

    def test_peers(self):
        topo = ClusterTopology.build(cores=[1, 1, 1], bandwidth=[10, 10, 10])
        assert topo.peers(1) == [0, 2]

    def test_size_mismatch_rejected(self):
        from repro.cluster.compute import ComputeProfile

        with pytest.raises(ValueError):
            ClusterTopology(
                compute=[ComputeProfile(1)],
                network=BandwidthMatrix.from_worker_capacity([10, 10]),
            )

    def test_single_worker_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology.build(cores=[1], bandwidth=[10])
