"""Tests for the fault-injection trace generators."""

import numpy as np
import pytest

from repro.cluster.faults import degraded_trace, flaky_capacities


class TestDegradedTrace:
    def test_no_events_returns_base(self):
        rng = np.random.default_rng(0)
        t = degraded_trace(24.0, rng, horizon=100.0, rate=0.0)
        assert t.value_at(0) == 24.0
        assert t.value_at(99) == 24.0

    def test_degradation_never_exceeds_base(self):
        rng = np.random.default_rng(1)
        t = degraded_trace(24.0, rng, horizon=500.0, rate=0.05)
        for probe in np.linspace(0, 499, 60):
            assert t.value_at(float(probe)) <= 24.0 + 1e-9

    def test_floor_respected(self):
        rng = np.random.default_rng(2)
        t = degraded_trace(
            10.0, rng, horizon=500.0, rate=0.5, severity=(0.01, 0.02),
            mean_duration=200.0, floor=0.05,
        )
        for probe in np.linspace(0, 499, 60):
            assert t.value_at(float(probe)) >= 0.5 - 1e-9

    def test_deterministic_per_seed(self):
        a = degraded_trace(24.0, np.random.default_rng(3), horizon=300.0, rate=0.05)
        b = degraded_trace(24.0, np.random.default_rng(3), horizon=300.0, rate=0.05)
        for probe in (0, 50, 150, 299):
            assert a.value_at(probe) == b.value_at(probe)

    def test_overlapping_events_compound_multiplicatively(self):
        """Two concurrent events multiply: capacity = base * f1 * f2.

        The rng is scripted so the event windows are exact: event one
        spans [10, 60) with factor 0.5, event two [30, 50) with factor
        0.4 — so [30, 50) must sit at base * 0.5 * 0.4.
        """

        class ScriptedRng:
            """Replays fixed exponential/uniform draws in call order."""

            def __init__(self, exponentials, uniforms):
                self._exp = iter(exponentials)
                self._uni = iter(uniforms)

            def exponential(self, scale):
                return next(self._exp)

            def uniform(self, lo, hi):
                return next(self._uni)

        # Draw order per event: arrival gap, duration, factor.
        rng = ScriptedRng(
            exponentials=[10.0, 50.0, 20.0, 20.0, 100.0],  # last gap ends it
            uniforms=[0.5, 0.4],
        )
        t = degraded_trace(
            100.0, rng, horizon=100.0, rate=0.05, severity=(0.2, 0.7)
        )
        assert t.value_at(5.0) == 100.0            # before any event
        assert t.value_at(20.0) == pytest.approx(50.0)   # event 1 only
        assert t.value_at(40.0) == pytest.approx(20.0)   # 100 * 0.5 * 0.4
        assert t.value_at(55.0) == pytest.approx(50.0)   # event 2 ended
        assert t.value_at(70.0) == 100.0           # both ended

    def test_compounding_respects_floor(self):
        class ScriptedRng:
            """Replays fixed draws; see the compounding test above."""

            def __init__(self, exponentials, uniforms):
                self._exp = iter(exponentials)
                self._uni = iter(uniforms)

            def exponential(self, scale):
                return next(self._exp)

            def uniform(self, lo, hi):
                return next(self._uni)

        # Three fully-overlapping harsh events: 0.2^3 = 0.008 < floor.
        rng = ScriptedRng(
            exponentials=[1.0, 90.0, 1.0, 90.0, 1.0, 90.0, 1000.0],
            uniforms=[0.2, 0.2, 0.2],
        )
        t = degraded_trace(
            10.0, rng, horizon=100.0, rate=0.05, floor=0.05
        )
        assert t.value_at(50.0) == pytest.approx(0.5)  # clamped at floor*base

    def test_some_degradation_actually_happens(self):
        rng = np.random.default_rng(4)
        t = degraded_trace(24.0, rng, horizon=500.0, rate=0.05)
        values = {t.value_at(float(p)) for p in np.linspace(0, 499, 200)}
        assert len(values) > 1  # at the chosen rate, events are near-certain

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            degraded_trace(0.0, rng, horizon=10.0)
        with pytest.raises(ValueError):
            degraded_trace(1.0, rng, horizon=10.0, severity=(0.0, 0.5))
        with pytest.raises(ValueError):
            degraded_trace(1.0, rng, horizon=10.0, mean_duration=0.0)


class TestFlakyCapacities:
    def test_one_trace_per_worker(self):
        rng = np.random.default_rng(5)
        traces = flaky_capacities([24, 12, 6], rng, horizon=200.0)
        assert len(traces) == 3
        assert traces[0].value_at(0) <= 24.0

    def test_traces_are_independent(self):
        rng = np.random.default_rng(6)
        traces = flaky_capacities([24, 24], rng, horizon=500.0, rate=0.05)
        diffs = [
            traces[0].value_at(float(p)) != traces[1].value_at(float(p))
            for p in np.linspace(0, 499, 100)
        ]
        assert any(diffs)

    def test_floor_forwarded_to_each_trace(self):
        """Regression: ``flaky_capacities`` used to swallow ``floor``
        instead of forwarding it to ``degraded_trace``, so harsh
        compounding events could push a worker's capacity to ~0."""
        rng = np.random.default_rng(8)
        traces = flaky_capacities(
            [10.0, 10.0], rng, horizon=500.0, rate=0.5,
            severity=(0.01, 0.02), mean_duration=200.0, floor=0.05,
        )
        for t in traces:
            for probe in np.linspace(0, 499, 60):
                assert t.value_at(float(probe)) >= 0.5 - 1e-9

    def test_trains_through_faults(self):
        """A full engine run on a randomly-degrading cluster still learns."""
        from repro.cluster.compute import ComputeProfile
        from repro.cluster.network import BandwidthMatrix
        from repro.cluster.topology import ClusterTopology
        from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
        from repro.core.engine import TrainingEngine

        rng = np.random.default_rng(7)
        cores = flaky_capacities([8, 8, 4], rng, horizon=60.0, rate=0.02)
        topo = ClusterTopology(
            compute=[ComputeProfile(c, per_core_rate=16.0, overhead=0.02) for c in cores],
            network=BandwidthMatrix.from_worker_capacity([10.0] * 3),
        )
        cfg = TrainConfig(
            model="mlp", model_kwargs={"in_dim": 576, "hidden": (32,)},
            train_size=300, test_size=80, eval_subset=80, initial_lbs=8,
            gbs=GbsConfig(update_period_s=10.0),
            lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=10),
            dkt=DktConfig(period_iters=10), eval_period_iters=10,
        )
        res = TrainingEngine(cfg, topo, seed=0).run(60.0)
        assert res.final_mean_accuracy() > 0.3
