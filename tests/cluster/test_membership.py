"""Tests for membership schedules (the elastic-cluster extension)."""

import pytest

from repro.cluster.membership import MembershipEvent, MembershipSchedule


class TestMembershipEvent:
    def test_valid(self):
        ev = MembershipEvent(10.0, 2, "leave")
        assert ev.action == "leave"

    def test_invalid(self):
        with pytest.raises(ValueError):
            MembershipEvent(-1.0, 0, "leave")
        with pytest.raises(ValueError):
            MembershipEvent(1.0, -1, "leave")
        with pytest.raises(ValueError):
            MembershipEvent(1.0, 0, "crash")


class TestMembershipSchedule:
    def test_tuple_shorthand(self):
        sched = MembershipSchedule([(10.0, 3, "leave")], n_workers=6)
        assert len(sched) == 1

    def test_active_at(self):
        sched = MembershipSchedule(
            [(10.0, 3, "leave"), (50.0, 3, "join"), (60.0, 1, "leave")], n_workers=4
        )
        assert sched.active_at(0.0) == {0, 1, 2, 3}
        assert sched.active_at(10.0) == {0, 1, 2}
        assert sched.active_at(49.9) == {0, 1, 2}
        assert sched.active_at(50.0) == {0, 1, 2, 3}
        assert sched.active_at(100.0) == {0, 2, 3}

    def test_min_active(self):
        sched = MembershipSchedule(
            [(10.0, 3, "leave"), (20.0, 2, "leave"), (30.0, 3, "join")], n_workers=4
        )
        assert sched.min_active() == 2

    def test_double_leave_rejected(self):
        with pytest.raises(ValueError, match="leaves twice"):
            MembershipSchedule(
                [(10.0, 1, "leave"), (20.0, 1, "leave")], n_workers=3
            )

    def test_join_while_active_rejected(self):
        with pytest.raises(ValueError, match="joins while active"):
            MembershipSchedule([(10.0, 1, "join")], n_workers=3)

    def test_out_of_range_worker(self):
        with pytest.raises(ValueError, match="out of range"):
            MembershipSchedule([(10.0, 7, "leave")], n_workers=3)

    def test_events_sorted_regardless_of_input_order(self):
        sched = MembershipSchedule(
            [(50.0, 1, "join"), (10.0, 1, "leave")], n_workers=3
        )
        assert [e.time for e in sched.events] == [10.0, 50.0]

    def test_same_time_events_rejected_per_worker(self):
        with pytest.raises(ValueError, match="increasing times"):
            MembershipSchedule(
                [(10.0, 1, "leave"), (10.0, 1, "join")], n_workers=3
            )

    def test_too_few_workers(self):
        with pytest.raises(ValueError):
            MembershipSchedule([], n_workers=1)
