"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngPool, spawn_rng


class TestSpawnRng:
    def test_same_seed_key_same_stream(self):
        a = spawn_rng(1, "x").random(8)
        b = spawn_rng(1, "x").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = spawn_rng(1, "x").random(8)
        b = spawn_rng(1, "y").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(8)
        b = spawn_rng(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_key_hash_is_process_independent(self):
        # blake2-based, so values are stable across runs — pin a sample.
        v = spawn_rng(0, "stable-key").integers(0, 1_000_000)
        assert v == spawn_rng(0, "stable-key").integers(0, 1_000_000)


class TestRngPool:
    def test_get_caches(self):
        pool = RngPool(3)
        assert pool.get("a") is pool.get("a")

    def test_fresh_resets(self):
        pool = RngPool(3)
        g1 = pool.get("a")
        g1.random(4)
        g2 = pool.fresh("a")
        assert g2 is not g1
        np.testing.assert_array_equal(g2.random(4), spawn_rng(3, "a").random(4))

    def test_child_namespacing(self):
        pool = RngPool(3)
        child = pool.child("worker/0")
        direct = pool.get("worker/0/data")
        assert child.get("data") is direct

    def test_nested_children(self):
        pool = RngPool(3)
        deep = pool.child("a").child("b")
        assert deep.get("c") is pool.get("a/b/c")

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngPool("seed")  # type: ignore[arg-type]

    def test_streams_are_independent(self):
        pool = RngPool(9)
        a = pool.get("a").random(1000)
        b = pool.get("b").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1
