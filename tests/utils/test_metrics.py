"""Tests for time series and the paper's three metrics."""

import numpy as np
import pytest

from repro.utils.metrics import (
    TimeSeries,
    accuracy_at_time,
    detect_convergence,
    mean_and_ci95,
    time_to_accuracy,
)


def make_series(pairs):
    s = TimeSeries()
    for t, v in pairs:
        s.append(t, v)
    return s


class TestTimeSeries:
    def test_append_and_len(self):
        s = make_series([(0, 0.1), (1, 0.2)])
        assert len(s) == 2
        assert s.last() == (1.0, 0.2)

    def test_rejects_time_going_backwards(self):
        s = make_series([(5, 0.1)])
        with pytest.raises(ValueError):
            s.append(4.0, 0.2)

    def test_equal_times_allowed(self):
        s = make_series([(1, 0.1)])
        s.append(1.0, 0.2)
        assert len(s) == 2

    def test_value_at_locf(self):
        s = make_series([(1, 0.1), (3, 0.5), (5, 0.9)])
        assert s.value_at(0.0) == 0.1  # before first sample: first value
        assert s.value_at(3.0) == 0.5
        assert s.value_at(4.9) == 0.5
        assert s.value_at(100.0) == 0.9

    def test_empty_series_behaviour(self):
        s = TimeSeries()
        assert not s
        with pytest.raises(IndexError):
            s.last()
        with pytest.raises(IndexError):
            s.value_at(0.0)

    def test_max_value(self):
        s = make_series([(0, 0.3), (1, 0.7), (2, 0.5)])
        assert s.max_value() == 0.7

    def test_value_at_before_first_sample(self):
        # LOCF has nothing to carry forward yet: clamp to the first value,
        # even for times far before (or negative relative to) the start.
        s = make_series([(10, 0.4), (20, 0.8)])
        assert s.value_at(9.999) == 0.4
        assert s.value_at(-100.0) == 0.4


class TestAccuracyAtTime:
    def test_best_up_to_t(self):
        s = make_series([(10, 0.4), (20, 0.6), (30, 0.55)])
        assert accuracy_at_time(s, 25) == 0.6
        assert accuracy_at_time(s, 35) == 0.6

    def test_before_first_sample_is_zero(self):
        s = make_series([(10, 0.4)])
        assert accuracy_at_time(s, 5) == 0.0


class TestTimeToAccuracy:
    def test_first_crossing(self):
        s = make_series([(10, 0.4), (20, 0.7), (30, 0.8)])
        assert time_to_accuracy(s, 0.7) == 20.0

    def test_unreached_returns_none(self):
        s = make_series([(10, 0.4)])
        assert time_to_accuracy(s, 0.9) is None

    def test_exact_target_counts(self):
        s = make_series([(5, 0.5)])
        assert time_to_accuracy(s, 0.5) == 5.0


class TestDetectConvergence:
    def test_plateau_detected(self):
        ramp = [(i, min(0.8, 0.1 * i)) for i in range(40)]
        s = make_series(ramp)
        conv = detect_convergence(s, window=5, tolerance=0.01)
        assert conv is not None
        t, acc = conv
        assert acc == pytest.approx(0.8)
        assert t >= 8.0  # not before the ramp ends

    def test_still_improving_returns_none(self):
        s = make_series([(i, 0.02 * i) for i in range(30)])
        assert detect_convergence(s, window=5, tolerance=0.01) is None

    def test_too_short_returns_none(self):
        s = make_series([(i, 0.5) for i in range(5)])
        assert detect_convergence(s, window=5) is None

    def test_exactly_two_windows_is_enough(self):
        # The length gate is `size < 2 * window`: exactly 2*window flat
        # samples must be eligible and detect a plateau immediately.
        window = 5
        s = make_series([(i, 0.6) for i in range(2 * window)])
        conv = detect_convergence(s, window=window, tolerance=0.01)
        assert conv == (float(window), 0.6)

    def test_one_sample_short_of_two_windows_returns_none(self):
        window = 5
        s = make_series([(i, 0.6) for i in range(2 * window - 1)])
        assert detect_convergence(s, window=window, tolerance=0.01) is None


class TestMeanAndCi95:
    def test_single_sample(self):
        mean, ci = mean_and_ci95([0.7])
        assert mean == 0.7 and ci == 0.0

    def test_three_runs_uses_t_quantile(self):
        mean, ci = mean_and_ci95([0.5, 0.6, 0.7])
        assert mean == pytest.approx(0.6)
        # sem = 0.1/sqrt(3); t(0.975, df=2) = 4.303
        assert ci == pytest.approx(4.303 * 0.1 / 3**0.5, rel=1e-3)

    def test_identical_samples_zero_ci(self):
        mean, ci = mean_and_ci95([0.4, 0.4, 0.4])
        assert ci == pytest.approx(0.0, abs=1e-12)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_ci95([])

    def test_large_n_falls_back_to_normal_quantile(self):
        # n = 12 -> df = 11, outside the Student-t table: 1.96 applies.
        samples = [0.1 * i for i in range(12)]
        mean, ci = mean_and_ci95(samples)
        arr = np.asarray(samples)
        sem = arr.std(ddof=1) / np.sqrt(arr.size)
        assert mean == pytest.approx(arr.mean())
        assert ci == pytest.approx(1.96 * sem)

    def test_largest_tabulated_n_uses_t_quantile(self):
        # n = 11 -> df = 10 is the last tabulated row (2.228, not 1.96).
        samples = [0.1 * i for i in range(11)]
        _, ci = mean_and_ci95(samples)
        arr = np.asarray(samples)
        sem = arr.std(ddof=1) / np.sqrt(arr.size)
        assert ci == pytest.approx(2.228 * sem)
