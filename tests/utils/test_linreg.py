"""Tests for the least-squares line fit."""

import numpy as np
import pytest

from repro.utils.linreg import fit_line


class TestFitLine:
    def test_exact_line(self):
        fit = fit_line([1, 2, 3, 4], [3, 5, 7, 9])  # y = 1 + 2x
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.n == 4

    def test_noisy_line_recovers_slope(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        y = 0.5 + 3.0 * x + rng.normal(0, 0.1, x.size)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.05)
        assert fit.intercept == pytest.approx(0.5, abs=0.1)
        assert fit.r2 > 0.99

    def test_predict(self):
        fit = fit_line([0, 1], [1, 3])
        assert fit.predict(2.0) == pytest.approx(5.0)
        np.testing.assert_allclose(fit.predict(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_invert(self):
        fit = fit_line([0, 1], [1, 3])
        assert fit.invert(5.0) == pytest.approx(2.0)

    def test_invert_flat_raises(self):
        fit = fit_line([0, 1, 2], [4, 4, 4])
        with pytest.raises(ZeroDivisionError):
            fit.invert(4.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_line([1], [2])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_line([2, 2, 2], [1, 2, 3])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_line([1, 2, 3], [1, 2])

    def test_constant_y_has_r2_one(self):
        # ss_tot == 0: fit is exact by convention.
        fit = fit_line([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r2 == 1.0
