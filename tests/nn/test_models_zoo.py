"""Tests for the model zoo and the build_model API."""

import numpy as np
import pytest

from repro.nn.models import MODEL_BUILDERS, build_model, cipher_cnn, mlp, mobilenet_slim


class TestBuildModel:
    def test_registry_covers_paper_workloads(self):
        assert {"cipher", "mobilenet", "mlp"} <= set(MODEL_BUILDERS)

    def test_unknown_name_raises(self, rng):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("resnet", rng)

    def test_kwargs_forwarded(self, rng):
        m = build_model("mlp", rng, in_dim=10, hidden=(4,), num_classes=3)
        out = m.forward(np.zeros((2, 10), dtype=np.float32))
        assert out.shape == (2, 3)

    def test_same_rng_state_same_model(self):
        a = build_model("mlp", np.random.default_rng(5), in_dim=8, hidden=(4,))
        b = build_model("mlp", np.random.default_rng(5), in_dim=8, hidden=(4,))
        for n in a.variable_names:
            np.testing.assert_array_equal(a.get_variable(n), b.get_variable(n))


class TestCipher:
    def test_paper_architecture(self, rng):
        m = cipher_cnn(rng)
        # 3 conv + 2 dense = 5 weight-bearing layers -> 10 variables.
        assert len(m.variable_names) == 10
        out = m.forward(np.zeros((2, 1, 24, 24), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_forward_backward(self, rng):
        m = cipher_cnn(rng, image_size=8, kernels=(3, 4, 5), hidden=16)
        x = rng.normal(size=(4, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 10, size=4)
        loss, grads = m.loss_and_grads(x, y)
        assert np.isfinite(loss)
        assert all(np.isfinite(g).all() for g in grads.values())

    def test_indivisible_image_size_rejected(self, rng):
        with pytest.raises(ValueError):
            cipher_cnn(rng, image_size=30)

    def test_multi_megabyte_at_defaults(self, rng):
        # the paper's Cipher is ~5 MB; ours lands in the same ballpark
        assert 1e6 < cipher_cnn(rng).nbytes() < 1e7


class TestMobileNet:
    def test_forward_shape(self, rng):
        m = mobilenet_slim(rng, num_classes=7)
        out = m.forward(np.zeros((2, 3, 32, 32), dtype=np.float32))
        assert out.shape == (2, 7)

    def test_width_multiplier_scales_params(self, rng):
        thin = mobilenet_slim(np.random.default_rng(0), width=0.5)
        wide = mobilenet_slim(np.random.default_rng(0), width=2.0)
        assert wide.num_params() > 2 * thin.num_params()

    def test_has_depthwise_structure(self, rng):
        m = mobilenet_slim(rng)
        names = "".join(m.variable_names)
        assert "DepthwiseConv2D" in names
        assert "BatchNorm" in names

    def test_trains_one_step(self, rng):
        m = mobilenet_slim(rng, num_classes=5, blocks=((8, 1), (16, 2)))
        x = rng.normal(size=(4, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 5, size=4)
        loss0, g = m.loss_and_grads(x, y)
        m.apply_grads(g, lr=0.1)
        loss1, _ = m.loss_and_grads(x, y)
        assert np.isfinite(loss1)


class TestMlp:
    def test_accepts_image_input_via_flatten(self, rng):
        m = mlp(rng, in_dim=1 * 24 * 24)
        out = m.forward(np.zeros((3, 1, 24, 24), dtype=np.float32))
        assert out.shape == (3, 10)

    def test_hidden_stack(self, rng):
        m = mlp(rng, in_dim=10, hidden=(20, 30, 40), num_classes=2)
        dense_vars = [n for n in m.variable_names if "Dense" in n]
        assert len(dense_vars) == 8  # 4 dense layers x (W, b)
