"""Tests for the SGD optimizer."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.model import Model
from repro.nn.optim import SGD


@pytest.fixture
def quadratic_setup(rng):
    """A 1-layer model where the loss landscape is easy to reason about."""
    model = Model([Dense(4, 2, rng)])
    x = rng.normal(size=(16, 4)).astype(np.float32)
    y = rng.integers(0, 2, size=16)
    return model, x, y


class TestSGD:
    def test_plain_step_equals_apply_grads(self, quadratic_setup):
        model, x, y = quadratic_setup
        _, grads = model.loss_and_grads(x, y)
        name = model.variable_names[0]
        before = model.get_variable(name).copy()
        SGD(model, lr=0.1).step(grads)
        np.testing.assert_allclose(
            model.get_variable(name), before - 0.1 * grads[name], rtol=1e-6
        )

    def test_momentum_accumulates(self, quadratic_setup):
        model, x, y = quadratic_setup
        opt = SGD(model, lr=0.1, momentum=0.9)
        name = model.variable_names[0]
        g = {n: np.ones_like(v) for n, v in model.variables().items()}
        w0 = model.get_variable(name).copy()
        opt.step(g)  # v = 1        -> w -= 0.1
        opt.step(g)  # v = 1.9      -> w -= 0.19
        np.testing.assert_allclose(
            model.get_variable(name), w0 - 0.1 - 0.19, rtol=1e-6
        )

    def test_training_reduces_loss(self, quadratic_setup):
        model, x, y = quadratic_setup
        opt = SGD(model, lr=0.2, momentum=0.5)
        loss0, g = model.loss_and_grads(x, y)
        for _ in range(50):
            opt.step(g)
            _, g = model.loss_and_grads(x, y)
        loss1, _ = model.loss_and_grads(x, y)
        assert loss1 < loss0

    def test_invalid_hyperparams(self, quadratic_setup):
        model, _, _ = quadratic_setup
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.0)
