"""Tests for softmax cross-entropy."""

import numpy as np
import pytest

from repro.nn.losses import softmax_cross_entropy, softmax_probs


class TestSoftmaxProbs:
    def test_rows_sum_to_one(self, rng):
        p = softmax_probs(rng.normal(size=(8, 5)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)
        assert (p > 0).all()

    def test_stable_for_large_logits(self):
        p = softmax_probs(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p[0, :2], 0.5, rtol=1e-6)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            softmax_probs(np.zeros(3))


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss_is_log_k(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(10))

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_is_probs_minus_onehot_over_n(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        probs = softmax_probs(logits.copy())
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        expected = probs
        expected[np.arange(6), labels] -= 1
        expected /= 6
        np.testing.assert_allclose(grad, expected, rtol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(5, 7))
        labels = rng.integers(0, 7, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-8)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                num = (softmax_cross_entropy(lp, labels)[0]
                       - softmax_cross_entropy(lm, labels)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-4)

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
