"""Tests for the library-extension layers and optimizer features."""

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_grad_error
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, LeakyReLU
from repro.nn.model import Model
from repro.nn.optim import SGD


class TestAvgPool2D:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x, False)
        np.testing.assert_allclose(out, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_backward_spreads_uniformly(self):
        layer = AvgPool2D(2)
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(dx, np.ones((1, 1, 2, 2)))

    def test_gradcheck_in_model(self, rng):
        model = Model(
            [Conv2D(1, 3, 3, rng), AvgPool2D(2), Flatten(), Dense(3 * 4 * 4, 3, rng)]
        )
        x = rng.normal(size=(3, 1, 8, 8))
        y = rng.integers(0, 3, size=3)
        assert max_relative_grad_error(model, x, y) < 2e-4

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            AvgPool2D(2).forward(np.zeros((1, 1, 5, 5)), training=False)


class TestLeakyReLU:
    def test_forward(self):
        layer = LeakyReLU(alpha=0.1)
        out = layer.forward(np.array([[-2.0, 3.0]]), training=True)
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_backward(self):
        layer = LeakyReLU(alpha=0.1)
        layer.forward(np.array([[-2.0, 3.0]]), training=True)
        dx = layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(dx, [[0.1, 1.0]])

    def test_gradcheck_in_model(self, rng):
        model = Model([Flatten(), Dense(16, 8, rng), LeakyReLU(0.2), Dense(8, 3, rng)])
        x = rng.normal(size=(4, 16))
        y = rng.integers(0, 3, size=4)
        assert max_relative_grad_error(model, x, y) < 2e-4

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=1.0)


class TestSgdExtensions:
    @pytest.fixture
    def setup(self, rng):
        model = Model([Dense(4, 2, rng)])
        grads = {n: np.ones_like(v) for n, v in model.variables().items()}
        return model, grads

    def test_weight_decay_shrinks_weights(self, setup):
        model, _ = setup
        name = model.variable_names[0]
        before = model.get_variable(name).copy()
        zero_grads = {n: np.zeros_like(v) for n, v in model.variables().items()}
        SGD(model, lr=0.1, weight_decay=0.5).step(zero_grads)
        np.testing.assert_allclose(
            model.get_variable(name), before * (1 - 0.05), rtol=1e-6
        )

    def test_clip_norm_rescales_large_gradients(self, setup):
        model, grads = setup
        opt = SGD(model, lr=1.0, clip_norm=1.0)
        name = model.variable_names[0]
        before = model.get_variable(name).copy()
        opt.step(grads)
        applied = before - model.get_variable(name)
        total = np.sqrt(sum(
            float(np.square(before_v - model.get_variable(n)).sum())
            for n, before_v in [(name, before)]
        ))
        # the update on this variable is bounded by the global clip
        assert np.linalg.norm(applied) <= 1.0 + 1e-6

    def test_clip_noop_for_small_gradients(self, setup):
        model, _ = setup
        small = {n: np.full_like(v, 1e-4) for n, v in model.variables().items()}
        opt = SGD(model, lr=1.0, clip_norm=10.0)
        name = model.variable_names[0]
        before = model.get_variable(name).copy()
        opt.step(small)
        np.testing.assert_allclose(
            model.get_variable(name), before - 1e-4, rtol=1e-5
        )

    def test_global_norm(self, setup):
        _, grads = setup
        n_entries = sum(g.size for g in grads.values())
        assert SGD.global_norm(grads) == pytest.approx(np.sqrt(n_entries))

    def test_validation(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, clip_norm=0.0)
