"""Tests for the Model container: named variables, updates, evaluation."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.model import Model


@pytest.fixture
def model(rng):
    return Model([Dense(6, 8, rng), ReLU(), Dense(8, 3, rng)])


class TestVariableAccess:
    def test_variable_names_are_unique_and_ordered(self, model):
        names = model.variable_names
        assert len(names) == len(set(names)) == 4  # 2 dense layers x (W, b)
        assert names[0].startswith("00_Dense/")
        assert names[-1].startswith("02_Dense/")

    def test_variables_are_views_not_copies(self, model):
        v = model.variables()
        name = model.variable_names[0]
        v[name][0, 0] = 123.0
        assert model.get_variable(name)[0, 0] == 123.0

    def test_copy_weights_detached(self, model):
        snap = model.copy_weights()
        name = model.variable_names[0]
        model.get_variable(name)[...] = 0.0
        assert snap[name].any()

    def test_set_weights_roundtrip(self, model, rng):
        snap = {n: rng.normal(size=v.shape).astype(np.float32)
                for n, v in model.variables().items()}
        model.set_weights(snap)
        for n in model.variable_names:
            np.testing.assert_array_equal(model.get_variable(n), snap[n])

    def test_set_weights_rejects_missing_keys(self, model):
        with pytest.raises(KeyError):
            model.set_weights({})

    def test_num_params_and_nbytes(self, model):
        expect = 6 * 8 + 8 + 8 * 3 + 3
        assert model.num_params() == expect
        assert model.nbytes() == expect * 4


class TestTrainingStep:
    def test_loss_and_grads_cover_all_variables(self, model, rng):
        x = rng.normal(size=(4, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=4)
        loss, grads = model.loss_and_grads(x, y)
        assert set(grads) == set(model.variable_names)
        assert np.isfinite(loss)

    def test_apply_grads_descends_loss(self, model, rng):
        x = rng.normal(size=(32, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=32)
        loss0, grads = model.loss_and_grads(x, y)
        model.apply_grads(grads, lr=0.5)
        loss1, _ = model.loss_and_grads(x, y)
        assert loss1 < loss0

    def test_apply_grads_coeff_scales_update(self, model, rng):
        x = rng.normal(size=(4, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=4)
        _, grads = model.loss_and_grads(x, y)
        name = model.variable_names[0]
        before = model.get_variable(name).copy()
        model.apply_grads({name: grads[name]}, lr=0.1, coeff=2.0)
        np.testing.assert_allclose(
            model.get_variable(name), before - 0.2 * grads[name], rtol=1e-5
        )

    def test_apply_sparse_grads(self, model):
        name = model.variable_names[0]
        w = model.get_variable(name)
        before = w.copy()
        idx = np.array([0, 5], dtype=np.int64)
        vals = np.array([1.0, -2.0], dtype=np.float32)
        model.apply_sparse_grads({name: (idx, vals)}, lr=0.1)
        flat_b, flat_a = before.reshape(-1), w.reshape(-1)
        assert flat_a[0] == pytest.approx(flat_b[0] - 0.1)
        assert flat_a[5] == pytest.approx(flat_b[5] + 0.2)
        # untouched entries unchanged
        mask = np.ones(flat_b.size, dtype=bool)
        mask[[0, 5]] = False
        np.testing.assert_array_equal(flat_a[mask], flat_b[mask])

    def test_apply_sparse_grads_duplicate_indices_accumulate(self, model):
        name = model.variable_names[0]
        w = model.get_variable(name)
        before = w.reshape(-1)[0]
        idx = np.array([0, 0], dtype=np.int64)
        vals = np.array([1.0, 1.0], dtype=np.float32)
        model.apply_sparse_grads({name: (idx, vals)}, lr=0.1)
        assert w.reshape(-1)[0] == pytest.approx(before - 0.2)

    def test_gradient_shape_mismatch_raises(self, model):
        name = model.variable_names[0]
        with pytest.raises(ValueError):
            model.apply_grads({name: np.zeros((1, 1))}, lr=0.1)


class TestEvaluate:
    def test_perfectly_separable_reaches_full_accuracy(self, rng):
        model = Model([Dense(2, 16, rng), ReLU(), Dense(16, 2, rng)])
        x = np.concatenate([rng.normal(-3, 0.3, (50, 2)), rng.normal(3, 0.3, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        x = x.astype(np.float32)
        for _ in range(200):
            _, g = model.loss_and_grads(x, y)
            model.apply_grads(g, lr=0.2)
        loss, acc = model.evaluate(x, y)
        assert acc == 1.0
        assert loss < 0.2

    def test_batched_evaluation_matches_single_shot(self, model, rng):
        x = rng.normal(size=(70, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=70)
        l1, a1 = model.evaluate(x, y, batch=7)
        l2, a2 = model.evaluate(x, y, batch=1000)
        assert l1 == pytest.approx(l2, rel=1e-5)
        assert a1 == a2

    def test_empty_eval_raises(self, model):
        with pytest.raises(ValueError):
            model.evaluate(np.zeros((0, 6)), np.zeros(0, dtype=int))

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Model([])
