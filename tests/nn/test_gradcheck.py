"""Whole-model gradient checks against numerical differentiation.

These are the substrate's correctness anchor: every layer type appears
in at least one checked model.
"""

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_grad_error
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    ReLU6,
)
from repro.nn.model import Model

TOL = 2e-4


@pytest.fixture
def data(rng):
    x = rng.normal(size=(4, 1, 8, 8)).astype(np.float64)
    y = rng.integers(0, 3, size=4)
    return x, y


class TestGradcheck:
    def test_mlp(self, rng, data):
        x, y = data
        model = Model([Flatten(), Dense(64, 16, rng), ReLU(), Dense(16, 3, rng)])
        assert max_relative_grad_error(model, x, y) < TOL

    def test_conv_pool_stack(self, rng, data):
        x, y = data
        model = Model(
            [
                Conv2D(1, 4, 3, rng),
                ReLU(),
                MaxPool2D(2),
                Conv2D(4, 6, 3, rng),
                ReLU(),
                Flatten(),
                Dense(6 * 4 * 4, 3, rng),
            ]
        )
        assert max_relative_grad_error(model, x, y) < TOL

    def test_depthwise_separable_block(self, rng, data):
        x, y = data
        model = Model(
            [
                Conv2D(1, 4, 3, rng),
                DepthwiseConv2D(4, 3, rng, stride=2),
                ReLU6(),
                Conv2D(4, 6, 1, rng, pad=0),
                GlobalAvgPool2D(),
                Dense(6, 3, rng),
            ]
        )
        assert max_relative_grad_error(model, x, y) < TOL

    def test_batchnorm_stack(self, rng, data):
        x, y = data
        model = Model(
            [
                Conv2D(1, 4, 3, rng),
                BatchNorm(4),
                ReLU(),
                Flatten(),
                Dense(4 * 8 * 8, 3, rng),
            ]
        )
        assert max_relative_grad_error(model, x, y) < TOL

    def test_strided_conv(self, rng, data):
        x, y = data
        model = Model(
            [Conv2D(1, 4, 3, rng, stride=2), ReLU(), Flatten(), Dense(4 * 4 * 4, 3, rng)]
        )
        assert max_relative_grad_error(model, x, y) < TOL
