"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import glorot_uniform, he_normal, ones, zeros


class TestHeNormal:
    def test_shape_and_dtype(self, rng):
        w = he_normal(rng, (64, 32), fan_in=64)
        assert w.shape == (64, 32)
        assert w.dtype == np.float32

    def test_variance_matches_he_rule(self):
        rng = np.random.default_rng(0)
        w = he_normal(rng, (400, 400), fan_in=400)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.05)
        assert abs(w.mean()) < 0.01

    def test_fan_in_validation(self, rng):
        with pytest.raises(ValueError):
            he_normal(rng, (2, 2), fan_in=0)

    def test_deterministic_per_rng(self):
        a = he_normal(np.random.default_rng(1), (8, 8), fan_in=8)
        b = he_normal(np.random.default_rng(1), (8, 8), fan_in=8)
        np.testing.assert_array_equal(a, b)


class TestGlorotUniform:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform(rng, (300, 200), fan_in=300, fan_out=200)
        limit = np.sqrt(6.0 / 500)
        assert w.min() >= -limit and w.max() <= limit

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform(rng, (2, 2), fan_in=2, fan_out=0)


class TestConstants:
    def test_zeros_ones(self):
        assert zeros((3, 2)).sum() == 0
        assert ones((4,)).sum() == 4
        assert zeros((1,)).dtype == np.float32
        assert ones((1,)).dtype == np.float32
