"""Workspace (allocation-free) path: parity, in-place SGD, allocations.

The buffer-reusing hot path must be *bitwise* identical to the
allocating path — same kernels, same operand order, only the output
arrays' provenance differs. These tests compare the two paths layer by
layer under hypothesis-generated inputs (dtypes, odd shapes, zero-size
batches), check the in-place optimizer against the textbook allocating
formulas, and pin the headline property: a steady-state training step
performs no net NumPy allocations.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import workspace
from repro.nn.layers.activations import LeakyReLU, ReLU, ReLU6
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.models import build_model
from repro.nn.optim import SGD

F_DTYPES = (np.float32, np.float64)


def _data(rng: np.random.Generator, shape, dtype) -> np.ndarray:
    return rng.standard_normal(size=shape).astype(dtype)


def _run_step(layer, x, dout):
    """One forward/backward pair; results copied out of any shared buffers."""
    out = layer.forward(x, training=True)
    dx = layer.backward(dout)
    return out.copy(), dx.copy(), {k: g.copy() for k, g in layer.grads.items()}


def _assert_layer_parity(factory, x, dout):
    """The workspace and allocating paths must agree bit for bit.

    ``factory`` builds a fresh, identically-initialised layer per call
    (seeded rng inside), so the two runs share nothing but the inputs.
    """
    ws_layer = factory()
    assert workspace.enabled(), "tests assume the default workspace-on state"
    got_ws = _run_step(ws_layer, x, dout)
    with workspace.disabled():
        ref_layer = factory()
        got_ref = _run_step(ref_layer, x, dout)
    for ws_arr, ref_arr in zip(got_ws[:2], got_ref[:2]):
        assert ws_arr.dtype == ref_arr.dtype
        np.testing.assert_array_equal(ws_arr, ref_arr)
    assert got_ws[2].keys() == got_ref[2].keys()
    for name in got_ref[2]:
        np.testing.assert_array_equal(got_ws[2][name], got_ref[2][name])
    return ws_layer, ref_layer


class TestLayerParity:
    """Bitwise workspace-on vs workspace-off equality per layer."""

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(0, 6),
        in_dim=st.integers(1, 9),
        out_dim=st.integers(1, 7),
        dtype=st.sampled_from(F_DTYPES),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_dense(self, batch, in_dim, out_dim, dtype, seed):
        rng = np.random.default_rng(seed)
        x = _data(rng, (batch, in_dim), dtype)
        res_dtype = np.result_type(dtype, np.float32)
        dout = _data(rng, (batch, out_dim), res_dtype)
        _assert_layer_parity(
            lambda: Dense(in_dim, out_dim, np.random.default_rng(seed)), x, dout
        )

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.tuples(st.integers(0, 5), st.integers(1, 7)),
        dtype=st.sampled_from(F_DTYPES),
        kind=st.sampled_from(["relu", "relu6", "leaky"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_activations(self, shape, dtype, kind, seed):
        factory = {
            "relu": ReLU,
            "relu6": ReLU6,
            "leaky": lambda: LeakyReLU(0.1),
        }[kind]
        rng = np.random.default_rng(seed)
        # Scale up so ReLU6's upper clamp is actually exercised.
        x = (_data(rng, shape, dtype) * 4).astype(dtype)
        dout = _data(rng, shape, dtype)
        _assert_layer_parity(factory, x, dout)

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(1, 3),
        in_c=st.integers(1, 2),
        out_c=st.integers(1, 3),
        hw=st.integers(3, 6),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_conv2d(self, n, in_c, out_c, hw, kernel, stride, seed):
        rng = np.random.default_rng(seed)
        x = _data(rng, (n, in_c, hw, hw), np.float32)

        def factory():
            return Conv2D(
                in_c, out_c, kernel, np.random.default_rng(seed), stride=stride
            )

        out_shape = factory().forward(x, training=False).shape
        dout = _data(rng, out_shape, np.float32)
        _assert_layer_parity(factory, x, dout)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 3),
        half=st.integers(1, 3),
        dtype=st.sampled_from(F_DTYPES),
        kind=st.sampled_from(["max", "avg", "global"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_pools(self, n, c, half, dtype, kind, seed):
        rng = np.random.default_rng(seed)
        h = w = 2 * half
        x = _data(rng, (n, c, h, w), dtype)
        if kind == "global":
            factory = GlobalAvgPool2D
            dout = _data(rng, (n, c), dtype)
        else:
            factory = MaxPool2D if kind == "max" else AvgPool2D
            dout = _data(rng, (n, c, half, half), dtype)
        _assert_layer_parity(factory, x, dout)

    @settings(max_examples=20, deadline=None)
    @given(
        batch=st.integers(1, 6),
        dim=st.integers(1, 5),
        spatial=st.one_of(st.none(), st.integers(1, 4)),
        dtype=st.sampled_from(F_DTYPES),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batchnorm(self, batch, dim, spatial, dtype, seed):
        rng = np.random.default_rng(seed)
        shape = (batch, dim) if spatial is None else (batch, dim, spatial, spatial)
        x = _data(rng, shape, dtype)
        res_dtype = x.dtype if x.dtype.kind == "f" else np.float64
        dout = _data(rng, shape, res_dtype)
        ws_layer, ref_layer = _assert_layer_parity(lambda: BatchNorm(dim), x, dout)
        # The in-place running-statistics update must also match.
        np.testing.assert_array_equal(ws_layer.running_mean, ref_layer.running_mean)
        np.testing.assert_array_equal(ws_layer.running_var, ref_layer.running_var)

    def test_full_model_training_matches_allocating_path(self):
        """Three loss_and_grads + apply_grads steps on identically-seeded
        MLPs: losses, gradients, and final weights all bitwise equal."""
        rng = np.random.default_rng(11)
        xb = rng.standard_normal(size=(16, 36)).astype(np.float32)
        yb = rng.integers(0, 10, size=16)

        def train(path_ws: bool):
            model = build_model(
                "mlp", np.random.default_rng(7), in_dim=36, hidden=(12, 8)
            )
            losses, grad_dumps = [], []
            for _ in range(3):
                loss, grads = model.loss_and_grads(xb, yb)
                losses.append(loss)
                grad_dumps.append({n: g.copy() for n, g in grads.items()})
                model.apply_grads(grads, lr=0.05)
            weights = model.copy_weights()
            return losses, grad_dumps, weights

        ws_out = train(True)
        with workspace.disabled():
            ref_out = train(False)
        assert ws_out[0] == ref_out[0]  # float losses, exact
        for g_ws, g_ref in zip(ws_out[1], ref_out[1]):
            for name in g_ref:
                np.testing.assert_array_equal(g_ws[name], g_ref[name])
        for name in ref_out[2]:
            np.testing.assert_array_equal(ws_out[2][name], ref_out[2][name])


class TestSgdInPlaceParity:
    """The buffered optimizer vs the textbook allocating update rules."""

    @pytest.mark.parametrize(
        "momentum,weight_decay,clip_norm",
        [
            (0.0, 0.0, None),
            (0.9, 0.0, None),
            (0.9, 1e-3, None),
            (0.9, 0.0, 0.01),
            (0.5, 1e-2, 0.05),
        ],
    )
    def test_matches_allocating_formula(self, momentum, weight_decay, clip_norm):
        def fresh_model():
            return build_model(
                "mlp", np.random.default_rng(3), in_dim=20, hidden=(9,)
            )

        rng = np.random.default_rng(4)
        xb = rng.standard_normal(size=(8, 20)).astype(np.float32)
        yb = rng.integers(0, 10, size=8)
        lr = 0.1

        model = fresh_model()
        opt = SGD(
            model,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            clip_norm=clip_norm,
        )
        ref = fresh_model()
        ref_vel = {n: np.zeros_like(v) for n, v in ref.variables().items()}

        for _ in range(4):
            _, grads = model.loss_and_grads(xb, yb)
            opt.step(grads)

            _, ref_grads = ref.loss_and_grads(xb, yb)
            ref_grads = {n: g.copy() for n, g in ref_grads.items()}
            if clip_norm is not None:
                norm = SGD.global_norm(ref_grads)
                if norm > clip_norm and norm != 0.0:
                    scale = clip_norm / norm
                    ref_grads = {n: g * scale for n, g in ref_grads.items()}
            variables = ref.variables()
            if weight_decay > 0.0:
                for v in variables.values():
                    v *= 1.0 - lr * weight_decay
            for name, g in ref_grads.items():
                if momentum > 0.0:
                    v = ref_vel[name] * momentum + g
                    ref_vel[name] = v
                else:
                    v = g
                np.subtract(variables[name], v * lr, out=variables[name])

        for name in ref.variable_names:
            np.testing.assert_array_equal(
                model.get_variable(name), ref.get_variable(name)
            )


class TestAllocationFree:
    def test_steady_state_training_step_allocates_nothing(self):
        """After warmup, repeated steps must not grow traced memory.

        The bound tolerates only the small per-step temporaries the loss
        head creates (softmax probabilities for a 16x10 logit block plus
        reduction scalars) — any leaked layer-sized array would blow
        straight through it.
        """
        model = build_model("mlp", np.random.default_rng(0), in_dim=576, hidden=(32,))
        opt = SGD(model, lr=0.05, momentum=0.9, clip_norm=1.0)
        rng = np.random.default_rng(1)
        xb = rng.standard_normal(size=(16, 576)).astype(np.float32)
        yb = rng.integers(0, 10, size=16)

        def step():
            _, grads = model.loss_and_grads(xb, yb)
            opt.step(grads)

        for _ in range(3):  # populate every buffer cache
            step()
        gc.collect()
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            for _ in range(5):
                step()
            gc.collect()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # No net growth across five steps beyond interpreter noise...
        assert current - base < 16_384, f"leaked {current - base} bytes over 5 steps"
        # ...and transient allocations stay in loss-head territory: far
        # below one (16, 576) float32 activation (36 KB).
        assert peak - base < 32_768, f"per-step temporaries peaked at {peak - base}"

    def test_buffers_cached_only_when_enabled(self):
        layer = ReLU()
        a = layer._buf("x", (3, 4), np.float32)
        b = layer._buf("x", (3, 4), np.float32)
        assert a is b
        c = layer._buf("x", (3, 4), np.float64)  # dtype is part of the key
        assert c is not a
        with workspace.disabled():
            d = layer._buf("x", (3, 4), np.float32)
            e = layer._buf("x", (3, 4), np.float32)
            assert d is not e and d is not a
        assert layer._buf("x", (3, 4), np.float32) is a

    def test_set_enabled_returns_previous_and_disabled_restores(self):
        assert workspace.enabled()
        prev = workspace.set_enabled(False)
        try:
            assert prev is True
            assert not workspace.enabled()
            with workspace.disabled():
                assert not workspace.enabled()
            assert not workspace.enabled()  # restored to *previous*, still off
        finally:
            workspace.set_enabled(True)
        assert workspace.enabled()


class TestFloat32Discipline:
    """The paper's workloads train end-to-end in float32: no silent
    float64 upcasts in parameters, activations, or gradients."""

    @pytest.mark.parametrize(
        "name,kwargs,x_shape",
        [
            ("mlp", {"in_dim": 48, "hidden": (16,)}, (4, 48)),
            ("cipher", {"image_size": 8, "kernels": (3, 4, 5), "hidden": 16}, (4, 1, 8, 8)),
            ("mobilenet", {"num_classes": 5, "blocks": ((8, 1), (16, 2))}, (4, 3, 16, 16)),
        ],
    )
    def test_zoo_models_stay_float32(self, name, kwargs, x_shape):
        rng = np.random.default_rng(2)
        model = build_model(name, rng, **kwargs)
        for vname, v in model.variables().items():
            assert v.dtype == np.float32, f"{vname} is {v.dtype}"
        x = rng.standard_normal(size=x_shape).astype(np.float32)
        y = rng.integers(0, 5, size=x_shape[0])
        logits = model.forward(x, training=False)
        assert logits.dtype == np.float32
        loss, grads = model.loss_and_grads(x, y)
        assert isinstance(loss, float)
        for gname, g in grads.items():
            assert g.dtype == np.float32, f"grad {gname} is {g.dtype}"
        model.apply_grads(grads, lr=0.1)
        for vname, v in model.variables().items():
            assert v.dtype == np.float32, f"{vname} upcast to {v.dtype} by update"
