"""Unit tests for individual layers: shapes, values, and gradients.

Analytic gradients are validated against central differences per layer
through tiny single-layer models (see also ``test_gradcheck.py`` for
whole-model checks).
"""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    ReLU6,
)


def numeric_grad_wrt_input(layer, x, dout, eps=1e-5):
    """Central-difference dL/dx where L = sum(forward(x) * dout)."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        lp = float((layer.forward(x, training=False) * dout).sum())
        flat[i] = orig - eps
        lm = float((layer.forward(x, training=False) * dout).sum())
        flat[i] = orig
        gflat[i] = (lp - lm) / (2 * eps)
    return grad


class TestDense:
    def test_forward_values(self, rng):
        layer = Dense(3, 2, rng)
        layer.params["W"][...] = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.float32)
        layer.params["b"][...] = np.array([0.5, -0.5], dtype=np.float32)
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]), training=False)
        np.testing.assert_allclose(out, [[4.5, 4.5]])

    def test_backward_shapes_and_values(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4)).astype(np.float64)
        layer.forward(x, training=True)
        dout = rng.normal(size=(5, 3))
        dx = layer.backward(dout)
        assert dx.shape == x.shape
        np.testing.assert_allclose(layer.grads["W"], x.T @ dout)
        np.testing.assert_allclose(layer.grads["b"], dout.sum(axis=0))
        np.testing.assert_allclose(dx, dout @ layer.params["W"].T)

    def test_input_grad_matches_numeric(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(2, 4))
        dout = rng.normal(size=(2, 3))
        layer.forward(x.copy(), training=True)
        dx = layer.backward(dout)
        num = numeric_grad_wrt_input(layer, x.copy(), dout)
        np.testing.assert_allclose(dx, num, atol=1e-5)

    def test_backward_without_forward_raises(self, rng):
        layer = Dense(2, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_wrong_input_shape_raises(self, rng):
        layer = Dense(4, 2, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 5)), training=False)

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)
        with pytest.raises(ValueError):
            Dense(3, 2, rng, init="unknown")


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, 3, rng)
        out = layer.forward(rng.normal(size=(2, 3, 12, 12)).astype(np.float32), False)
        assert out.shape == (2, 8, 12, 12)  # same-padding default

    def test_stride_two(self, rng):
        layer = Conv2D(1, 4, 3, rng, stride=2)
        out = layer.forward(rng.normal(size=(1, 1, 8, 8)).astype(np.float32), False)
        assert out.shape == (1, 4, 4, 4)

    def test_identity_kernel(self, rng):
        # 1x1 kernel with identity weights copies the input channel.
        layer = Conv2D(1, 1, 1, rng, pad=0)
        layer.params["W"][...] = 1.0
        layer.params["b"][...] = 0.0
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(x, False), x, rtol=1e-6)

    def test_known_convolution_value(self, rng):
        layer = Conv2D(1, 1, 3, rng, pad=0)
        layer.params["W"][...] = np.ones((1, 1, 3, 3), dtype=np.float32)
        layer.params["b"][...] = 0.0
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x, False)
        # top-left 3x3 window sum: 0+1+2+4+5+6+8+9+10 = 45
        assert out[0, 0, 0, 0] == pytest.approx(45.0)

    def test_input_grad_matches_numeric(self, rng):
        layer = Conv2D(2, 3, 3, rng)
        x = rng.normal(size=(2, 2, 5, 5))
        dout_shape = layer.forward(x.copy(), training=True).shape
        dout = rng.normal(size=dout_shape)
        dx = layer.backward(dout)
        num = numeric_grad_wrt_input(layer, x.copy(), dout)
        np.testing.assert_allclose(dx, num, atol=1e-4)

    def test_too_large_kernel_raises(self, rng):
        layer = Conv2D(1, 1, 9, rng, pad=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 4, 4)), training=False)


class TestDepthwiseConv2D:
    def test_no_cross_channel_mixing(self, rng):
        layer = DepthwiseConv2D(2, 3, rng)
        x = np.zeros((1, 2, 6, 6), dtype=np.float32)
        x[0, 0] = 1.0  # energy only in channel 0
        layer.params["b"][...] = 0.0
        out = layer.forward(x, False)
        assert np.abs(out[0, 1]).max() == 0.0

    def test_output_shape_stride(self, rng):
        layer = DepthwiseConv2D(4, 3, rng, stride=2)
        out = layer.forward(rng.normal(size=(2, 4, 8, 8)).astype(np.float32), False)
        assert out.shape == (2, 4, 4, 4)

    def test_input_grad_matches_numeric(self, rng):
        layer = DepthwiseConv2D(2, 3, rng)
        x = rng.normal(size=(1, 2, 5, 5))
        dout = rng.normal(size=layer.forward(x.copy(), training=True).shape)
        dx = layer.backward(dout)
        num = numeric_grad_wrt_input(layer, x.copy(), dout)
        np.testing.assert_allclose(dx, num, atol=1e-4)


class TestMaxPool2D:
    def test_values(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1, 2, 5, 6], [3, 4, 7, 8], [1, 1, 0, 0], [1, 9, 0, 2]]]],
                     dtype=np.float32)
        out = layer.forward(x, False)
        np.testing.assert_allclose(out, [[[[4, 8], [9, 2]]]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[[[10.0]]]]))
        np.testing.assert_allclose(dx, [[[[0, 0], [0, 10.0]]]])

    def test_ties_route_to_single_element(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[[[1.0]]]]))
        assert dx.sum() == pytest.approx(1.0)  # no double counting
        assert (dx != 0).sum() == 1

    def test_indivisible_input_raises(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 5)), training=False)

    def test_size_one_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D(1)


class TestGlobalAvgPool2D:
    def test_forward(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = GlobalAvgPool2D().forward(x, False)
        np.testing.assert_allclose(out, [[1.5, 5.5]])

    def test_backward_spreads_evenly(self):
        layer = GlobalAvgPool2D()
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[4.0]]))
        np.testing.assert_allclose(dx, np.full((1, 1, 2, 2), 1.0))


class TestActivations:
    def test_relu_forward_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out, [[0, 0, 2]])
        dx = layer.backward(np.array([[1.0, 1.0, 1.0]]))
        np.testing.assert_allclose(dx, [[0, 0, 1]])

    def test_relu6_clips_high(self):
        layer = ReLU6()
        x = np.array([[-1.0, 3.0, 9.0]])
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out, [[0, 3, 6]])
        dx = layer.backward(np.ones((1, 3)))
        np.testing.assert_allclose(dx, [[0, 1, 0]])


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(64, 4)).astype(np.float32)
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_drive_inference(self, rng):
        layer = BatchNorm(2, momentum=0.5)
        x = rng.normal(1.0, 1.0, size=(32, 2)).astype(np.float32)
        for _ in range(50):
            layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        # After convergence of running stats, inference ~ training output.
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.1)

    def test_4d_input(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(4, 3, 5, 5)).astype(np.float32)
        out = layer.forward(x, training=True)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)

    def test_gamma_beta_are_params(self):
        layer = BatchNorm(4)
        assert set(layer.params) == {"gamma", "beta"}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(4, momentum=1.5)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(np.zeros((2, 3, 4)), training=True)


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (3, 32)
        dx = layer.backward(out)
        np.testing.assert_array_equal(dx, x)

    def test_dropout_inference_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rate_bounds(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
