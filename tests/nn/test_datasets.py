"""Tests for synthetic datasets, sharding, and the minibatch sampler."""

import numpy as np
import pytest

from repro.nn.datasets import MinibatchSampler, Shard, SyntheticImageDataset
from repro.nn.models import mlp


class TestSyntheticImageDataset:
    def test_shapes_and_dtypes(self, rng):
        ds = SyntheticImageDataset.cifar_like(rng, train_size=100, test_size=30)
        assert ds.train_x.shape == (100, 1, 24, 24)
        assert ds.test_x.shape == (30, 1, 24, 24)
        assert ds.train_x.dtype == np.float32
        assert ds.train_y.dtype == np.int64

    def test_pixels_bounded_by_tanh(self, rng):
        ds = SyntheticImageDataset.cifar_like(rng, train_size=50, test_size=10)
        assert ds.train_x.min() >= -1.0 and ds.train_x.max() <= 1.0

    def test_labels_cover_range(self, rng):
        ds = SyntheticImageDataset.cifar_like(rng, train_size=500, test_size=100)
        assert set(np.unique(ds.train_y)) == set(range(10))

    def test_deterministic_for_seed(self):
        a = SyntheticImageDataset.cifar_like(np.random.default_rng(3), train_size=40, test_size=10)
        b = SyntheticImageDataset.cifar_like(np.random.default_rng(3), train_size=40, test_size=10)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_imagenet_like_preset(self, rng):
        ds = SyntheticImageDataset.imagenet_like(rng, train_size=300, test_size=120)
        assert ds.train_x.shape == (300, 3, 32, 32)
        assert ds.num_classes == 100

    def test_learnable_structure(self, rng):
        """An MLP must beat chance by a wide margin — the datasets exist
        to give the distributed experiments real accuracy dynamics."""
        ds = SyntheticImageDataset.cifar_like(rng, train_size=1500, test_size=400)
        model = mlp(rng, in_dim=576, hidden=(64,))
        for _ in range(300):
            idx = rng.integers(0, 1500, size=64)
            _, g = model.loss_and_grads(ds.train_x[idx], ds.train_y[idx])
            model.apply_grads(g, lr=0.1)
        _, acc = model.evaluate(ds.test_x, ds.test_y)
        assert acc > 0.5  # chance is 0.1

    def test_noise_raises_difficulty(self):
        accs = {}
        for noise in (0.5, 2.5):
            rng = np.random.default_rng(11)
            ds = SyntheticImageDataset.cifar_like(
                rng, train_size=1200, test_size=400, noise=noise
            )
            model = mlp(rng, in_dim=576, hidden=(64,))
            for _ in range(250):
                idx = rng.integers(0, 1200, size=64)
                _, g = model.loss_and_grads(ds.train_x[idx], ds.train_y[idx])
                model.apply_grads(g, lr=0.1)
            accs[noise] = model.evaluate(ds.test_x, ds.test_y)[1]
        assert accs[0.5] > accs[2.5]

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            SyntheticImageDataset(rng, num_classes=10, train_size=5, test_size=5)

    def test_one_class_rejected(self, rng):
        with pytest.raises(ValueError):
            SyntheticImageDataset(rng, num_classes=1)


class TestSharding:
    def test_iid_partition_is_exact(self, small_dataset):
        shards = small_dataset.shards(6, mode="iid")
        assert sum(s.size for s in shards) == small_dataset.train_size

    def test_iid_every_worker_sees_every_class(self, small_dataset):
        for shard in small_dataset.shards(4, mode="iid"):
            assert len(np.unique(shard.y)) == small_dataset.num_classes

    def test_contiguous_partition_is_exact(self, small_dataset):
        shards = small_dataset.shards(5, mode="contiguous")
        assert sum(s.size for s in shards) == small_dataset.train_size

    def test_contiguous_preserves_order(self, small_dataset):
        shards = small_dataset.shards(3, mode="contiguous")
        rebuilt = np.concatenate([s.x for s in shards])
        np.testing.assert_array_equal(rebuilt, small_dataset.train_x)

    def test_shards_disjoint(self, small_dataset):
        shards = small_dataset.shards(6, mode="iid")
        # Reconstruct the index assignment and check disjointness by count.
        total = sum(s.size for s in shards)
        assert total == small_dataset.train_size

    def test_invalid_worker_counts(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.shards(0)
        with pytest.raises(ValueError):
            small_dataset.shards(10**6)

    def test_unknown_mode(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.shards(2, mode="sorted")

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError):
            Shard(np.zeros((0, 1)), np.zeros(0, dtype=int))


class TestMinibatchSampler:
    def test_draw_shapes(self, small_dataset, rng):
        sampler = MinibatchSampler(small_dataset.shards(2)[0], rng)
        x, y = sampler.draw(16)
        assert x.shape[0] == 16 and y.shape == (16,)

    def test_variable_batch_sizes(self, small_dataset, rng):
        sampler = MinibatchSampler(small_dataset.shards(2)[0], rng)
        for b in (1, 7, 64):
            x, _ = sampler.draw(b)
            assert x.shape[0] == b

    def test_counts_samples_drawn(self, small_dataset, rng):
        sampler = MinibatchSampler(small_dataset.shards(2)[0], rng)
        sampler.draw(10)
        sampler.draw(22)
        assert sampler.samples_drawn == 32

    def test_only_draws_from_own_shard(self, small_dataset, rng):
        shard = small_dataset.shards(4)[1]
        sampler = MinibatchSampler(shard, rng)
        x, _ = sampler.draw(50)
        # every drawn row must exist in the shard
        flat_shard = {arr.tobytes() for arr in shard.x}
        assert all(row.tobytes() in flat_shard for row in x)

    def test_rejects_zero_batch(self, small_dataset, rng):
        sampler = MinibatchSampler(small_dataset.shards(2)[0], rng)
        with pytest.raises(ValueError):
            sampler.draw(0)
