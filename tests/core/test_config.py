"""Validation tests for configuration dataclasses."""

import pytest

from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig


class TestGbsConfig:
    def test_defaults_follow_paper(self):
        cfg = GbsConfig()
        assert cfg.warmup_cap_frac == 0.01
        assert cfg.speedup_cap_frac == 0.10
        assert cfg.start_epoch == 2.0

    def test_invalid_caps(self):
        with pytest.raises(ValueError):
            GbsConfig(warmup_cap_frac=0.2, speedup_cap_frac=0.1)
        with pytest.raises(ValueError):
            GbsConfig(warmup_cap_frac=0.0)

    def test_invalid_progressions(self):
        with pytest.raises(ValueError):
            GbsConfig(warmup_increment=0)
        with pytest.raises(ValueError):
            GbsConfig(speedup_factor=1.0)


class TestLbsConfig:
    def test_needs_two_probe_batches(self):
        with pytest.raises(ValueError):
            LbsConfig(probe_batches=(32,))

    def test_positive_unit_time(self):
        with pytest.raises(ValueError):
            LbsConfig(unit_time_s=0.0)


class TestMaxNConfig:
    def test_paper_default_floor(self):
        assert MaxNConfig().n_min == 0.85

    def test_bounds(self):
        with pytest.raises(ValueError):
            MaxNConfig(n_min=0.0)
        with pytest.raises(ValueError):
            MaxNConfig(n_min=50.0, n_max=10.0)
        with pytest.raises(ValueError):
            MaxNConfig(fixed_n=150.0)


class TestDktConfig:
    def test_paper_defaults(self):
        cfg = DktConfig()
        assert cfg.period_iters == 100
        assert cfg.merge_lambda == 0.75
        assert cfg.whom == "all"

    def test_validation(self):
        with pytest.raises(ValueError):
            DktConfig(merge_lambda=1.5)
        with pytest.raises(ValueError):
            DktConfig(whom="everyone")
        with pytest.raises(ValueError):
            DktConfig(period_iters=0)
        with pytest.raises(ValueError):
            DktConfig(early_period_iters=0)


class TestTrainConfig:
    def test_with_returns_modified_copy(self):
        a = TrainConfig()
        b = a.with_(lr=0.5)
        assert b.lr == 0.5 and a.lr != 0.5
        assert b.model == a.model

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(lr=0)
        with pytest.raises(ValueError):
            TrainConfig(sync_mode="eventual")
        with pytest.raises(ValueError):
            TrainConfig(initial_lbs=0)
        with pytest.raises(ValueError):
            TrainConfig(eval_subset=0)
