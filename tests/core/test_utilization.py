"""Tests for the compute/wait utilization accounting."""


from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
from repro.core.engine import TrainingEngine


def topo():
    # Strongly heterogeneous compute over a fast LAN: sync policies wait
    # on stragglers, async ones do not.
    return ClusterTopology.build(
        cores=[16, 16, 2], bandwidth=[100.0, 100.0, 100.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )


def run(system, horizon=30.0):
    cfg = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=300,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        system=system,
        gbs=GbsConfig(enabled=False),
        lbs=LbsConfig(enabled=False),
        maxn=MaxNConfig(enabled=False),
        dkt=DktConfig(enabled=False),
        weighted_update=False,
        eval_period_iters=20,
    )
    return TrainingEngine(cfg, topo(), seed=0).run(horizon)


class TestUtilization:
    def test_lockstep_fast_workers_wait(self):
        res = run("baseline")
        # fast workers (0, 1) idle while the 2-core straggler computes
        assert res.wait_fraction(0) > 0.3
        assert res.wait_fraction(2) < res.wait_fraction(0)

    def test_async_never_waits(self):
        res = run("ako")
        assert all(w == 0.0 for w in res.wait_time)

    def test_compute_plus_wait_bounded_by_horizon(self):
        for system in ("baseline", "ako", "hop"):
            res = run(system)
            for w in range(3):
                assert res.compute_time[w] + res.wait_time[w] <= res.horizon + 1.5

    def test_compute_time_positive_everywhere(self):
        res = run("baseline")
        assert all(c > 0 for c in res.compute_time)

    def test_bounded_waits_less_than_lockstep(self):
        lockstep = run("baseline")
        bounded = run("hop")  # staleness 5, backup 1 skips the straggler
        assert bounded.wait_fraction(0) < lockstep.wait_fraction(0)
