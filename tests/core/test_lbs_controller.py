"""Tests for RCP profiling and proportional LBS allocation (Eq. 5)."""

import numpy as np
import pytest

from repro.cluster.compute import ComputeProfile
from repro.core.config import LbsConfig
from repro.core.lbs_controller import LbsController, allocate_lbs


class TestAllocateLbs:
    def test_sums_to_gbs_exactly(self):
        alloc = allocate_lbs(192, [24, 24, 12, 12, 6, 6])
        assert sum(alloc) == 192

    def test_proportional_to_rcp(self):
        alloc = allocate_lbs(192, [24, 24, 12, 12, 6, 6])
        assert alloc[0] == pytest.approx(192 * 24 / 84, abs=1)
        assert alloc[4] == pytest.approx(192 * 6 / 84, abs=1)

    def test_equal_rcps_even_split(self):
        assert allocate_lbs(192, [5.0] * 6) == [32] * 6

    def test_zero_total_rcp_falls_back_to_even(self):
        assert allocate_lbs(12, [0.0, 0.0, 0.0]) == [4, 4, 4]

    def test_min_lbs_enforced(self):
        alloc = allocate_lbs(100, [1000.0, 1.0, 1.0], min_lbs=5)
        assert min(alloc) >= 5
        assert sum(alloc) == 100

    def test_extreme_skew_still_sums(self):
        alloc = allocate_lbs(97, [1e9, 1e-9, 3.0])
        assert sum(alloc) == 97 and min(alloc) >= 1

    def test_gbs_too_small_rejected(self):
        with pytest.raises(ValueError):
            allocate_lbs(2, [1.0, 1.0, 1.0])

    def test_negative_rcp_rejected(self):
        with pytest.raises(ValueError):
            allocate_lbs(10, [1.0, -1.0])

    def test_deterministic_tie_breaking(self):
        a = allocate_lbs(10, [1.0, 1.0, 1.0])
        b = allocate_lbs(10, [1.0, 1.0, 1.0])
        assert a == b


class TestLbsController:
    def _probe_for(self, profile, rng=None):
        def probe(batch):
            return profile.iter_time(batch, 0.0, rng)
        return probe

    def test_rcp_tracks_true_capacity_noise_free(self):
        profile = ComputeProfile(24, per_core_rate=8, overhead=0.05, jitter=0.0)
        ctl = LbsController(LbsConfig())
        rcp = ctl.profile(self._probe_for(profile))
        truth = profile.max_batch_in(1.0, 0.0)
        assert rcp == pytest.approx(truth, rel=0.02)

    def test_rcp_with_noise_close_to_truth(self):
        profile = ComputeProfile(24, per_core_rate=8, overhead=0.05, jitter=0.05)
        ctl = LbsController(LbsConfig(probe_repeats=3))
        rng = np.random.default_rng(3)
        rcp = ctl.profile(self._probe_for(profile, rng))
        truth = profile.max_batch_in(1.0, 0.0)
        assert rcp == pytest.approx(truth, rel=0.2)

    def test_faster_worker_gets_higher_rcp(self):
        fast = ComputeProfile(24, jitter=0.0)
        slow = ComputeProfile(6, jitter=0.0)
        ctl = LbsController(LbsConfig())
        assert ctl.profile(self._probe_for(fast)) > 2 * ctl.profile(
            self._probe_for(slow)
        )

    def test_degenerate_fit_falls_back_to_throughput(self):
        # A probe that returns constant time has slope 0; the controller
        # must still return a sane positive RCP.
        ctl = LbsController(LbsConfig())
        rcp = ctl.profile(lambda b: 0.5)
        assert rcp >= 1.0

    def test_stores_last_fit(self):
        profile = ComputeProfile(12, jitter=0.0)
        ctl = LbsController(LbsConfig())
        ctl.profile(self._probe_for(profile))
        assert ctl.last_fit is not None
        assert ctl.last_fit.slope == pytest.approx(1 / profile.rate_at(0), rel=0.01)
