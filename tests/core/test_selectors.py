"""Tests for the pluggable gradient selectors."""

import numpy as np
import pytest

from repro.core.config import MaxNConfig
from repro.core.selectors import (
    GradientSelector,
    MaxNSelector,
    RandomKSelector,
    ThresholdSelector,
    TopKSelector,
    make_selector,
)
from repro.core.transmission import (
    TransmissionPlanner,
    fit_level_to_budget,
    fit_levels_to_budgets,
)
from repro.obs.profile import Profiler, activate


@pytest.fixture
def grad(rng):
    return rng.normal(size=500)


class TestTopK:
    def test_keeps_exact_fraction(self, grad):
        idx, vals = TopKSelector().select(grad, 10.0)
        assert idx.size == 50
        np.testing.assert_array_equal(vals, grad[idx])

    def test_keeps_largest_magnitudes(self, grad):
        idx, _ = TopKSelector().select(grad, 10.0)
        mags = np.abs(grad)
        kept_min = mags[idx].min()
        dropped = np.setdiff1d(np.arange(grad.size), idx)
        assert mags[dropped].max() <= kept_min + 1e-12

    def test_level_100_keeps_all(self, grad):
        idx, _ = TopKSelector().select(grad, 100.0)
        assert idx.size == grad.size

    def test_at_least_one(self, grad):
        idx, _ = TopKSelector().select(grad, 0.01)
        assert idx.size == 1

    def test_count_matches_select(self, grad):
        sel = TopKSelector()
        for level in (0.5, 7.0, 55.0, 100.0):
            assert sel.count_at(grad, level) == sel.select(grad, level)[0].size

    def test_zero_gradient(self):
        idx, _ = TopKSelector().select(np.zeros(10), 50.0)
        assert idx.size == 0


class TestRandomK:
    def test_size_matches_topk(self, grad, rng):
        sel = RandomKSelector(rng)
        assert sel.select(grad, 20.0)[0].size == 100

    def test_deterministic_per_rng_state(self, grad):
        a = RandomKSelector(np.random.default_rng(4)).select(grad, 10.0)[0]
        b = RandomKSelector(np.random.default_rng(4)).select(grad, 10.0)[0]
        np.testing.assert_array_equal(a, b)

    def test_values_match_indices(self, grad, rng):
        idx, vals = RandomKSelector(rng).select(grad, 30.0)
        np.testing.assert_array_equal(vals, grad[idx])

    def test_count_matches(self, grad, rng):
        sel = RandomKSelector(rng)
        assert sel.count_at(grad, 30.0) == 150


class TestThreshold:
    def test_higher_level_more_entries(self, grad):
        sel = ThresholdSelector(base_threshold=0.5)
        n_low = sel.select(grad, 20.0)[0].size
        n_high = sel.select(grad, 90.0)[0].size
        assert n_high >= n_low

    def test_never_empty_on_nonzero(self):
        sel = ThresholdSelector(base_threshold=1e6)
        idx, _ = sel.select(np.array([1e-9, 2e-9]), 1.0)
        assert idx.size == 1

    def test_count_matches_select(self, grad):
        sel = ThresholdSelector(base_threshold=0.3)
        for level in (5.0, 50.0, 99.0):
            assert sel.count_at(grad, level) == sel.select(grad, level)[0].size

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ThresholdSelector(base_threshold=0.0)


class TestFactory:
    def test_all_names(self, rng):
        assert isinstance(make_selector("maxn"), MaxNSelector)
        assert isinstance(make_selector("topk"), TopKSelector)
        assert isinstance(make_selector("randomk", rng=rng), RandomKSelector)
        assert isinstance(make_selector("threshold"), ThresholdSelector)

    def test_randomk_needs_rng(self):
        with pytest.raises(ValueError):
            make_selector("randomk")

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_selector("dct")

    def test_maxn_selector_delegates(self, grad):
        from repro.core.maxn import select_max_n

        a = MaxNSelector().select(grad, 40.0)
        b = select_max_n(grad, 40.0)
        np.testing.assert_array_equal(a[0], b[0])


class TestGenericBudgetFit:
    def test_topk_fit_respects_budget(self, rng):
        grads = {"w": rng.normal(size=2000)}
        sel = TopKSelector()
        for budget in (200, 2000, 8000):
            level = fit_level_to_budget(sel, grads, budget)
            if level > 0.85:
                cnt = sel.count_at(grads["w"], level)
                assert 24 + 8 * cnt <= budget

    def test_monotone_in_budget(self, rng):
        grads = {"w": rng.normal(size=2000)}
        sel = ThresholdSelector(base_threshold=0.1)
        levels = [fit_level_to_budget(sel, grads, b) for b in (100, 2000, 50000)]
        assert levels == sorted(levels)

    def test_planner_with_alternative_selector(self, rng):
        planner = TransmissionPlanner(MaxNConfig(selector="topk"))
        grads = {"w": rng.normal(size=3000).astype(np.float32)}
        plans = planner.plan(grads, {1: 50.0, 2: 0.5}, iter_time_s=0.01)
        assert plans[1][1]["w"][0].size >= plans[2][1]["w"][0].size

    def test_planner_selector_config_validation(self):
        with pytest.raises(ValueError):
            MaxNConfig(selector="dct")


class _LoopedTopK(TopKSelector):
    """A top-k selector *without* a vectorized count path: inherits the
    base class's looping ``count_at_levels``, which the planner treats
    as unbatchable (per-link bisection fallback)."""

    count_at_levels = GradientSelector.count_at_levels


class TestCountAtLevels:
    def _selectors(self):
        return [
            MaxNSelector(),
            TopKSelector(),
            RandomKSelector(np.random.default_rng(3)),
            ThresholdSelector(base_threshold=0.3),
        ]

    def test_matches_count_at(self, grad):
        levels = np.array([0.85, 1.0, 7.5, 33.0, 60.0, 99.0, 100.0])
        for sel in self._selectors():
            batched = sel.count_at_levels(grad, levels)
            looped = [sel.count_at(grad, lv) for lv in levels]
            assert batched.tolist() == looped, type(sel).__name__

    def test_matches_count_at_float32(self, rng):
        g = rng.normal(size=800).astype(np.float32)
        levels = np.linspace(0.85, 100.0, 97)
        for sel in self._selectors():
            batched = sel.count_at_levels(g, levels)
            looped = [sel.count_at(g, lv) for lv in levels]
            assert batched.tolist() == looped, type(sel).__name__

    def test_zero_gradient_all_zero_counts(self):
        levels = np.array([1.0, 50.0, 100.0])
        for sel in self._selectors():
            assert sel.count_at_levels(np.zeros(20), levels).tolist() == [0, 0, 0]

    def test_monotone_in_level(self, grad):
        levels = np.linspace(0.85, 100.0, 200)
        for sel in self._selectors():
            counts = sel.count_at_levels(grad, levels)
            assert (np.diff(counts) >= 0).all(), type(sel).__name__

    def test_invalid_levels_rejected(self, grad):
        for sel in self._selectors():
            with pytest.raises(ValueError):
                sel.count_at_levels(grad, np.array([0.0, 50.0]))


class TestBatchedGenericFit:
    def test_matches_bisection_within_grid_step(self, rng):
        grads = {"a": rng.normal(size=2000), "b": rng.normal(size=333)}
        budgets = [150.0, 900.0, 4_000.0, 12_000.0, 1e9]
        for sel in (TopKSelector(), ThresholdSelector(base_threshold=0.1)):
            levels, _ = fit_levels_to_budgets(sel, grads, budgets)
            step = (100.0 - 0.85) / 4096
            for budget, level in zip(budgets, levels):
                bisected = fit_level_to_budget(sel, grads, budget)
                assert abs(float(level) - bisected) <= step + 0.01 + 1e-9

    def test_exactly_feasible_above_floor(self, rng):
        grads = {"w": rng.normal(size=5000)}
        sel = TopKSelector()
        budgets = [100.0, 2_500.0, 20_000.0]
        levels, _ = fit_levels_to_budgets(sel, grads, budgets)
        for budget, level in zip(budgets, levels):
            if level > 0.85:
                cnt = sel.count_at(grads["w"], float(level))
                assert 24 + 8 * cnt <= budget

    def test_equal_grid_indices_mean_equal_levels(self, rng):
        grads = {"w": rng.normal(size=1000)}
        levels, idx = fit_levels_to_budgets(
            TopKSelector(), grads, [500.0, 501.0, 9e9]
        )
        assert idx[0] == idx[1] and levels[0] == levels[1]
        assert levels[2] == 100.0

    def test_invalid_bounds(self, rng):
        with pytest.raises(ValueError):
            fit_levels_to_budgets(
                TopKSelector(), {"w": rng.normal(size=10)}, [1.0], level_min=0.0
            )

    def test_planner_uses_batched_path_for_vectorized_selector(self, rng):
        planner = TransmissionPlanner(MaxNConfig(selector="topk"))
        grads = {"w": rng.normal(size=3000)}
        prof = Profiler()
        with activate(prof):
            plans = planner.plan(grads, {1: 50.0, 2: 50.0, 3: 0.5}, 0.01)
        assert "maxn/fit_levels_to_budgets" in prof.totals()
        assert "maxn/fit_level_to_budget" not in prof.totals()
        # equal budgets share one payload object on the generic path too
        assert plans[1][1] is plans[2][1]
        assert plans[1][1] is not plans[3][1]

    def test_planner_falls_back_for_unvectorized_selector(self, rng):
        planner = TransmissionPlanner(MaxNConfig(), selector=_LoopedTopK())
        grads = {"w": rng.normal(size=3000)}
        prof = Profiler()
        with activate(prof):
            plans = planner.plan(grads, {1: 50.0, 2: 50.0, 3: 0.5}, 0.01)
        calls, _ = prof.totals()["maxn/fit_level_to_budget"]
        assert calls == 2  # one per *distinct* budget, cached by value
        assert "maxn/fit_levels_to_budgets" not in prof.totals()
        assert plans[1][1] is plans[2][1]

    def test_fallback_agrees_with_batched_planner(self, rng):
        grads = {"w": rng.normal(size=3000)}
        bws = {1: 20.0, 2: 1.0}
        batched = TransmissionPlanner(MaxNConfig(selector="topk")).plan(
            grads, bws, 0.01
        )
        fallback = TransmissionPlanner(
            MaxNConfig(), selector=_LoopedTopK()
        ).plan(grads, bws, 0.01)
        step = (100.0 - 0.85) / 4096
        for dst in bws:
            assert abs(batched[dst][0] - fallback[dst][0]) <= step + 0.01 + 1e-9
