"""Tests for the GBS controller's two-phase schedule."""

import pytest

from repro.core.config import GbsConfig
from repro.core.gbs_controller import GbsController


def make(train_size=60_000, initial=192, **kw):
    return GbsController(GbsConfig(**kw), initial_gbs=initial, train_size=train_size)


class TestPhases:
    def test_warmup_is_arithmetic(self):
        c = make(warmup_increment=32, start_epoch=0.0)
        assert c.phase == GbsController.WARMUP
        assert c.maybe_update(1.0) == 224
        assert c.maybe_update(1.0) == 256

    def test_warmup_to_speedup_at_one_percent(self):
        c = make(warmup_increment=100, start_epoch=0.0)
        # 1% of 60k = 600
        while c.phase == GbsController.WARMUP:
            c.maybe_update(5.0)
        assert c.gbs > 600
        assert c.phase == GbsController.SPEEDUP

    def test_speedup_is_geometric(self):
        c = make(initial=601, start_epoch=0.0, speedup_factor=2.0)
        assert c.phase == GbsController.SPEEDUP
        assert c.maybe_update(5.0) == 1202
        assert c.maybe_update(5.0) == 2404

    def test_stops_above_ten_percent(self):
        c = make(initial=601, start_epoch=0.0, speedup_factor=2.0)
        for _ in range(20):
            c.maybe_update(10.0)
        assert c.phase == GbsController.DONE
        # one final growth step may exceed the cap, then growth stops
        assert c.gbs <= 2 * 0.10 * 60_000
        frozen = c.gbs
        assert c.maybe_update(50.0) == frozen

    def test_initial_gbs_past_caps_skips_phases(self):
        c = make(initial=7000, start_epoch=0.0)
        assert c.phase == GbsController.DONE


class TestGating:
    def test_no_growth_before_start_epoch(self):
        c = make(start_epoch=2.0)
        assert c.maybe_update(0.5) == 192
        assert c.maybe_update(1.99) == 192
        assert c.maybe_update(2.0) > 192

    def test_disabled_controller_never_grows(self):
        c = make(enabled=False, start_epoch=0.0)
        for _ in range(10):
            assert c.maybe_update(100.0) == 192

    def test_min_epochs_between_updates(self):
        c = make(start_epoch=0.0, min_epochs_between_updates=1.0)
        g1 = c.maybe_update(0.0)
        assert g1 > 192
        assert c.maybe_update(0.5) == g1  # too soon
        assert c.maybe_update(1.0) > g1

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            make(initial=0)
        with pytest.raises(ValueError):
            GbsController(GbsConfig(), initial_gbs=10, train_size=0)
