"""Tests for Max N selection and the transmission-speed-assurance fit."""

import numpy as np
import pytest

from repro.cluster.messages import sparse_payload_bytes
from repro.core.config import MaxNConfig
from repro.core.maxn import select_max_n, select_payload, selection_count
from repro.core.transmission import (
    GradientHistograms,
    TransmissionPlanner,
    fit_n_to_budget,
)
from repro.obs.profile import Profiler, activate


class TestSelectMaxN:
    def test_n_100_selects_everything(self):
        g = np.array([0.0, -1.0, 0.5, 2.0])
        idx, vals = select_max_n(g, 100.0)
        assert idx.tolist() == [0, 1, 2, 3]
        np.testing.assert_array_equal(vals, g)

    def test_tiny_n_selects_only_the_max(self):
        g = np.array([0.1, -5.0, 0.5, 2.0])
        idx, vals = select_max_n(g, 0.001)
        assert idx.tolist() == [1]
        assert vals.tolist() == [-5.0]

    def test_band_semantics(self):
        # max=10; N=30 keeps |g| >= 7.
        g = np.array([10.0, -8.0, 7.0, 6.99, -1.0])
        idx, _ = select_max_n(g, 30.0)
        assert idx.tolist() == [0, 1, 2]

    def test_values_match_indices(self, rng):
        g = rng.normal(size=(13, 7))
        idx, vals = select_max_n(g, 40.0)
        np.testing.assert_array_equal(vals, g.reshape(-1)[idx])

    def test_zero_gradient_sends_nothing(self):
        idx, vals = select_max_n(np.zeros(10), 50.0)
        assert idx.size == 0 and vals.size == 0

    def test_n_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            select_max_n(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            select_max_n(np.ones(3), 101.0)

    def test_monotone_in_n(self, rng):
        g = rng.normal(size=500)
        sizes = [select_max_n(g, n)[0].size for n in (1, 10, 50, 90, 100)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 500

    def test_selection_count_matches_select(self, rng):
        g = rng.normal(size=300)
        mags = np.abs(g)
        sorted_norm = np.sort(mags / mags.max())
        for n in (0.5, 5.0, 37.0, 100.0):
            assert selection_count(sorted_norm, n) == select_max_n(g, n)[0].size


class TestSelectPayload:
    def test_per_variable_thresholds(self, rng):
        # Each variable is filtered against its own max: a variable of
        # small gradients still contributes entries.
        grads = {
            "big": np.array([100.0, 1.0, 1.0]),
            "small": np.array([0.001, 0.0009, 0.00001]),
        }
        payload = select_payload(grads, 20.0)
        assert payload["big"][0].tolist() == [0]
        assert payload["small"][0].tolist() == [0, 1]

    def test_drops_empty_variables(self):
        payload = select_payload({"z": np.zeros(5), "g": np.ones(5)}, 50.0)
        assert "z" not in payload and "g" in payload


class TestFitNToBudget:
    def test_huge_budget_returns_n_max(self, rng):
        grads = {"w": rng.normal(size=100)}
        assert fit_n_to_budget(grads, 1e9) == 100.0

    def test_tiny_budget_returns_floor(self, rng):
        grads = {"w": rng.normal(size=1000)}
        assert fit_n_to_budget(grads, 1.0) == 0.85

    def test_result_payload_fits_budget(self, rng):
        grads = {"a": rng.normal(size=4000), "b": rng.normal(size=123)}
        for budget in (500, 5_000, 20_000):
            n = fit_n_to_budget(grads, budget)
            if n > 0.85:
                size = sparse_payload_bytes(select_payload(grads, n))
                assert size <= budget

    def test_larger_budget_never_smaller_n(self, rng):
        grads = {"w": rng.normal(size=2000)}
        ns = [fit_n_to_budget(grads, b) for b in (100, 1000, 4000, 16000)]
        assert ns == sorted(ns)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            fit_n_to_budget({"w": np.ones(3)}, 100, n_min=0.0)


class TestTransmissionPlanner:
    def test_budget_formula(self):
        planner = TransmissionPlanner(MaxNConfig())
        # 8 Mbps for 1 s = 1 MB
        assert planner.budget_bytes(8.0, 1.0) == pytest.approx(1e6)

    def test_slow_link_gets_fewer_entries(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=50_000).astype(np.float32)}
        plans = planner.plan(grads, {1: 50.0, 2: 1.0}, iter_time_s=0.01)
        n_fast, p_fast = plans[1]
        n_slow, p_slow = plans[2]
        assert n_fast >= n_slow
        assert p_fast["w"][0].size >= p_slow["w"][0].size

    def test_fixed_n_bypasses_budget(self, rng):
        planner = TransmissionPlanner(MaxNConfig(fixed_n=10.0))
        grads = {"w": rng.normal(size=1000)}
        plans = planner.plan(grads, {1: 0.001, 2: 1000.0}, iter_time_s=1.0)
        assert plans[1][0] == 10.0 and plans[2][0] == 10.0
        assert plans[1][1]["w"][0].size == plans[2][1]["w"][0].size

    def test_equal_bandwidths_share_payload_object(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=1000)}
        plans = planner.plan(grads, {1: 10.0, 2: 10.0}, iter_time_s=0.5)
        assert plans[1][1] is plans[2][1]

    def test_invalid_budget_args(self):
        planner = TransmissionPlanner(MaxNConfig())
        with pytest.raises(ValueError):
            planner.budget_bytes(0.0, 1.0)
        with pytest.raises(ValueError):
            planner.budget_bytes(10.0, 0.0)

    def test_plan_rejects_nonpositive_bandwidth(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=100)}
        with pytest.raises(ValueError):
            planner.plan(grads, {1: 10.0, 2: 0.0}, iter_time_s=1.0)
        with pytest.raises(ValueError):
            planner.plan(grads, {1: -5.0}, iter_time_s=1.0)


class TestPlannerPayloadCache:
    def test_same_bin_different_bandwidths_share_payload(self, rng):
        """Distinct bandwidths whose budgets resolve to the same
        histogram bin ship the *same object* — the cache keys on the
        resolved bin, not the bandwidth value."""
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=50_000)}
        iter_time = 0.05
        bws = {1: 10.0, 2: 10.001}
        # Precondition: the two budgets really land in the same bin.
        hist = GradientHistograms(grads)
        budgets = [planner.budget_bytes(bw, iter_time) for bw in bws.values()]
        assert budgets[0] != budgets[1]
        _, edges = hist.fit_many(budgets)
        assert edges[0] == edges[1]

        plans = planner.plan(grads, bws, iter_time_s=iter_time)
        assert plans[1][0] == plans[2][0]
        assert plans[1][1] is plans[2][1]

    def test_distinct_bins_get_distinct_payloads(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=50_000)}
        plans = planner.plan(grads, {1: 50.0, 2: 1.0}, iter_time_s=0.01)
        assert plans[1][1] is not plans[2][1]

    def test_fixed_n_bypasses_cache_and_budget(self, rng):
        """Fixed-N studies never price budgets (zero bandwidth is fine)
        and build one payload object per destination."""
        planner = TransmissionPlanner(MaxNConfig(fixed_n=10.0))
        grads = {"w": rng.normal(size=1000)}
        plans = planner.plan(grads, {1: 0.0, 2: 10.0}, iter_time_s=1.0)
        assert plans[1][0] == 10.0 and plans[2][0] == 10.0
        # same content, but no sharing: the cache is bypassed entirely
        assert plans[1][1] is not plans[2][1]
        np.testing.assert_array_equal(
            plans[1][1]["w"][0], plans[2][1]["w"][0]
        )


class TestPlannerEpoch:
    def _profiled_planner(self):
        return TransmissionPlanner(MaxNConfig()), Profiler()

    def test_same_epoch_reuses_histograms(self, rng):
        planner, prof = self._profiled_planner()
        grads = {"w": rng.normal(size=1000)}
        with activate(prof):
            planner.plan(grads, {1: 10.0}, 0.5, plan_epoch=(0, 7))
            planner.plan(grads, {2: 3.0}, 0.5, plan_epoch=(0, 7))
        calls, _ = prof.totals()["maxn/grad_view"]
        assert calls == 1

    def test_new_epoch_rebuilds(self, rng):
        planner, prof = self._profiled_planner()
        grads = {"w": rng.normal(size=1000)}
        with activate(prof):
            planner.plan(grads, {1: 10.0}, 0.5, plan_epoch=(0, 7))
            planner.plan(grads, {1: 10.0}, 0.5, plan_epoch=(0, 8))
        calls, _ = prof.totals()["maxn/grad_view"]
        assert calls == 2

    def test_no_epoch_never_caches(self, rng):
        planner, prof = self._profiled_planner()
        grads = {"w": rng.normal(size=1000)}
        with activate(prof):
            planner.plan(grads, {1: 10.0}, 0.5)
            planner.plan(grads, {1: 10.0}, 0.5)
        calls, _ = prof.totals()["maxn/grad_view"]
        assert calls == 2

    def test_same_epoch_different_grads_raises(self, rng):
        planner, _ = self._profiled_planner()
        g1 = {"w": rng.normal(size=100)}
        g2 = {"w": rng.normal(size=100)}
        planner.plan(g1, {1: 10.0}, 0.5, plan_epoch=(0, 7))
        with pytest.raises(ValueError, match="plan_epoch"):
            planner.plan(g2, {1: 10.0}, 0.5, plan_epoch=(0, 7))

    def test_epoch_reuse_matches_fresh_plan(self, rng):
        """A reused-histogram plan is indistinguishable from a fresh one."""
        grads = {"w": rng.normal(size=2000)}
        planner = TransmissionPlanner(MaxNConfig())
        planner.plan(grads, {1: 10.0}, 0.5, plan_epoch=(0, 1))
        reused = planner.plan(grads, {1: 4.0, 2: 9.0}, 0.5, plan_epoch=(0, 1))
        fresh = TransmissionPlanner(MaxNConfig()).plan(
            grads, {1: 4.0, 2: 9.0}, 0.5
        )
        for dst in (1, 2):
            assert reused[dst][0] == fresh[dst][0]
            np.testing.assert_array_equal(
                reused[dst][1]["w"][0], fresh[dst][1]["w"][0]
            )


class TestGradientHistograms:
    def test_bytes_at_is_an_upper_bound(self, rng):
        grads = {"a": rng.normal(size=3000), "b": rng.normal(size=77)}
        hist = GradientHistograms(grads)
        for n in (0.85, 5.0, 37.0, 80.0, 100.0):
            exact = sparse_payload_bytes(select_payload(grads, n))
            assert hist.bytes_at(n) >= exact

    def test_select_payload_matches_maxn(self, rng):
        grads = {
            "a": rng.normal(size=500).astype(np.float32),
            "z": np.zeros(10),
        }
        hist = GradientHistograms(grads)
        for n in (0.9, 20.0, 100.0):
            got = hist.select_payload(n)
            want = select_payload(grads, n)
            assert got.keys() == want.keys()
            for name in want:
                np.testing.assert_array_equal(got[name][0], want[name][0])
                np.testing.assert_array_equal(got[name][1], want[name][1])

    def test_fit_many_matches_single_fits(self, rng):
        grads = {"w": rng.normal(size=10_000)}
        hist = GradientHistograms(grads)
        budgets = [50.0, 1e3, 2e4, 7e4, 1e9]
        chosen, _ = hist.fit_many(budgets)
        for budget, n in zip(budgets, chosen):
            assert float(n) == hist.fit(budget)

    def test_fit_many_invalid_bounds(self, rng):
        hist = GradientHistograms({"w": rng.normal(size=10)})
        with pytest.raises(ValueError):
            hist.fit_many([100.0], n_min=0.0)

    def test_all_zero_gradients(self):
        hist = GradientHistograms({"z": np.zeros(100)})
        assert hist.bytes_at(100.0) == 0
        assert hist.fit(1.0) == 100.0
        assert hist.select_payload(50.0) == {}

    def test_zero_variable_alongside_live_ones(self, rng):
        grads = {"w": rng.normal(size=500), "z": np.zeros(300)}
        hist = GradientHistograms(grads)
        # the zero variable contributes no bytes at any level
        only_live = GradientHistograms({"w": grads["w"]})
        for n in (0.85, 10.0, 100.0):
            assert hist.bytes_at(n) == only_live.bytes_at(n)
        assert "z" not in hist.select_payload(100.0)

    def test_exact_bytes_matches_encoded_payload(self, rng):
        grads = {"a": rng.normal(size=2000), "b": rng.normal(size=55)}
        hist = GradientHistograms(grads)
        for n in (0.9, 12.0, 64.0, 100.0):
            assert hist.exact_bytes_at(n) == sparse_payload_bytes(
                select_payload(grads, n)
            )

    def test_mixed_dtypes_fall_back_to_per_variable(self, rng):
        grads = {
            "a": rng.normal(size=400).astype(np.float32),
            "b": rng.normal(size=200),  # float64
        }
        hist = GradientHistograms(grads)
        assert not hist.supports_exact_counts
        for n in (5.0, 50.0, 100.0):
            assert hist.exact_bytes_at(n) == sparse_payload_bytes(
                select_payload(grads, n)
            )
            got = hist.select_payload(n)
            want = select_payload(grads, n)
            assert got.keys() == want.keys()
            for name in want:
                np.testing.assert_array_equal(got[name][0], want[name][0])


class TestFitWarm:
    def test_agrees_with_batched_fit(self, rng):
        grads = {"w": rng.normal(size=8000)}
        hist = GradientHistograms(grads)
        for budget in (100.0, 3_000.0, 20_000.0, 1e9):
            n_cold = hist.fit(budget)
            _, edges = hist.fit_many([budget])
            warm = hist.fit_warm(budget, int(edges[0]))
            assert warm is not None
            n_warm, edge_warm = warm
            # exact counts can sit one edge above the overcounting
            # histogram, never below it
            assert n_cold - 1e-9 <= n_warm <= n_cold + 100.0 / 4096 + 1e-9
            if n_warm > 0.85:
                assert hist.exact_bytes_at(n_warm) <= budget

    def test_distant_guess_gives_up(self, rng):
        grads = {"w": rng.normal(size=8000)}
        hist = GradientHistograms(grads)
        budget = 3_000.0
        _, edges = hist.fit_many([budget])
        distant = int(edges[0]) + 500
        assert hist.fit_warm(budget, distant, max_probes=3) is None

    def test_unbatchable_histograms_decline(self, rng):
        mixed = {
            "a": rng.normal(size=50).astype(np.float32),
            "b": rng.normal(size=50),
        }
        hist = GradientHistograms(mixed)
        assert hist.fit_warm(1000.0, 2000) is None

    def test_planner_warm_starts_across_epochs(self, rng):
        """Second iteration with uniform bandwidths resolves by exact
        probes: no histogram fold, one warm fit."""
        planner = TransmissionPlanner(MaxNConfig())
        base = rng.normal(size=5000)
        prof = Profiler()
        with activate(prof):
            planner.plan({"w": base}, {1: 5.0, 2: 5.0}, 0.05, plan_epoch=(0, 1))
            plans = planner.plan(
                {"w": base + rng.normal(size=5000) * 0.01},
                {1: 5.0, 2: 5.0},
                0.05,
                plan_epoch=(0, 2),
            )
        hist_calls, _ = prof.totals()["maxn/histograms"]
        assert hist_calls == 1  # first iteration only
        assert "maxn/fit_warm" in prof.totals()
        assert plans[1][1] is plans[2][1]
        # the warm-chosen payload still fits the budget exactly
        n = plans[1][0]
        if n > 0.85:
            budget = planner.budget_bytes(5.0, 0.05)
            assert sparse_payload_bytes(plans[1][1]) <= budget
