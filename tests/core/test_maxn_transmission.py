"""Tests for Max N selection and the transmission-speed-assurance fit."""

import numpy as np
import pytest

from repro.cluster.messages import sparse_payload_bytes
from repro.core.config import MaxNConfig
from repro.core.maxn import select_max_n, select_payload, selection_count
from repro.core.transmission import TransmissionPlanner, fit_n_to_budget


class TestSelectMaxN:
    def test_n_100_selects_everything(self):
        g = np.array([0.0, -1.0, 0.5, 2.0])
        idx, vals = select_max_n(g, 100.0)
        assert idx.tolist() == [0, 1, 2, 3]
        np.testing.assert_array_equal(vals, g)

    def test_tiny_n_selects_only_the_max(self):
        g = np.array([0.1, -5.0, 0.5, 2.0])
        idx, vals = select_max_n(g, 0.001)
        assert idx.tolist() == [1]
        assert vals.tolist() == [-5.0]

    def test_band_semantics(self):
        # max=10; N=30 keeps |g| >= 7.
        g = np.array([10.0, -8.0, 7.0, 6.99, -1.0])
        idx, _ = select_max_n(g, 30.0)
        assert idx.tolist() == [0, 1, 2]

    def test_values_match_indices(self, rng):
        g = rng.normal(size=(13, 7))
        idx, vals = select_max_n(g, 40.0)
        np.testing.assert_array_equal(vals, g.reshape(-1)[idx])

    def test_zero_gradient_sends_nothing(self):
        idx, vals = select_max_n(np.zeros(10), 50.0)
        assert idx.size == 0 and vals.size == 0

    def test_n_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            select_max_n(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            select_max_n(np.ones(3), 101.0)

    def test_monotone_in_n(self, rng):
        g = rng.normal(size=500)
        sizes = [select_max_n(g, n)[0].size for n in (1, 10, 50, 90, 100)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 500

    def test_selection_count_matches_select(self, rng):
        g = rng.normal(size=300)
        mags = np.abs(g)
        sorted_norm = np.sort(mags / mags.max())
        for n in (0.5, 5.0, 37.0, 100.0):
            assert selection_count(sorted_norm, n) == select_max_n(g, n)[0].size


class TestSelectPayload:
    def test_per_variable_thresholds(self, rng):
        # Each variable is filtered against its own max: a variable of
        # small gradients still contributes entries.
        grads = {
            "big": np.array([100.0, 1.0, 1.0]),
            "small": np.array([0.001, 0.0009, 0.00001]),
        }
        payload = select_payload(grads, 20.0)
        assert payload["big"][0].tolist() == [0]
        assert payload["small"][0].tolist() == [0, 1]

    def test_drops_empty_variables(self):
        payload = select_payload({"z": np.zeros(5), "g": np.ones(5)}, 50.0)
        assert "z" not in payload and "g" in payload


class TestFitNToBudget:
    def test_huge_budget_returns_n_max(self, rng):
        grads = {"w": rng.normal(size=100)}
        assert fit_n_to_budget(grads, 1e9) == 100.0

    def test_tiny_budget_returns_floor(self, rng):
        grads = {"w": rng.normal(size=1000)}
        assert fit_n_to_budget(grads, 1.0) == 0.85

    def test_result_payload_fits_budget(self, rng):
        grads = {"a": rng.normal(size=4000), "b": rng.normal(size=123)}
        for budget in (500, 5_000, 20_000):
            n = fit_n_to_budget(grads, budget)
            if n > 0.85:
                size = sparse_payload_bytes(select_payload(grads, n))
                assert size <= budget

    def test_larger_budget_never_smaller_n(self, rng):
        grads = {"w": rng.normal(size=2000)}
        ns = [fit_n_to_budget(grads, b) for b in (100, 1000, 4000, 16000)]
        assert ns == sorted(ns)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            fit_n_to_budget({"w": np.ones(3)}, 100, n_min=0.0)


class TestTransmissionPlanner:
    def test_budget_formula(self):
        planner = TransmissionPlanner(MaxNConfig())
        # 8 Mbps for 1 s = 1 MB
        assert planner.budget_bytes(8.0, 1.0) == pytest.approx(1e6)

    def test_slow_link_gets_fewer_entries(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=50_000).astype(np.float32)}
        plans = planner.plan(grads, {1: 50.0, 2: 1.0}, iter_time_s=0.01)
        n_fast, p_fast = plans[1]
        n_slow, p_slow = plans[2]
        assert n_fast >= n_slow
        assert p_fast["w"][0].size >= p_slow["w"][0].size

    def test_fixed_n_bypasses_budget(self, rng):
        planner = TransmissionPlanner(MaxNConfig(fixed_n=10.0))
        grads = {"w": rng.normal(size=1000)}
        plans = planner.plan(grads, {1: 0.001, 2: 1000.0}, iter_time_s=1.0)
        assert plans[1][0] == 10.0 and plans[2][0] == 10.0
        assert plans[1][1]["w"][0].size == plans[2][1]["w"][0].size

    def test_equal_bandwidths_share_payload_object(self, rng):
        planner = TransmissionPlanner(MaxNConfig())
        grads = {"w": rng.normal(size=1000)}
        plans = planner.plan(grads, {1: 10.0, 2: 10.0}, iter_time_s=0.5)
        assert plans[1][1] is plans[2][1]

    def test_invalid_budget_args(self):
        planner = TransmissionPlanner(MaxNConfig())
        with pytest.raises(ValueError):
            planner.budget_bytes(0.0, 1.0)
        with pytest.raises(ValueError):
            planner.budget_bytes(10.0, 0.0)
