"""Focused tests for Worker module behaviour inside a live engine."""

import numpy as np
import pytest

from repro.cluster.messages import (
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.core.config import LbsConfig
from repro.core.engine import TrainingEngine


@pytest.fixture
def engine(fast_config, tiny_topology):
    return TrainingEngine(fast_config, tiny_topology, seed=0)


class TestBatchSizeModules:
    def test_profiling_populates_rcp_table_and_costs_time(self, engine):
        w = engine.workers[0]
        cost = w.run_profiling()
        assert cost > 0
        assert 0 in w.rcp_table
        assert w.rcp_table[0] > 1

    def test_rcp_share_updates_peer_table(self, engine):
        w = engine.workers[1]
        w.rcp_table[1] = 100.0
        w.on_rcp_share(RcpShareMessage(sender=0, rcp=300.0))
        assert w.rcp_table[0] == 300.0

    def test_recompute_lbs_uses_eq5(self, engine):
        w = engine.workers[0]
        w.gbs = 60
        w.rcp_table = {0: 30.0, 1: 20.0, 2: 10.0}
        w.recompute_lbs()
        assert w.lbs == 30  # 60 * 30/60

    def test_set_gbs_propagates_to_lbs(self, engine):
        w = engine.workers[0]
        w.rcp_table = {0: 1.0, 1: 1.0, 2: 1.0}
        w.set_gbs(90)
        assert w.lbs == 30

    def test_set_gbs_rejects_too_small(self, engine):
        with pytest.raises(ValueError):
            engine.workers[0].set_gbs(2)

    def test_even_split_when_lbs_disabled(self, fast_config, tiny_topology):
        cfg = fast_config.with_(lbs=LbsConfig(enabled=False))
        engine = TrainingEngine(cfg, tiny_topology, seed=0)
        w = engine.workers[0]
        w.set_gbs(90)
        assert w.lbs == 30


class TestModelUpdateModule:
    def test_dense_gradient_applied_with_db_weight(self, engine):
        w = engine.workers[0]
        w.lbs = 10
        name = w.model.variable_names[0]
        before = w.model.get_variable(name).copy()
        g = {name: np.ones_like(before)}
        msg = GradientMessage(sender=1, iteration=1, lbs=20, dense=g)
        w.on_gradient_message(msg)
        # coeff = db(20,10)/n = 2/3; lr = 0.1
        expected = before - 0.1 * (2.0 / 3.0)
        np.testing.assert_allclose(w.model.get_variable(name), expected, rtol=1e-5)

    def test_sparse_gradient_applied(self, engine):
        w = engine.workers[0]
        w.lbs = 8
        name = w.model.variable_names[0]
        before = w.model.get_variable(name).copy()
        idx = np.array([0], dtype=np.int64)
        vals = np.array([2.0], dtype=np.float32)
        msg = GradientMessage(sender=2, iteration=1, lbs=8, sparse={name: (idx, vals)})
        w.on_gradient_message(msg)
        # db = 1, coeff = 1/3
        assert w.model.get_variable(name).reshape(-1)[0] == pytest.approx(
            before.reshape(-1)[0] - 0.1 * 2.0 / 3.0, rel=1e-5
        )

    def test_received_iteration_tracking_monotone(self, engine):
        w = engine.workers[0]
        for it in (3, 1, 5):
            msg = GradientMessage(sender=1, iteration=it, lbs=8, sparse={})
            w.on_gradient_message(msg)
        assert w.sync_state.received_from[1] == 5

    def test_message_arrival_wakes_waiting_worker(self, fast_config, tiny_topology):
        cfg = fast_config.with_(system="baseline")
        engine = TrainingEngine(cfg, tiny_topology, seed=0)
        w = engine.workers[0]
        w.iteration = 1
        w.sync_state.iteration = 1
        w.waiting = True
        # lockstep needs iteration-0 gradients from both peers
        for peer in (1, 2):
            w.on_gradient_message(
                GradientMessage(sender=peer, iteration=1, lbs=8, sparse={})
            )
        assert w.computing  # it started the next iteration


class TestModelSynchronizationModule:
    def test_loss_share_recorded(self, engine):
        w = engine.workers[0]
        w.on_loss_share(LossShareMessage(sender=2, iteration=5, avg_loss=0.42))
        assert w.dkt.shared_losses[2] == 0.42

    def test_dkt_request_ships_weight_snapshot(self, engine):
        w0, w1 = engine.workers[0], engine.workers[1]
        w0.on_dkt_request(DktRequestMessage(sender=1, iteration=3))
        # a weight message is now in flight on link 0->1
        engine.clock.run_until(engine.clock.now + 30.0)
        assert w1.dkt.merges_applied == 1

    def test_weight_message_merges_toward_best(self, engine):
        w = engine.workers[0]
        name = w.model.variable_names[0]
        local_before = w.model.get_variable(name).copy()
        best = {n: np.zeros_like(v) for n, v in w.model.variables().items()}
        w.on_weight_message(WeightMessage(sender=1, iteration=9, weights=best))
        merged = w.model.get_variable(name)
        # lambda = 0.75 pulls 75% toward zero
        np.testing.assert_allclose(merged, 0.25 * local_before, rtol=1e-5)

    def test_snapshot_is_detached_from_live_model(self, engine):
        w0 = engine.workers[0]
        w0.on_dkt_request(DktRequestMessage(sender=1, iteration=1))
        name = w0.model.variable_names[0]
        # mutating the live model after the snapshot must not affect the
        # in-flight message; mutate and deliver.
        w0.model.get_variable(name)[...] = 123.0
        engine.clock.run_until(engine.clock.now + 30.0)
        w1 = engine.workers[1]
        assert not np.allclose(w1.model.get_variable(name), 123.0 * 0.75)


class TestIterationTimeEstimate:
    def test_default_before_measurement(self, engine):
        assert engine.workers[0].iter_time_estimate() == pytest.approx(1.0)

    def test_ema_after_iterations(self, fast_config, tiny_topology):
        engine = TrainingEngine(fast_config, tiny_topology, seed=0)
        engine.run(10.0)
        w = engine.workers[0]
        est = w.iter_time_estimate()
        assert 0.001 < est < 1.0
