"""Tests for direct knowledge transfer."""

import numpy as np
import pytest

from repro.core.config import DktConfig
from repro.core.dkt import DktState, merge_weights


class TestMergeWeights:
    def test_lambda_zero_is_noop(self, rng):
        local = {"w": rng.normal(size=4).astype(np.float32)}
        snapshot = local["w"].copy()
        merge_weights(local, {"w": rng.normal(size=4).astype(np.float32)}, 0.0)
        np.testing.assert_array_equal(local["w"], snapshot)

    def test_lambda_one_replaces(self, rng):
        local = {"w": rng.normal(size=4).astype(np.float32)}
        best = {"w": rng.normal(size=4).astype(np.float32)}
        merge_weights(local, best, 1.0)
        np.testing.assert_allclose(local["w"], best["w"], rtol=1e-6)

    def test_partial_merge_formula(self):
        local = {"w": np.array([4.0])}
        best = {"w": np.array([0.0])}
        merge_weights(local, best, 0.75)
        # w - 0.75*(w - w_best) = 4 - 3 = 1
        np.testing.assert_allclose(local["w"], [1.0])

    def test_merge_is_in_place(self):
        arr = np.array([2.0])
        local = {"w": arr}
        merge_weights(local, {"w": np.array([0.0])}, 0.5)
        assert arr[0] == 1.0  # the original array was mutated

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_weights({"w": np.ones(3)}, {"w": np.ones(4)}, 0.5)

    def test_lambda_bounds(self):
        with pytest.raises(ValueError):
            merge_weights({"w": np.ones(1)}, {"w": np.ones(1)}, 1.5)


class TestDktState:
    def make(self, **kw):
        return DktState(DktConfig(**kw), worker=0, n_workers=3)

    def test_avg_loss_over_window(self):
        st = self.make(loss_window=3)
        for loss in (1.0, 2.0, 3.0, 4.0):
            st.record_loss(loss)
        assert st.avg_loss() == pytest.approx(3.0)  # last 3: 2,3,4

    def test_avg_loss_empty(self):
        assert self.make().avg_loss() is None

    def test_should_share_period(self):
        st = self.make(period_iters=10)
        st.record_loss(1.0)
        assert not st.should_share(5)
        assert st.should_share(10)
        assert not st.should_share(11)
        assert st.should_share(20)

    def test_should_share_needs_losses(self):
        st = self.make(period_iters=10)
        assert not st.should_share(10)

    def test_should_share_disabled(self):
        st = self.make(enabled=False, period_iters=10)
        st.record_loss(1.0)
        assert not st.should_share(10)

    def test_early_frequent_phase(self):
        st = self.make(period_iters=100, early_period_iters=10, early_until_iter=50)
        st.record_loss(1.0)
        assert st.should_share(10)
        assert st.should_share(40)
        assert not st.should_share(60)   # early phase over; period now 100
        assert st.should_share(100)

    def test_best_worker_includes_self(self):
        st = self.make()
        st.record_loss(0.5)
        st.on_loss_share(1, 0.9)
        st.on_loss_share(2, 0.7)
        assert st.best_worker() == 0

    def test_pull_target_is_best_peer(self):
        st = self.make()
        st.record_loss(0.9)
        st.on_loss_share(1, 0.4)
        st.on_loss_share(2, 0.7)
        assert st.pull_target() == 1

    def test_no_pull_when_self_is_best(self):
        st = self.make()
        st.record_loss(0.1)
        st.on_loss_share(1, 0.4)
        assert st.pull_target() is None

    def test_no_pull_without_information(self):
        assert self.make().pull_target() is None

    def test_worst_policy_only_worst_pulls(self):
        st = self.make(whom="worst")
        st.record_loss(0.5)               # middle
        st.on_loss_share(1, 0.4)          # best
        st.on_loss_share(2, 0.9)          # worst
        assert st.pull_target() is None   # we are not the worst

        st2 = self.make(whom="worst")
        st2.record_loss(0.9)              # we are the worst
        st2.on_loss_share(1, 0.4)
        st2.on_loss_share(2, 0.5)
        assert st2.pull_target() == 1

    def test_tie_breaks_to_lowest_id(self):
        st = self.make()
        st.on_loss_share(2, 0.5)
        st.on_loss_share(1, 0.5)
        assert st.best_worker() == 1

    def test_disabled_never_pulls(self):
        st = self.make(enabled=False)
        st.record_loss(0.9)
        st.on_loss_share(1, 0.1)
        assert st.pull_target() is None
