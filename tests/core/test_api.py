"""Tests for the framework plugin API layer."""

import numpy as np
import pytest

from repro.core.api import ExchangeStrategy, PartialGradients
from repro.core.sync import AsyncPolicy, LockstepPolicy, SyncState


class TestPartialGradients:
    def test_sparse_kind(self):
        pg = PartialGradients(kind="sparse", payload={"w": (np.arange(2), np.ones(2))})
        assert pg.chosen_n is None

    def test_dense_kind_with_n(self):
        pg = PartialGradients(kind="dense", payload={"w": np.zeros(3)}, chosen_n=42.0)
        assert pg.chosen_n == 42.0

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            PartialGradients(kind="compressed", payload={})


class TestExchangeStrategyBase:
    def test_generate_is_abstract(self):
        s = ExchangeStrategy(AsyncPolicy())
        with pytest.raises(NotImplementedError):
            s.generate_partial_gradients(None, {})

    def test_synch_training_delegates_to_policy(self):
        s = ExchangeStrategy(LockstepPolicy())
        blocked = SyncState(iteration=5, received_from={1: 0})
        open_ = SyncState(iteration=5, received_from={1: 4})
        assert not s.synch_training(None, blocked)
        assert s.synch_training(None, open_)

    def test_setup_is_optional_noop(self):
        ExchangeStrategy(AsyncPolicy()).setup(None)  # must not raise

    def test_custom_subclass_minimal_surface(self):
        """The Table 1 story: a working system is one method."""

        class Everything(ExchangeStrategy):
            def generate_partial_gradients(self, ctx, grads):
                return {
                    dst: PartialGradients(kind="dense", payload=dict(grads))
                    for dst in ctx.peers
                }

        class Ctx:
            peers = [1, 2]

        s = Everything(AsyncPolicy())
        plans = s.generate_partial_gradients(Ctx(), {"w": np.ones(3)})
        assert set(plans) == {1, 2}
