"""Tests for synchronization policies and the dynamic batching weight."""

import pytest

from repro.core.sync import (
    AsyncPolicy,
    BoundedPolicy,
    LockstepPolicy,
    SyncState,
    make_sync_policy,
)
from repro.core.weighted_update import dynamic_batching_weight


class TestDynamicBatchingWeight:
    def test_equal_lbs_gives_one(self):
        assert dynamic_batching_weight(32, 32) == 1.0

    def test_bigger_sender_weighted_up(self):
        assert dynamic_batching_weight(64, 32) == 2.0

    def test_smaller_sender_weighted_down(self):
        assert dynamic_batching_weight(16, 32) == 0.5

    def test_disabled_always_one(self):
        assert dynamic_batching_weight(64, 32, enabled=False) == 1.0

    def test_invalid_batch_sizes(self):
        with pytest.raises(ValueError):
            dynamic_batching_weight(0, 32)


def state(iteration, received):
    return SyncState(iteration=iteration, received_from=dict(received))


class TestAsyncPolicy:
    def test_never_blocks(self):
        p = AsyncPolicy()
        assert p.can_proceed(state(100, {1: -1, 2: -1}))


class TestLockstepPolicy:
    def test_first_iteration_free(self):
        assert LockstepPolicy().can_proceed(state(0, {1: -1, 2: -1}))

    def test_blocks_until_all_peers_reported(self):
        p = LockstepPolicy()
        assert not p.can_proceed(state(3, {1: 2, 2: 1}))
        assert p.can_proceed(state(3, {1: 2, 2: 2}))

    def test_peers_ahead_is_fine(self):
        assert LockstepPolicy().can_proceed(state(3, {1: 7, 2: 2}))


class TestBoundedPolicy:
    def test_within_staleness_proceeds(self):
        p = BoundedPolicy(staleness=5)
        assert p.can_proceed(state(6, {1: 1, 2: 6}))

    def test_beyond_staleness_blocks(self):
        p = BoundedPolicy(staleness=5)
        assert not p.can_proceed(state(7, {1: 1, 2: 6}))

    def test_backup_workers_tolerated(self):
        p = BoundedPolicy(staleness=5, backup=1)
        assert p.can_proceed(state(20, {1: 0, 2: 19}))     # one straggler ok
        assert not p.can_proceed(state(20, {1: 0, 2: 0}))  # two is too many

    def test_zero_staleness_is_lockstep_like(self):
        p = BoundedPolicy(staleness=0)
        assert not p.can_proceed(state(1, {1: 0}))
        assert p.can_proceed(state(1, {1: 1}))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BoundedPolicy(-1)


class TestFactoryAndStragglers:
    def test_factory(self):
        assert isinstance(make_sync_policy("async"), AsyncPolicy)
        assert isinstance(make_sync_policy("sync"), LockstepPolicy)
        p = make_sync_policy("bounded", staleness=3, backup=2)
        assert isinstance(p, BoundedPolicy)
        assert p.staleness == 3 and p.backup == 2

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_sync_policy("eventual")

    def test_straggler_identification(self):
        p = BoundedPolicy(5)
        st = state(10, {1: 9, 2: 3, 3: 0})
        assert sorted(p.stragglers(st)) == [2, 3]
