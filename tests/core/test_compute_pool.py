"""Compute-pool tests: thread-count byte-identity and speculation paths.

The pool's contract is that a run's *observable output* — every metric,
every time series, every trace event — is byte-identical for any
``compute_threads`` value. These tests pin that contract on full short
simulations (including membership churn and an early finalize that
forces the drain path) and exercise the hit/miss/discard machinery
directly.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cluster.topology import ClusterTopology
from repro.core.compute_pool import ComputePool
from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
from repro.core.engine import TrainingEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _fresh_setup() -> tuple[TrainConfig, ClusterTopology]:
    """A fresh (config, topology) pair per run.

    Topologies carry mutable link-queue state, so two runs being
    compared must never share one instance.
    """
    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=240,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        lr=0.1,
        gbs=GbsConfig(update_period_s=5.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=50),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
    )
    topology = ClusterTopology.build(
        cores=[8, 4, 2],
        bandwidth=[20.0, 10.0, 5.0],
        per_core_rate=16.0,
        overhead=0.02,
        jitter=0.0,
    )
    return config, topology


def _run(*, threads, horizon=30.0, membership=None, seed=3):
    config, topology = _fresh_setup()
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = TrainingEngine(
        config,
        topology,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
        membership=membership,
        compute_threads=threads,
    )
    result = engine.run(horizon)
    return engine, result, json.dumps(metrics.to_dict(), sort_keys=True), tracer.dumps()


class TestByteIdentity:
    def test_threaded_run_matches_serial_exactly(self):
        _, r1, m1, t1 = _run(threads=1)
        e4, r4, m4, t4 = _run(threads=4)
        assert r1.iterations == r4.iterations
        assert r1.epochs == r4.epochs
        assert m1 == m4  # every registered metric, bit for bit
        assert t1 == t4  # the full Chrome trace, byte for byte
        # The run must actually have speculated, or this test proves nothing.
        assert e4.compute_pool.hits > 0

    def test_identity_under_membership_churn(self):
        from repro.cluster.membership import MembershipSchedule

        results = []
        for threads in (1, 4):
            sched = MembershipSchedule(
                [(8.0, 2, "leave"), (18.0, 2, "join")], n_workers=3
            )
            results.append(_run(threads=threads, membership=sched))
        (_, r1, m1, t1), (_, r4, m4, t4) = results
        assert r1.iterations == r4.iterations
        assert m1 == m4
        assert t1 == t4

    def test_drain_keeps_finalize_identical(self):
        """Stopping mid-flight must rewind pending speculation before the
        final evaluations read BatchNorm stats and sampler positions."""
        outs = []
        for threads in (1, 4):
            config, topology = _fresh_setup()
            engine = TrainingEngine(
                config, topology, seed=5, compute_threads=threads
            )
            engine.advance_to(13.7)  # pool tasks are pending at this instant
            result = engine.finalize()
            outs.append(
                (
                    result.iterations,
                    result.epochs,
                    [s.values[-1] for s in result.accuracy],
                )
            )
            assert len(engine.compute_pool._tasks) == 0
        assert outs[0] == outs[1]


class TestSpeculationMachinery:
    def test_version_mismatch_forces_replay(self):
        """A model write between submit and fire must discard the
        speculative result; the replay keeps the run on the serial path
        (covered by byte-identity), and the miss is counted."""
        config, topology = _fresh_setup()
        engine = TrainingEngine(config, topology, seed=3, compute_threads=2)
        engine.advance_to(25.0)
        pool = engine.compute_pool
        # Gradient deliveries between submissions and completions make
        # both outcomes occur naturally in a 3-worker all-to-all run.
        assert pool.hits > 0
        assert pool.misses >= 0
        assert pool.hits + pool.misses <= sum(engine.result.iterations)
        engine.finalize()

    def test_serial_pool_never_creates_executor(self):
        config, topology = _fresh_setup()
        engine = TrainingEngine(config, topology, seed=3, compute_threads=1)
        engine.run(10.0)
        pool = engine.compute_pool
        assert not pool.enabled()
        assert pool._executor is None
        assert pool.hits == 0 and pool.misses == 0

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            ComputePool(object(), 0)

    def test_discard_rewinds_sampler_and_model_state(self):
        """Discarding a task must leave worker state as if the batch was
        never drawn (the inactive-at-fire / past-horizon path)."""
        config, topology = _fresh_setup()
        engine = TrainingEngine(config, topology, seed=3, compute_threads=2)
        engine.advance_to(20.0)
        pool = engine.compute_pool
        worker = engine.workers[0]
        before_rng = worker.sampler.rng.bit_generator.state
        before_drawn = worker.sampler.samples_drawn
        if worker.worker_id not in pool._tasks:
            pool._submit(worker, worker.lbs)
        assert worker.sampler.rng.bit_generator.state != before_rng
        pool.discard(worker)
        assert worker.sampler.rng.bit_generator.state == before_rng
        assert worker.sampler.samples_drawn == before_drawn
        assert worker.worker_id not in pool._tasks
        engine.finalize()


class TestCliFlag:
    def test_compute_threads_flag_end_to_end(self, capsys):
        rc = main(
            [
                "run", "-e", "Homo A", "-s", "baseline",
                "--horizon", "12", "--seed", "1", "--compute-threads", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compute threads: 2" in out
        assert "accuracy" in out

    def test_flag_output_matches_serial(self, capsys):
        args = ["run", "-e", "Homo A", "-s", "baseline", "--horizon", "12",
                "--seed", "1"]
        assert main(args + ["--compute-threads", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--compute-threads", "3"]) == 0
        threaded = capsys.readouterr().out
        # Drop the one-line threading banner; everything else must match.
        threaded = "\n".join(
            line for line in threaded.splitlines()
            if not line.startswith("compute threads")
        )
        assert threaded.strip() == serial.strip()

    def test_rejects_zero_threads(self, capsys):
        rc = main(
            ["run", "-e", "Homo A", "--horizon", "5", "--compute-threads", "0"]
        )
        assert rc == 2
