"""Integration tests for the worker + engine event loop."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig
from repro.core.engine import TrainingEngine


def make_engine(fast_config, tiny_topology, **changes):
    cfg = fast_config.with_(**changes) if changes else fast_config
    return TrainingEngine(cfg, tiny_topology, seed=0)


class TestEngineBasics:
    def test_run_produces_metrics(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(20.0)
        assert res.n_workers == 3
        assert all(it > 0 for it in res.iterations)
        assert all(len(acc) > 0 for acc in res.accuracy)
        assert res.epochs > 0
        assert res.events > 0

    def test_loss_decreases(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(30.0)
        loss = res.loss[0]
        early = np.mean(loss.values[:5])
        late = np.mean(loss.values[-5:])
        assert late < early

    def test_deterministic_for_seed(self, fast_config, tiny_topology):
        r1 = TrainingEngine(fast_config, tiny_topology, seed=3).run(15.0)
        topo2 = ClusterTopology.build(
            cores=[8, 4, 2], bandwidth=[20.0, 10.0, 5.0],
            per_core_rate=16.0, overhead=0.02, jitter=0.0,
        )
        r2 = TrainingEngine(fast_config, topo2, seed=3).run(15.0)
        assert r1.iterations == r2.iterations
        np.testing.assert_array_equal(r1.loss[0].values, r2.loss[0].values)
        np.testing.assert_array_equal(r1.accuracy[1].values, r2.accuracy[1].values)

    def test_different_seeds_differ(self, fast_config, tiny_topology):
        r1 = make_engine(fast_config, tiny_topology).run(10.0)
        topo2 = ClusterTopology.build(
            cores=[8, 4, 2], bandwidth=[20.0, 10.0, 5.0],
            per_core_rate=16.0, overhead=0.02, jitter=0.0,
        )
        r2 = TrainingEngine(fast_config, topo2, seed=99).run(10.0)
        assert r1.loss[0].values != r2.loss[0].values

    def test_lbs_controller_favours_fast_workers(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(25.0)
        final_lbs = [s.values[-1] for s in res.lbs]
        # cores are 8/4/2: worker 0 must carry the largest batches
        assert final_lbs[0] > final_lbs[1] > final_lbs[2]

    def test_gbs_growth_recorded(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(30.0)
        assert len(res.gbs) >= 2  # initial + at least one growth step
        assert res.gbs.values[-1] > res.gbs.values[0]

    def test_link_stats_recorded(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(10.0)
        assert (0, 1) in res.link_entries
        assert res.link_bytes[(0, 1)] > 0
        assert (0, 1) in res.link_chosen_n  # dlion records chosen N

    def test_dkt_merges_happen(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(30.0)
        assert res.dkt_merges > 0

    def test_run_epochs_stops_at_target(self, fast_config, tiny_topology):
        engine = make_engine(fast_config, tiny_topology)
        res = engine.run_epochs(3.0, max_time=500.0)
        assert res.epochs >= 3.0
        assert res.epochs < 6.0  # did not massively overshoot

    def test_profiler_totals_exported_to_metrics(self, fast_config, tiny_topology):
        from repro.obs.profile import Profiler

        prof = Profiler()
        engine = TrainingEngine(fast_config, tiny_topology, seed=0, profiler=prof)
        res = engine.run(10.0)
        seconds = res.metrics.get("profile_seconds_total")
        calls = res.metrics.get("profile_calls_total")
        for scope in ("maxn/plan", "maxn/histograms", "maxn/select_payload"):
            n, total = prof.totals()[scope]
            assert calls.value(scope) == n
            assert seconds.value(scope) == pytest.approx(total)

    def test_no_profiler_no_profile_metrics(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(5.0)
        assert not list(res.metrics.get("profile_seconds_total").items())


class TestEngineSystems:
    @pytest.mark.parametrize("system", ["baseline", "ako", "gaia", "hop"])
    def test_baseline_systems_run(self, fast_config, tiny_topology, system):
        cfg = fast_config.with_(
            system=system,
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            maxn=MaxNConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
        res = TrainingEngine(cfg, tiny_topology, seed=0).run(15.0)
        assert all(it > 0 for it in res.iterations)
        assert res.dkt_merges == 0

    def test_baseline_is_lockstep(self, fast_config, tiny_topology):
        cfg = fast_config.with_(
            system="baseline",
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
        res = TrainingEngine(cfg, tiny_topology, seed=0).run(20.0)
        assert max(res.iterations) - min(res.iterations) <= 1

    def test_ako_is_async(self, fast_config, tiny_topology):
        cfg = fast_config.with_(
            system="ako",
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
        res = TrainingEngine(cfg, tiny_topology, seed=0).run(20.0)
        # cores 8/4/2: the fast worker must get far ahead
        assert res.iterations[0] > 1.5 * res.iterations[2]

    def test_fixed_lbs_without_controller(self, fast_config, tiny_topology):
        cfg = fast_config.with_(
            system="baseline",
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
        res = TrainingEngine(cfg, tiny_topology, seed=0).run(10.0)
        for series in res.lbs:
            assert set(series.values) == {cfg.initial_lbs}


class TestRunResultMetrics:
    def test_mean_accuracy_monotone_series(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(20.0)
        series = res.mean_accuracy_series()
        vals = series.values
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_time_to_accuracy_consistent(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(30.0)
        final = res.final_mean_accuracy()
        t = res.time_to_accuracy(final * 0.5)
        assert t is not None and 0 < t <= res.horizon
        assert res.time_to_accuracy(1.1) is None

    def test_deviation_nonnegative(self, fast_config, tiny_topology):
        res = make_engine(fast_config, tiny_topology).run(10.0)
        assert res.accuracy_deviation_at(10.0) >= 0.0
