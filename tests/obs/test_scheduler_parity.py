"""Golden scheduler parity: calendar queue vs heap, byte-for-byte.

The calendar-queue scheduler is required to be *observationally
invisible*: swapping ``REPRO_SIMCLOCK`` between ``heap`` (the frozen
original) and ``calendar`` under an otherwise identical engine must
reproduce the exact same Chrome trace bytes and full metric dumps on
the Table 3 presets — and on sparse-overlay runs (ring, k-regular),
whose degree-scaled engine paths ride the same determinism contract.
Re-running the same configuration must also be byte-identical to
itself, which pins down any hidden wall-clock or iteration-order
dependence.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import RunSpec, run_experiment
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _golden_run(environment, overlay, kind, monkeypatch, horizon):
    monkeypatch.setenv("REPRO_SIMCLOCK", kind)
    tracer = Tracer()
    metrics = MetricsRegistry()
    spec = RunSpec(
        environment=environment,
        system="dlion",
        seed=3,
        horizon=horizon,
        overlay=overlay,
    )
    result = run_experiment(spec, tracer=tracer, metrics=metrics)
    metric_dump = json.dumps(metrics.to_dict(), sort_keys=True, default=str)
    return result, tracer.dumps(), metric_dump


# Table 3 presets across every heterogeneity axis (incl. a dynamic
# phase-switching row), plus one ring and one k-regular overlay run.
CONFIGS = [
    ("Homo B", None, 12.0),
    ("Hetero CPU B", None, 12.0),
    ("Hetero NET A", None, 12.0),
    ("Hetero SYS B", None, 12.0),
    ("Dynamic SYS A", None, 12.0),
    ("Hetero NET A", "ring", 12.0),
    ("Homo B", "kregular:3", 12.0),
]


class TestSchedulerParity:
    @pytest.mark.parametrize(
        "environment,overlay,horizon", CONFIGS,
        ids=[f"{e}{'+' + o if o else ''}" for e, o, _ in CONFIGS],
    )
    def test_heap_vs_calendar_byte_identical(
        self, environment, overlay, horizon, monkeypatch
    ):
        r_heap, trace_heap, metrics_heap = _golden_run(
            environment, overlay, "heap", monkeypatch, horizon
        )
        r_cal, trace_cal, metrics_cal = _golden_run(
            environment, overlay, "calendar", monkeypatch, horizon
        )
        assert trace_heap == trace_cal
        assert metrics_heap == metrics_cal
        assert r_heap.iterations == r_cal.iterations
        assert r_heap.events == r_cal.events

    @pytest.mark.parametrize("environment,overlay",
                             [("Hetero NET A", None), ("Homo B", "kregular:3")])
    def test_rerun_byte_identical(self, environment, overlay, monkeypatch):
        one = _golden_run(environment, overlay, "calendar", monkeypatch, 12.0)
        two = _golden_run(environment, overlay, "calendar", monkeypatch, 12.0)
        assert one[1] == two[1]  # trace bytes
        assert one[2] == two[2]  # metric dump
