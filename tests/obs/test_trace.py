"""Unit tests for the Chrome-trace event tracer."""

import json

from repro.obs.trace import (
    NULL_TRACER,
    THREAD_NAMES,
    TID_CTRL,
    TID_DKT,
    TID_ITER,
    TID_NET,
    TID_SYNC,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_complete_span_fields(self):
        tr = Tracer()
        tr.complete("compute", 0, TID_ITER, 1.5, 0.25, cat="iter",
                    args={"iteration": 3})
        [ev] = tr.events()
        assert ev == {
            "ph": "X", "name": "compute", "cat": "iter", "pid": 0,
            "tid": TID_ITER, "ts": 1.5e6, "dur": 0.25e6,
            "args": {"iteration": 3},
        }

    def test_negative_duration_clamped(self):
        tr = Tracer()
        tr.complete("x", 0, 0, 1.0, -0.5)
        assert tr.events()[0]["dur"] == 0.0

    def test_instant_scope(self):
        tr = Tracer()
        tr.instant("membership-leave", 3, 0, 100.0, cat="membership", scope="g")
        [ev] = tr.events()
        assert ev["ph"] == "i" and ev["s"] == "g" and ev["ts"] == 100.0e6

    def test_counter_event(self):
        tr = Tracer()
        tr.counter("gbs", 6, 30.0, {"gbs": 384})
        [ev] = tr.events()
        assert ev["ph"] == "C" and ev["args"] == {"gbs": 384}

    def test_metadata_first_and_deduped(self):
        tr = Tracer()
        tr.complete("compute", 0, TID_ITER, 0.0, 1.0)
        tr.set_process_name(0, "worker 0")
        tr.set_process_name(0, "worker 0")  # duplicate ignored
        tr.set_thread_name(0, TID_SYNC, THREAD_NAMES[TID_SYNC])
        events = tr.events()
        assert [e["ph"] for e in events] == ["M", "M", "X"]
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert names == ["worker 0", "sync-wait"]

    def test_dumps_is_valid_chrome_trace(self):
        tr = Tracer()
        tr.set_process_name(1, "worker 1")
        tr.complete("grad->2", 1, TID_NET, 0.0, 0.5, cat="net",
                    args={"dst": 2, "bytes": 1024})
        doc = json.loads(tr.dumps())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2

    def test_write_round_trips(self, tmp_path):
        tr = Tracer()
        tr.instant("dkt-share", 2, TID_DKT, 12.0, cat="dkt")
        path = tmp_path / "t.json"
        tr.write(path)
        assert json.loads(path.read_text()) == tr.to_json()

    def test_len_counts_events_not_metadata(self):
        tr = Tracer()
        tr.set_process_name(0, "worker 0")
        assert len(tr) == 0
        tr.instant("x", 0, TID_CTRL, 0.0)
        assert len(tr) == 1


class TestNullTracer:
    def test_disabled_and_inert(self):
        nt = NullTracer()
        assert not nt.enabled
        nt.set_process_name(0, "w")
        nt.set_thread_name(0, 0, "t")
        nt.complete("a", 0, 0, 0.0, 1.0)
        nt.instant("b", 0, 0, 0.0)
        nt.counter("c", 0, 0.0, {"v": 1})
        assert nt.events() == [] and len(nt) == 0

    def test_singleton_shared(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
