"""Unit tests for live-status snapshots: build, write/read, render.

Everything here is pure data — no live runs and no wall-clock sleeps.
"""

import json

from repro.obs.live_status import (
    SNAPSHOT_NAME,
    build_snapshot,
    read_snapshot,
    render_health_line,
    render_snapshot,
    write_snapshot,
)


def _snapshot(**overrides):
    base = dict(
        time_model_s=12.34,
        horizon_s=40.0,
        wall_elapsed_s=2.5,
        speedup=5.0,
        workers={
            0: {"iteration": 30, "rate": 3.0, "alive": True, "restarts": 0},
            1: {"iteration": 29, "rate": 2.9, "alive": True, "restarts": 0},
            2: {"iteration": 7, "rate": 1.0, "alive": True, "restarts": 1},
        },
        cluster={
            "frame_latency_p99_s": 0.0018,
            "send_msgs_total": 1234,
            "send_bytes_total": 5.6e6,
            "outbox_depth_max": 3,
            "queue_depth_max": 2,
            "deltas_received": 12,
        },
    )
    base.update(overrides)
    return build_snapshot(**base)


class TestBuildSnapshot:
    def test_straggler_flagged_below_half_median_rate(self):
        snap = _snapshot()
        assert snap["workers"]["2"]["straggler"] is True
        assert snap["workers"]["0"]["straggler"] is False
        assert snap["workers"]["1"]["straggler"] is False

    def test_dead_workers_never_stragglers(self):
        snap = _snapshot(
            workers={
                0: {"iteration": 30, "rate": 3.0, "alive": True, "restarts": 0},
                2: {"iteration": 7, "rate": 0.0, "alive": False, "restarts": 0},
            }
        )
        assert snap["workers"]["2"]["straggler"] is False

    def test_cold_cluster_not_all_stragglers(self):
        snap = _snapshot(
            workers={
                0: {"iteration": 0, "rate": 0.0, "alive": True, "restarts": 0},
                1: {"iteration": 0, "rate": 0.0, "alive": True, "restarts": 0},
            }
        )
        assert not any(w["straggler"] for w in snap["workers"].values())

    def test_flight_tail_included(self):
        snap = _snapshot(
            flight_tail={2: [{"name": "peer-dead", "ph": "i", "ts": 1.0}]}
        )
        assert snap["flight_tail"]["2"][0]["name"] == "peer-dead"


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        snap = _snapshot()
        path = write_snapshot(tmp_path, snap)
        assert path.name == SNAPSHOT_NAME
        assert read_snapshot(tmp_path) == snap

    def test_write_is_atomic_replace(self, tmp_path):
        write_snapshot(tmp_path, _snapshot())
        write_snapshot(tmp_path, _snapshot(time_model_s=20.0))
        assert read_snapshot(tmp_path)["time_model_s"] == 20.0
        # no stray tmp file left behind
        assert [p.name for p in tmp_path.iterdir()] == [SNAPSHOT_NAME]

    def test_missing_or_torn_file_reads_as_none(self, tmp_path):
        assert read_snapshot(tmp_path) is None
        (tmp_path / SNAPSHOT_NAME).write_text("{not json")
        assert read_snapshot(tmp_path) is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        write_snapshot(target, _snapshot())
        assert read_snapshot(target) is not None


class TestRender:
    def test_health_line_fields(self):
        line = render_health_line(_snapshot())
        assert line.startswith("[live t=12.3/40.0s]")
        assert "it/s 0:3.0 1:2.9 2:1.0*" in line  # straggler starred
        assert "p99 1.8ms" in line
        assert "outbox<=3" in line and "queue<=2" in line
        assert "1.2k msgs" in line
        assert line.endswith("up 3/3")

    def test_health_line_marks_dead_workers(self):
        snap = _snapshot(
            workers={
                0: {"iteration": 30, "rate": 3.0, "alive": True, "restarts": 0},
                2: {"iteration": 7, "rate": 0.0, "alive": False, "restarts": 0},
            }
        )
        line = render_health_line(snap)
        assert "2:0.0!" in line
        assert line.endswith("up 1/2")

    def test_health_line_tolerates_missing_latency(self):
        snap = _snapshot()
        snap["cluster"]["frame_latency_p99_s"] = None
        assert "p99 -" in render_health_line(snap)

    def test_full_render_has_worker_table(self):
        text = render_snapshot(_snapshot(
            flight_tail={2: [{"name": "x", "ph": "i", "ts": 1.0}]}
        ))
        assert "worker" in text and "restarts" in text
        assert "speedup 5" in text
        assert "flight-recorder tail: 1 event(s)" in text

    def test_snapshot_is_json_serializable(self):
        json.dumps(_snapshot())
