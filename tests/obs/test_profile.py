"""Unit tests for the wall-clock profiler."""

from repro.obs import profile
from repro.obs.profile import Profiler, activate, active_profiler, scope, set_active


class TestProfiler:
    def test_scope_records_calls_and_time(self):
        prof = Profiler()
        with prof.scope("work"):
            pass
        with prof.scope("work"):
            pass
        calls, total = prof.totals()["work"]
        assert calls == 2
        assert total >= 0.0
        assert prof.total("work") == total
        assert prof.total("missing") == 0.0

    def test_add_merges(self):
        prof = Profiler()
        prof.add("dispatch", 0.5, calls=10)
        prof.add("dispatch", 0.25, calls=5)
        assert prof.totals()["dispatch"] == (15, 0.75)

    def test_report_sorted_by_total(self):
        prof = Profiler()
        prof.add("small", 0.1)
        prof.add("big", 2.0)
        lines = prof.report().splitlines()
        assert lines[2].startswith("big")
        assert lines[3].startswith("small")

    def test_report_empty(self):
        assert "no scopes" in Profiler().report()


class TestModuleScope:
    def test_noop_when_inactive(self):
        assert active_profiler() is None
        s = scope("anything")
        assert s is profile._NULL_SCOPE
        with s:
            pass

    def test_activate_restores_previous(self):
        outer, inner = Profiler(), Profiler()
        previous = set_active(outer)
        try:
            with activate(inner):
                assert active_profiler() is inner
                with scope("nested"):
                    pass
            assert active_profiler() is outer
        finally:
            set_active(previous)
        assert "nested" in inner.totals()
        assert "nested" not in outer.totals()
