"""Unit tests for the wall-clock profiler."""

from repro.obs import profile
from repro.obs.profile import Profiler, activate, active_profiler, scope, set_active


class TestProfiler:
    def test_scope_records_calls_and_time(self):
        prof = Profiler()
        with prof.scope("work"):
            pass
        with prof.scope("work"):
            pass
        calls, total = prof.totals()["work"]
        assert calls == 2
        assert total >= 0.0
        assert prof.total("work") == total
        assert prof.total("missing") == 0.0

    def test_add_merges(self):
        prof = Profiler()
        prof.add("dispatch", 0.5, calls=10)
        prof.add("dispatch", 0.25, calls=5)
        assert prof.totals()["dispatch"] == (15, 0.75)

    def test_report_sorted_by_total(self):
        prof = Profiler()
        prof.add("small", 0.1)
        prof.add("big", 2.0)
        lines = prof.report().splitlines()
        assert lines[2].startswith("big")
        assert lines[3].startswith("small")

    def test_report_empty(self):
        assert "no scopes" in Profiler().report()


class TestModuleScope:
    def test_noop_when_inactive(self):
        assert active_profiler() is None
        s = scope("anything")
        assert s is profile._NULL_SCOPE
        with s:
            pass

    def test_activate_restores_previous(self):
        outer, inner = Profiler(), Profiler()
        previous = set_active(outer)
        try:
            with activate(inner):
                assert active_profiler() is inner
                with scope("nested"):
                    pass
            assert active_profiler() is outer
        finally:
            set_active(previous)
        assert "nested" in inner.totals()
        assert "nested" not in outer.totals()


class TestExclusiveTime:
    """The self-time (exclusive) split introduced for simclock/dispatch."""

    def test_nested_scope_self_excludes_child(self):
        import time

        prof = Profiler()
        with prof.scope("parent"):
            with prof.scope("child"):
                time.sleep(0.02)
        calls, total = prof.totals()["parent"]
        assert calls == 1
        child_total = prof.total("child")
        self_parent = prof.self_total("parent")
        # parent's inclusive covers the child; its exclusive does not.
        assert total >= child_total
        assert self_parent <= total - child_total + 1e-6
        assert self_parent >= 0.0
        # Leaf scope: self == total.
        assert prof.self_total("child") == child_total

    def test_self_totals_shape_matches_totals(self):
        prof = Profiler()
        with prof.scope("a"):
            with prof.scope("b"):
                pass
        assert set(prof.self_totals()) == set(prof.totals())
        for name, (calls, total) in prof.totals().items():
            self_calls, self_secs = prof.self_totals()[name]
            assert self_calls == calls == 1
            assert 0.0 <= self_secs <= total + 1e-9

    def test_add_charges_innermost_open_frame(self):
        prof = Profiler()
        with prof.scope("outer"):
            prof.add("leaf", 0.5)
        # The explicit 0.5 s counts as 'outer' child time, not self time.
        _, outer_total = prof.totals()["outer"]
        assert prof.self_total("outer") <= max(outer_total - 0.5, 0.0) + 1e-6
        assert prof.totals()["leaf"] == (1, 0.5)

    def test_sibling_threads_do_not_nest(self):
        import threading

        prof = Profiler()
        done = threading.Event()

        def pool_work():
            with prof.scope("nn/step"):
                done.wait(0.01)

        with prof.scope("simclock/dispatch"):
            t = threading.Thread(target=pool_work)
            t.start()
            t.join()
        # The pool thread's scope is a root on its own thread: it must
        # NOT be subtracted from the event loop's dispatch self time.
        _, dispatch_total = prof.totals()["simclock/dispatch"]
        assert prof.self_total("simclock/dispatch") >= dispatch_total - 1e-6

    def test_report_has_self_column(self):
        prof = Profiler()
        with prof.scope("only"):
            pass
        header = prof.report().splitlines()[0]
        assert "self s" in header and "total s" in header

    def test_exception_unwinds_frames(self):
        prof = Profiler()
        try:
            with prof.scope("outer"):
                with prof.scope("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        # Both frames recorded despite the exception; a new root scope
        # still attributes correctly afterwards.
        assert prof.totals()["outer"][0] == 1
        assert prof.totals()["inner"][0] == 1
        with prof.scope("after"):
            pass
        assert prof.self_total("after") == prof.total("after")
