"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
    percentile_from_sample,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("bytes_total", "", ("src", "dst"))
        c.inc(100, 0, 1)
        c.inc(50, 0, 1)
        c.inc(7, 1, 0)
        assert c.value(0, 1) == 150
        assert c.value(1, 0) == 7
        assert c.value(2, 2) == 0.0

    def test_negative_rejected(self):
        c = Counter("n", "", ())
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_label_arity_checked(self):
        c = Counter("n", "", ("worker",))
        with pytest.raises(ValueError, match="label"):
            c.inc(1)

    def test_samples_stringify_labels(self):
        c = Counter("n", "", ("worker",))
        c.inc(2, 3)
        assert c.samples() == [{"labels": {"worker": "3"}, "value": 2.0}]


class TestGauge:
    def test_set_inc_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth", labels=("worker",))
        g.set(4, 0)
        g.inc(-1, 0)
        assert g.value(0) == 3
        assert g.value(9) == 0.0


class TestHistogram:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", "", (), buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 6.0):
            h.observe(v)
        [sample] = h.samples()
        cum = {b["le"]: b["count"] for b in sample["buckets"]}
        # le=1.0 catches 0.5 and exactly 1.0 (Prometheus semantics).
        assert cum[1.0] == 2
        assert cum[2.0] == 4
        assert cum[5.0] == 5
        assert cum["+inf"] == 6

    def test_count_sum_mean_min_max(self):
        h = Histogram("lat", "", ("worker",))
        h.observe(1.0, 0)
        h.observe(3.0, 0)
        assert h.count(0) == 2
        assert h.sum(0) == 4.0
        assert h.mean(0) == 2.0
        assert h.mean(1) == 0.0
        [sample] = h.samples()
        assert sample["min"] == 1.0 and sample["max"] == 3.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=(1.0, 1.0))


class TestPercentiles:
    def test_linear_interpolation_within_a_bucket(self):
        # 10 observations land in (1, 2]; the median interpolates to
        # the bucket midpoint, Prometheus histogram_quantile-style.
        edges = (1.0, 2.0, 5.0)
        cumulative = [0, 10, 10, 10]
        assert percentile_from_buckets(edges, cumulative, 0.5) == pytest.approx(1.5)

    def test_min_max_clamp_beats_bucket_edges(self):
        edges = (1.0, 2.0)
        cumulative = [0, 4, 4]
        # All four values were 1.9; the interpolated estimate cannot
        # stray outside the observed range.
        p = percentile_from_buckets(
            edges, cumulative, 0.99, minimum=1.9, maximum=1.9
        )
        assert p == pytest.approx(1.9)

    def test_inf_bucket_resolves_to_observed_max(self):
        edges = (1.0,)
        cumulative = [0, 3]  # all three observations above every edge
        assert percentile_from_buckets(
            edges, cumulative, 0.99, maximum=7.5
        ) == pytest.approx(7.5)

    def test_empty_series_is_none(self):
        assert percentile_from_buckets((1.0,), [0, 0], 0.5) is None

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0,), [0, 0], 1.5)
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0, 2.0), [0, 0], 0.5)

    def test_histogram_percentile_and_samples_agree(self):
        h = Histogram("lat", "", ("worker",), buckets=(0.01, 0.1, 1.0))
        for i in range(100):
            h.observe(0.001 + i * 0.0005, 0)  # 0.001 .. 0.0505
        p50 = h.percentile(0.5, 0)
        p99 = h.percentile(0.99, 0)
        assert 0.001 <= p50 < p99 <= 0.0505  # max-clamped, never past range
        [sample] = h.samples()
        assert sample["p50"] == pytest.approx(p50)
        assert sample["p99"] == pytest.approx(p99)
        # the exported-sample path recomputes the same estimates
        assert percentile_from_sample(sample, 0.99) == pytest.approx(p99)

    def test_percentile_all_pools_label_series(self):
        h = Histogram("lat", "", ("link",), buckets=(1.0, 10.0))
        for _ in range(99):
            h.observe(0.5, 0)   # fast link
        h.observe(9.0, 1)       # one slow outlier on another link
        assert h.percentile(0.995, 0) <= 1.0
        assert h.percentile_all(0.995) > 1.0

    def test_empty_histogram_percentiles_are_none(self):
        h = Histogram("lat", "", ())
        assert h.percentile(0.99) is None
        assert h.percentile_all(0.99) is None
        h.observe(2.0)
        [sample] = h.samples()
        assert sample["p95"] is not None


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("events", labels=())
        b = reg.counter("events", labels=())
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x", labels=("a", "b"))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_to_dict_and_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("grad_bytes_total", "bytes", ("src", "dst")).inc(10, 0, 1)
        reg.histogram("wait", labels=("worker",)).observe(0.2, 1)
        dump = reg.to_dict()
        assert dump["grad_bytes_total"]["kind"] == "counter"
        assert dump["wait"]["kind"] == "histogram"
        path = tmp_path / "m.json"
        reg.write(path)
        assert json.loads(path.read_text()) == dump

    def test_names_in_registration_order(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["b", "a"]
