"""Engine-level observability tests: traces, metrics, and determinism."""

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.core.engine import TrainingEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.utils.metrics import TimeSeries, accuracy_at_time


def fresh_topology():
    return ClusterTopology.build(
        cores=[8, 4, 2], bandwidth=[20.0, 10.0, 5.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )


def traced_run(config, topology, *, seed=0, horizon=15.0):
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = TrainingEngine(config, topology, seed=seed,
                            tracer=tracer, metrics=metrics)
    result = engine.run(horizon)
    return result, tracer, metrics


class TestTracedRun:
    def test_trace_has_expected_event_kinds(self, fast_config, tiny_topology):
        _, tracer, _ = traced_run(fast_config, tiny_topology)
        events = tracer.events()
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert "iter" in cats and "net" in cats
        names = {e["name"] for e in events}
        assert "compute" in names
        assert any(n.startswith("grad->") for n in names)
        # Every worker is a named process; the cluster pseudo-process too.
        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs == {"worker 0", "worker 1", "worker 2", "cluster"}

    def test_trace_timestamps_within_horizon(self, fast_config, tiny_topology):
        result, tracer, _ = traced_run(fast_config, tiny_topology)
        # Spans may start before the horizon and drain slightly past it,
        # but nothing can start after the clock stopped.
        starts = [e["ts"] for e in tracer.events() if e["ph"] != "M"]
        assert min(starts) >= 0.0
        assert max(starts) <= result.horizon * 1e6 + 1e-6

    def test_metrics_agree_with_result(self, fast_config, tiny_topology):
        result, _, metrics = traced_run(fast_config, tiny_topology)
        grad = metrics.get("grad_bytes_total")
        assert result.link_bytes == {
            key: int(v) for key, v in grad.items()
        }
        iters = metrics.get("iterations_total")
        assert [int(iters.value(w)) for w in range(3)] == result.iterations
        assert metrics.get("events_processed").value() == result.events

    def test_tracing_does_not_change_results(self, fast_config, tiny_topology):
        traced, _, _ = traced_run(fast_config, tiny_topology)
        plain = TrainingEngine(fast_config, fresh_topology(), seed=0).run(15.0)
        assert traced.iterations == plain.iterations
        np.testing.assert_array_equal(
            traced.loss[0].values, plain.loss[0].values
        )
        assert traced.link_bytes == plain.link_bytes


class TestDeterminism:
    def test_identical_runs_produce_byte_identical_traces(
        self, fast_config, tiny_topology
    ):
        _, t1, m1 = traced_run(fast_config, tiny_topology, seed=3)
        _, t2, m2 = traced_run(fast_config, fresh_topology(), seed=3)
        assert t1.dumps() == t2.dumps()
        assert m1.to_dict() == m2.to_dict()

    def test_different_seeds_produce_different_traces(
        self, fast_config, tiny_topology
    ):
        _, t1, _ = traced_run(fast_config, tiny_topology, seed=0)
        _, t2, _ = traced_run(fast_config, fresh_topology(), seed=99)
        assert t1.dumps() != t2.dumps()


class TestProfiledRun:
    def test_profiler_sees_hot_scopes(self, fast_config, tiny_topology):
        prof = Profiler()
        TrainingEngine(
            fast_config, tiny_topology, seed=0, profiler=prof
        ).run(10.0)
        totals = prof.totals()
        assert "simclock/dispatch" in totals
        assert "nn/loss_and_grads" in totals
        assert "maxn/plan" in totals
        calls, seconds = totals["nn/loss_and_grads"]
        assert calls > 0 and seconds > 0.0


class TestMeanAccuracySeries:
    def test_matches_naive_per_time_evaluation(self, fast_config, tiny_topology):
        result = TrainingEngine(fast_config, tiny_topology, seed=1).run(20.0)
        series = result.mean_accuracy_series()
        grid = sorted({t for s in result.accuracy for t in s.times})
        assert series.times == grid
        for t, v in zip(series.times, series.values):
            naive = float(np.mean(
                [accuracy_at_time(s, t) for s in result.accuracy]
            ))
            assert abs(v - naive) < 1e-12

    def test_handles_disjoint_sample_times(self):
        from repro.core.engine import RunResult

        a = TimeSeries([1.0, 4.0], [0.2, 0.6])
        b = TimeSeries([2.0, 3.0], [0.5, 0.55])
        result = RunResult(n_workers=2, horizon=5.0, accuracy=[a, b])
        series = result.mean_accuracy_series()
        assert series.times == [1.0, 2.0, 3.0, 4.0]
        expected = [(0.2 + 0.0) / 2, (0.2 + 0.5) / 2,
                    (0.2 + 0.55) / 2, (0.6 + 0.55) / 2]
        np.testing.assert_allclose(series.values, expected)
