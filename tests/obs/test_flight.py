"""Unit tests for the bounded flight-recorder ring."""

from repro.obs.flight import DEFAULT_CAPACITY, FLIGHT_CAT, FlightRecorder


class TestFlightRecorder:
    def test_records_chrome_trace_instants(self):
        fr = FlightRecorder(3)
        fr.record("peer-dead", 1.5, {"peer": 2})
        [ev] = fr.peek()
        assert ev["ph"] == "i"
        assert ev["cat"] == FLIGHT_CAT
        assert ev["pid"] == 3
        assert ev["name"] == "peer-dead"
        assert ev["ts"] == 1.5e6  # microseconds
        assert ev["args"] == {"peer": 2}

    def test_ring_keeps_only_the_newest(self):
        fr = FlightRecorder(0, capacity=4)
        for i in range(10):
            fr.record("iteration", float(i), {"iteration": i})
        assert len(fr) == 4
        kept = [ev["args"]["iteration"] for ev in fr.peek()]
        assert kept == [6, 7, 8, 9]
        assert fr.recorded == 10

    def test_drain_empties_and_counts(self):
        fr = FlightRecorder(0)
        fr.record("a", 0.0)
        fr.record("b", 1.0)
        events = fr.drain()
        assert [e["name"] for e in events] == ["a", "b"]  # oldest first
        assert len(fr) == 0
        assert fr.drained == 2
        assert fr.drain() == []  # idempotent when empty

    def test_drain_then_record_does_not_resend(self):
        # The delta-shipping contract: every event is shipped exactly once.
        fr = FlightRecorder(0)
        fr.record("a", 0.0)
        assert [e["name"] for e in fr.drain()] == ["a"]
        fr.record("b", 1.0)
        assert [e["name"] for e in fr.drain()] == ["b"]

    def test_default_capacity(self):
        fr = FlightRecorder(0)
        for i in range(DEFAULT_CAPACITY + 5):
            fr.record("x", float(i))
        assert len(fr) == DEFAULT_CAPACITY
