"""Conservation and accounting invariants across a full engine run."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
from repro.core.engine import TrainingEngine


@pytest.fixture(scope="module")
def run():
    topo = ClusterTopology.build(
        cores=[8, 4, 2], bandwidth=[20.0, 10.0, 5.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )
    cfg = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=240,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        gbs=GbsConfig(update_period_s=5.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=40),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
    )
    engine = TrainingEngine(cfg, topo, seed=0)
    result = engine.run(25.0)
    return engine, result


class TestAccounting:
    def test_gradient_bytes_recorded_match_link_counters(self, run):
        engine, result = run
        # Engine-side per-link byte ledger covers gradient traffic only;
        # the links themselves also carry control + weight messages, so
        # link counters must be >= the gradient ledger, never less.
        for (src, dst), nbytes in result.link_bytes.items():
            assert engine.topology.network.link(src, dst).bytes_sent >= nbytes

    def test_loss_series_length_matches_iterations(self, run):
        _, result = run
        for w in range(result.n_workers):
            assert len(result.loss[w]) == result.iterations[w]

    def test_epoch_accounting(self, run):
        engine, result = run
        drawn = sum(w.sampler.samples_drawn for w in engine.workers)
        assert result.epochs == pytest.approx(drawn / engine.dataset.train_size)

    def test_every_worker_evaluated_at_finalize(self, run):
        _, result = run
        for series in result.accuracy:
            assert series.times[-1] == pytest.approx(result.horizon)

    def test_messages_sent_equals_peer_count_times_iterations(self, run):
        engine, result = run
        for w in engine.workers:
            assert w.stats_grad_msgs_sent == w.iteration * (engine.n_workers - 1)

    def test_all_sent_messages_eventually_received(self, run):
        engine, result = run
        # After the horizon there may be a few in-flight stragglers; run
        # the clock dry and check totals match.
        engine.clock.run(max_events=100_000)
        sent = sum(w.stats_grad_msgs_sent for w in engine.workers)
        received = sum(w.stats_grad_msgs_received for w in engine.workers)
        assert received == sent

    def test_weights_stay_finite(self, run):
        engine, _ = run
        for w in engine.workers:
            for v in w.model.variables().values():
                assert np.isfinite(v).all()
