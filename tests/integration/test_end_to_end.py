"""End-to-end scenario tests: the paper's qualitative claims as assertions.

These run miniature versions of the evaluation and assert the *shape*
of the results — who makes progress, who adapts, who stays consistent —
with generous tolerances so they are robust to the seeds.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.cluster.traces import PiecewiseTrace
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
from repro.core.engine import TrainingEngine

BASE = dict(
    model="mlp",
    model_kwargs={"in_dim": 576, "hidden": (48,)},
    train_size=1200,
    test_size=240,
    eval_subset=240,
    dataset_kwargs={"noise": 1.2},
    lr=0.08,
    initial_lbs=16,
    eval_period_iters=10,
    lbs=LbsConfig(probe_batches=(4, 8, 16), probe_repeats=1, profile_period_iters=20),
    dkt=DktConfig(period_iters=15),
    gbs=GbsConfig(update_period_s=10.0),
)

OFF = dict(
    gbs=GbsConfig(enabled=False),
    lbs=LbsConfig(enabled=False),
    maxn=MaxNConfig(enabled=False),
    dkt=DktConfig(enabled=False),
    weighted_update=False,
)


def hetero_topology(bw=(5.0, 5.0, 3.5, 3.5, 2.0, 2.0)):
    return ClusterTopology.build(
        cores=[24, 24, 12, 12, 6, 6], bandwidth=list(bw),
        per_core_rate=8.0, overhead=0.05,
    )


def run(system, topo, horizon=90.0, seed=0, **overrides):
    kw = dict(BASE)
    if system != "dlion":
        kw.update(OFF)
    kw.update(overrides)
    cfg = TrainConfig(system=system, **kw)
    return TrainingEngine(cfg, topo, seed=seed).run(horizon)


class TestEverySystemLearns:
    @pytest.mark.parametrize("system", ["dlion", "baseline", "ako", "gaia", "hop"])
    def test_learns_above_chance(self, system):
        res = run(system, hetero_topology())
        assert res.final_mean_accuracy() > 0.3  # chance is 0.1

    @pytest.mark.parametrize("system", ["dlion", "baseline", "ako", "gaia", "hop"])
    def test_no_deadlock_under_extreme_straggler(self, system):
        """One worker has almost no compute and a terrible link; every
        synchronization strategy must still keep the cluster moving."""
        topo = ClusterTopology.build(
            cores=[24, 24, 24, 24, 24, 0.5],
            bandwidth=[5.0, 5.0, 5.0, 5.0, 5.0, 0.2],
            per_core_rate=8.0,
        )
        res = run(system, topo, horizon=60.0)
        assert sum(res.iterations) > 10
        assert min(res.iterations) >= 1

    def test_progresses_with_two_workers(self):
        topo = ClusterTopology.build(cores=[8, 4], bandwidth=[5.0, 5.0])
        res = run("dlion", topo, horizon=60.0)
        assert res.final_mean_accuracy() > 0.3


class TestPaperShapeClaims:
    def test_dlion_beats_lockstep_systems_in_hetero_env(self):
        topo_a = hetero_topology()
        dlion = run("dlion", topo_a, horizon=120.0)
        baseline = run("baseline", hetero_topology(), horizon=120.0)
        assert dlion.final_mean_accuracy() > baseline.final_mean_accuracy()

    def test_dkt_shrinks_worker_deviation(self):
        """Fig. 17's core claim: model synchronization keeps replicas
        consistent. DLion-with-DKT must have lower per-worker accuracy
        spread than async Ako."""
        devs = {}
        for system in ("dlion", "ako"):
            samples = []
            for seed in (0, 1):
                res = run(system, hetero_topology(), horizon=120.0, seed=seed)
                samples.append(res.accuracy_deviation_at(res.horizon))
            devs[system] = np.mean(samples)
        assert devs["dlion"] <= devs["ako"] + 0.01

    def test_lbs_tracks_compute_trace(self):
        """Fig. 19's claim: the LBS controller follows capacity changes."""
        cores = [
            PiecewiseTrace([(0.0, 24), (40.0, 6)]),
            PiecewiseTrace([(0.0, 6), (40.0, 24)]),
        ] + [PiecewiseTrace([(0.0, 12)]) for _ in range(4)]
        from repro.cluster.compute import ComputeProfile
        from repro.cluster.network import BandwidthMatrix

        topo = ClusterTopology(
            compute=[ComputeProfile(c, per_core_rate=8.0) for c in cores],
            network=BandwidthMatrix.from_worker_capacity([5.0] * 6),
        )
        res = run(
            "dlion",
            topo,
            horizon=90.0,
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(
                probe_batches=(4, 8, 16), probe_repeats=1, profile_period_iters=8
            ),
        )
        early0 = res.lbs[0].value_at(35.0)
        late0 = res.lbs[0].value_at(88.0)
        early1 = res.lbs[1].value_at(35.0)
        late1 = res.lbs[1].value_at(88.0)
        assert early0 > early1  # worker 0 starts stronger
        assert late1 > late0    # and the roles flip after the trace flips

    def test_maxn_sends_fewer_bytes_than_baseline(self):
        dlion = run(
            "dlion",
            hetero_topology(),
            horizon=60.0,
            dkt=DktConfig(enabled=False),
            gbs=GbsConfig(enabled=False),
        )
        baseline = run("baseline", hetero_topology(), horizon=60.0)
        dlion_mb_per_iter = sum(dlion.link_bytes.values()) / max(1, sum(dlion.iterations))
        base_mb_per_iter = sum(baseline.link_bytes.values()) / max(1, sum(baseline.iterations))
        assert dlion_mb_per_iter < base_mb_per_iter

    def test_gbs_growth_raises_epoch_throughput(self):
        with_gbs = run("dlion", hetero_topology(), horizon=100.0)
        without = run(
            "dlion", hetero_topology(), horizon=100.0, gbs=GbsConfig(enabled=False)
        )
        assert with_gbs.epochs > without.epochs


class TestCheckpointing:
    def test_save_load_roundtrip(self, tmp_path, rng):
        from repro.nn.models import mlp

        model = mlp(rng, in_dim=20, hidden=(8,), num_classes=3)
        path = str(tmp_path / "ckpt.npz")
        model.save_weights(path)
        snap = model.copy_weights()
        # scramble, then restore
        for v in model.variables().values():
            v[...] = 0.0
        model.load_weights(path)
        for name, arr in snap.items():
            np.testing.assert_array_equal(model.get_variable(name), arr)
