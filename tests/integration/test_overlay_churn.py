"""Combined extensions: partial overlay + elastic membership together."""


from repro.cluster.membership import MembershipSchedule
from repro.cluster.peergraph import PeerGraph
from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, TrainConfig
from repro.core.engine import TrainingEngine


def topo():
    return ClusterTopology.build(
        cores=[8, 8, 8, 8], bandwidth=[20.0] * 4,
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )


def config():
    return TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=320, test_size=80, eval_subset=80, initial_lbs=8,
        gbs=GbsConfig(update_period_s=8.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=15),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
    )


class TestOverlayWithChurn:
    def test_ring_survives_neighbor_departure(self):
        """When a ring neighbour leaves, the worker's peer set shrinks
        to the remaining neighbour and training continues (the overlay
        is intersected with the active set)."""
        sched = MembershipSchedule(
            [(10.0, 1, "leave"), (25.0, 1, "join")], n_workers=4
        )
        engine = TrainingEngine(
            config(), topo(), seed=0,
            membership=sched, peer_graph=PeerGraph.ring(4),
        )
        engine.advance_to(15.0)
        # worker 0's ring neighbours are {1, 3}; with 1 gone only 3 remains
        assert engine.active_peers(0) == [3]
        res = engine.run(45.0)
        assert all(it > 10 for w, it in enumerate(res.iterations) if w != 1)
        assert res.final_mean_accuracy() > 0.3

    def test_peers_restored_after_rejoin(self):
        sched = MembershipSchedule(
            [(10.0, 1, "leave"), (20.0, 1, "join")], n_workers=4
        )
        engine = TrainingEngine(
            config(), topo(), seed=0,
            membership=sched, peer_graph=PeerGraph.ring(4),
        )
        engine.advance_to(30.0)
        assert engine.active_peers(0) == [1, 3]

    def test_traffic_respects_both_restrictions(self):
        sched = MembershipSchedule([(8.0, 2, "leave")], n_workers=4)
        pg = PeerGraph.ring(4)
        engine = TrainingEngine(
            config(), topo(), seed=0, membership=sched, peer_graph=pg,
        )
        res = engine.run(30.0)
        for (src, dst) in res.link_bytes:
            assert dst in pg.neighbors(src)
