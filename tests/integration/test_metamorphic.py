"""Metamorphic tests: known transformations with predictable effects.

Each test runs a small experiment twice with one physical knob changed
and asserts the directional consequence — the level of validation a
simulator needs beyond unit tests on its parts.
"""


from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
from repro.core.engine import TrainingEngine

CFG = TrainConfig(
    model="mlp",
    model_kwargs={"in_dim": 576, "hidden": (32,)},
    train_size=240,
    test_size=60,
    eval_subset=60,
    initial_lbs=8,
    system="baseline",
    gbs=GbsConfig(enabled=False),
    lbs=LbsConfig(enabled=False),
    maxn=MaxNConfig(enabled=False),
    dkt=DktConfig(enabled=False),
    weighted_update=False,
    eval_period_iters=25,
)


def run(cores, bandwidth, *, horizon=30.0, cfg=CFG, **topo_kw):
    topo = ClusterTopology.build(
        cores=cores, bandwidth=bandwidth,
        per_core_rate=16.0, overhead=0.02, jitter=0.0, **topo_kw,
    )
    return TrainingEngine(cfg, topo, seed=0).run(horizon)


class TestComputeScaling:
    def test_faster_cores_more_iterations(self):
        slow = run([4, 4, 4], [50.0] * 3)
        fast = run([16, 16, 16], [50.0] * 3)
        assert sum(fast.iterations) > sum(slow.iterations)

    def test_single_straggler_gates_lockstep(self):
        balanced = run([8, 8, 8], [50.0] * 3)
        gated = run([8, 8, 1], [50.0] * 3)
        # all workers slow down to the straggler's pace under lockstep
        assert gated.iterations[0] < balanced.iterations[0]


class TestBandwidthScaling:
    def test_more_bandwidth_never_fewer_iterations(self):
        thin = run([8, 8, 8], [1.0] * 3)
        fat = run([8, 8, 8], [100.0] * 3)
        assert sum(fat.iterations) >= sum(thin.iterations)

    def test_comm_bound_regime_is_bandwidth_limited(self):
        # At 0.5 Mbps the model (0.3 MB dense) takes ~5 s per transfer;
        # lockstep iteration rate must be near the transfer rate, not
        # the compute rate.
        thin = run([8, 8, 8], [0.5] * 3, horizon=60.0)
        compute_only_iters = 60.0 / (0.02 + 8 / 128)
        assert sum(thin.iterations) / 3 < 0.25 * compute_only_iters


class TestHorizonScaling:
    def test_double_horizon_roughly_doubles_iterations(self):
        short = run([8, 8, 8], [50.0] * 3, horizon=20.0)
        long = run([8, 8, 8], [50.0] * 3, horizon=40.0)
        ratio = sum(long.iterations) / max(1, sum(short.iterations))
        assert 1.7 < ratio < 2.3


class TestPayloadScaling:
    def test_smaller_maxn_floor_sends_fewer_bytes(self):
        cfg_small = CFG.with_(
            system="dlion", maxn=MaxNConfig(fixed_n=1.0),
        )
        cfg_big = CFG.with_(
            system="dlion", maxn=MaxNConfig(fixed_n=100.0),
        )
        small = run([8, 8, 8], [50.0] * 3, cfg=cfg_small)
        big = run([8, 8, 8], [50.0] * 3, cfg=cfg_big)
        small_bpi = sum(small.link_bytes.values()) / max(1, sum(small.iterations))
        big_bpi = sum(big.link_bytes.values()) / max(1, sum(big.iterations))
        assert small_bpi < 0.25 * big_bpi

    def test_budget_fraction_halves_payloads(self):
        cfg_full = CFG.with_(system="dlion", maxn=MaxNConfig())
        cfg_half = CFG.with_(system="dlion", maxn=MaxNConfig(budget_fraction=0.25))
        # constrained links so the budget binds
        full = run([8, 8, 8], [0.8] * 3, cfg=cfg_full)
        half = run([8, 8, 8], [0.8] * 3, cfg=cfg_half)
        full_bpi = sum(full.link_bytes.values()) / max(1, sum(full.iterations))
        half_bpi = sum(half.link_bytes.values()) / max(1, sum(half.iterations))
        assert half_bpi < full_bpi
