"""Integration tests for elastic membership during training."""

import pytest

from repro.cluster.membership import MembershipSchedule
from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
from repro.core.engine import TrainingEngine


def topo():
    return ClusterTopology.build(
        cores=[8, 8, 4, 2], bandwidth=[20.0, 20.0, 10.0, 5.0],
        per_core_rate=16.0, overhead=0.02, jitter=0.0,
    )


def config(system="dlion", **kw):
    base = dict(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        train_size=320,
        test_size=80,
        eval_subset=80,
        initial_lbs=8,
        gbs=GbsConfig(update_period_s=8.0),
        lbs=LbsConfig(probe_batches=(4, 8), probe_repeats=1, profile_period_iters=15),
        dkt=DktConfig(period_iters=10),
        eval_period_iters=10,
        system=system,
    )
    if system != "dlion":
        base.update(
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            maxn=MaxNConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
    base.update(kw)
    return TrainConfig(**base)


class TestLeaveAndRejoin:
    def test_training_survives_a_departure(self):
        sched = MembershipSchedule([(10.0, 3, "leave")], n_workers=4)
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        res = engine.run(40.0)
        # survivors keep iterating well past the departure
        assert all(res.iterations[w] > 20 for w in range(3))
        assert res.final_mean_accuracy() > 0.3
        assert res.active_workers.values == [4.0, 3.0]

    def test_departed_worker_stops_iterating(self):
        sched = MembershipSchedule([(10.0, 3, "leave")], n_workers=4)
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        engine.advance_to(12.0)
        iters_at_leave = engine.workers[3].iteration
        engine.advance_to(40.0)
        assert engine.workers[3].iteration <= iters_at_leave + 1

    def test_lbs_redistributes_to_survivors(self):
        sched = MembershipSchedule([(15.0, 0, "leave")], n_workers=4)
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        res = engine.run(45.0)
        # Worker 0 held the largest share (8 fast cores); after it
        # leaves, the survivors split the same GBS so their LBS grows.
        w1 = res.lbs[1]
        before = w1.value_at(14.0)
        after = w1.value_at(44.0)
        assert after > before

    def test_rejoin_bootstraps_and_resumes(self):
        sched = MembershipSchedule(
            [(10.0, 3, "leave"), (25.0, 3, "join")], n_workers=4
        )
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        res = engine.run(60.0)
        w3 = engine.workers[3]
        assert w3.active
        assert w3.iteration > 0
        # the join pulled a weight snapshot from a peer
        assert w3.dkt.merges_applied >= 1
        assert res.active_workers.values == [4.0, 3.0, 4.0]

    @pytest.mark.parametrize("system", ["baseline", "hop", "ako", "gaia"])
    def test_baseline_systems_survive_churn(self, system):
        """Even the lockstep Baseline must not deadlock when a peer
        disappears: the active-set rebuild drops the missing peer from
        every sync gate."""
        sched = MembershipSchedule(
            [(8.0, 2, "leave"), (20.0, 2, "join")], n_workers=4
        )
        engine = TrainingEngine(config(system), topo(), seed=0, membership=sched)
        res = engine.run(40.0)
        for w in (0, 1, 3):
            assert res.iterations[w] > 15

    def test_rejoiner_keeps_learning_after_bootstrap(self):
        sched = MembershipSchedule(
            [(10.0, 3, "leave"), (20.0, 3, "join")], n_workers=4
        )
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        res = engine.run(60.0)
        acc3 = res.accuracy[3]
        assert acc3.values[-1] > 0.3

    def test_schedule_cluster_size_mismatch(self):
        sched = MembershipSchedule([(10.0, 3, "leave")], n_workers=6)
        with pytest.raises(ValueError):
            TrainingEngine(config(), topo(), seed=0, membership=sched)

    def test_schedule_below_two_workers_rejected(self):
        sched = MembershipSchedule(
            [(5.0, 0, "leave"), (6.0, 1, "leave"), (7.0, 2, "leave")], n_workers=4
        )
        with pytest.raises(ValueError):
            TrainingEngine(config(), topo(), seed=0, membership=sched)


class TestMessagesToOffline:
    def test_in_flight_messages_to_departed_worker_dropped(self):
        sched = MembershipSchedule([(10.0, 3, "leave")], n_workers=4)
        engine = TrainingEngine(config(), topo(), seed=0, membership=sched)
        engine.run(40.0)
        w3 = engine.workers[3]
        received_while_active = w3.stats_grad_msgs_received
        # nothing should have been delivered after departure: drain any
        # stragglers and re-check
        engine.clock.run(max_events=10_000)
        assert w3.stats_grad_msgs_received == received_while_active
