"""Every example must at least parse and compile.

Full example runs take minutes; this guarantees they cannot rot
syntactically or import-break. (`quickstart.py` is additionally executed
with a tiny horizon as the one true end-to-end example check.)
"""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Importing the example module must not fail (no __main__ side
    effects run because every example guards them)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")
