#!/usr/bin/env python
"""Gossip-style partial exchange: DLion over sparse peer overlays.

The paper's workers exchange gradients with *every* peer. This example
runs the same DLion stack over four overlays — full mesh, a random
3-regular graph, a ring, and a star — and reports accuracy against the
bytes actually put on the wire. Sparse regular overlays typically match
the mesh at a fraction of the traffic; the star pays for its hub
bottleneck.

Run:  python examples/gossip_overlays.py
"""

from repro import ClusterTopology, TrainConfig, TrainingEngine
from repro.cluster.peergraph import PeerGraph
from repro.core.config import DktConfig
from repro.experiments.reporting import format_table

HORIZON = 240.0


def main() -> None:
    overlays = [
        ("full mesh", PeerGraph.full_mesh(6)),
        ("3-regular", PeerGraph.k_regular(6, 3, seed=0)),
        ("ring", PeerGraph.ring(6)),
        ("star", PeerGraph.star(6)),
    ]
    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        system="dlion",
        dkt=DktConfig(period_iters=25),
    )
    rows = []
    for label, overlay in overlays:
        topology = ClusterTopology.build(
            cores=[24] * 6, bandwidth=[3.3] * 6,  # constrained homogeneous WAN
        )
        result = TrainingEngine(
            config, topology, seed=0, peer_graph=overlay
        ).run(HORIZON)
        rows.append(
            [
                label,
                overlay.edges,
                overlay.diameter(),
                result.final_mean_accuracy(),
                round(sum(result.link_bytes.values()) / 1e6, 1),
            ]
        )
        print(f"ran {label}")

    print()
    print(format_table(
        ["overlay", "edges", "diameter", "accuracy", "MB on wire"], rows
    ))


if __name__ == "__main__":
    main()
