#!/usr/bin/env python
"""Elastic micro-clouds: workers leave and rejoin mid-training.

The paper scopes DLion to a fixed worker set; this repository's
elastic-membership extension scripts churn with a
:class:`~repro.cluster.membership.MembershipSchedule`. When a worker
leaves, the LBS controller redistributes the global batch over the
survivors and every sync gate forgets the missing peer; when it
rejoins, it bootstraps fresh weights through a DKT pull and resumes.

Run:  python examples/elastic_cluster.py
"""

from repro import ClusterTopology, TrainConfig, TrainingEngine
from repro.cluster.membership import MembershipSchedule
from repro.core.config import DktConfig

HORIZON = 300.0


def main() -> None:
    topology = ClusterTopology.build(
        cores=[24, 24, 12, 12, 6, 6],
        bandwidth=[8.0, 8.0, 5.0, 5.0, 3.0, 3.0],
    )
    # Worker 0 (the strongest) drops out a third of the way in and
    # returns for the final stretch; worker 5 flaps briefly.
    schedule = MembershipSchedule(
        [
            (100.0, 0, "leave"),
            (200.0, 0, "join"),
            (150.0, 5, "leave"),
            (180.0, 5, "join"),
        ],
        n_workers=6,
    )
    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        system="dlion",
        dkt=DktConfig(period_iters=25),
    )
    engine = TrainingEngine(config, topology, seed=0, membership=schedule)
    result = engine.run(HORIZON)

    print("active workers over time:")
    for t, n in zip(result.active_workers.times, result.active_workers.values):
        print(f"  t={t:6.1f}s  active={int(n)}")
    print("\nLBS of worker 1 (absorbs the leavers' share):")
    for t in (90, 130, 190, 290):
        print(f"  t={t:4d}s  LBS={int(result.lbs[1].value_at(t))}")
    print(f"\nfinal accuracy : {result.final_mean_accuracy():.3f}")
    print(f"worker 0 iters : {result.iterations[0]} (left 100s-200s)")
    print(f"worker 1 iters : {result.iterations[1]} (never left)")
    print(f"DKT merges     : {result.dkt_merges} (includes the join bootstraps)")


if __name__ == "__main__":
    main()
