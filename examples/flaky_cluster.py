#!/usr/bin/env python
"""Train through random resource faults (unplanned interference).

Table 3's dynamic environments script *planned* resource phases; this
example injects *unplanned* Poisson-arriving degradations on every
worker's compute and every link's bandwidth, then compares DLion with
the lockstep Baseline. DLion's periodic re-profiling and per-link
budget fitting absorb the interference; the Baseline stalls on whoever
is currently degraded.

Run:  python examples/flaky_cluster.py
"""

import numpy as np

from repro import TrainConfig, TrainingEngine
from repro.cluster.compute import ComputeProfile
from repro.cluster.faults import flaky_capacities
from repro.cluster.network import BandwidthMatrix
from repro.cluster.topology import ClusterTopology
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig
from repro.experiments.reporting import format_table

HORIZON = 300.0


def build_topology(seed: int) -> ClusterTopology:
    rng = np.random.default_rng(seed)
    cores = flaky_capacities(
        [24] * 6, rng, horizon=HORIZON, rate=0.01, severity=(0.2, 0.6),
        mean_duration=40.0,
    )
    bandwidths = flaky_capacities(
        [6.0] * 6, rng, horizon=HORIZON, rate=0.008, severity=(0.3, 0.7),
        mean_duration=50.0,
    )
    return ClusterTopology(
        compute=[ComputeProfile(c, per_core_rate=8.0) for c in cores],
        network=BandwidthMatrix.from_worker_capacity(bandwidths),
    )


def main() -> None:
    base = dict(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        initial_lbs=32,
    )
    off = dict(
        gbs=GbsConfig(enabled=False),
        lbs=LbsConfig(enabled=False),
        maxn=MaxNConfig(enabled=False),
        dkt=DktConfig(enabled=False),
        weighted_update=False,
    )
    rows = []
    for system, extra in [
        ("dlion", {"dkt": DktConfig(period_iters=25),
                   "lbs": LbsConfig(profile_period_iters=15)}),
        ("baseline", off),
        ("ako", off),
    ]:
        cfg = TrainConfig(system=system, **base, **extra)
        result = TrainingEngine(cfg, build_topology(seed=42), seed=0).run(HORIZON)
        rows.append(
            [
                system,
                result.final_mean_accuracy(),
                min(result.iterations),
                round(max(result.wait_time), 1),
            ]
        )
        print(f"ran {system}")

    print("\nfaulty cluster: Poisson compute + bandwidth degradations")
    print(format_table(
        ["system", "accuracy", "min iters", "max wait (s)"], rows
    ))


if __name__ == "__main__":
    main()
