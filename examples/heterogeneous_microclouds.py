#!/usr/bin/env python
"""Compare DLion with the four baseline systems on heterogeneous micro-clouds.

Reruns a miniature of the paper's Fig. 11 experiment: all five systems
(DLion, Baseline, Ako, Gaia, Hop) train the same model in the
``Hetero SYS A`` environment — powerful workers have more bandwidth —
and we report the accuracy each system reaches within the time budget.

Run:  python examples/heterogeneous_microclouds.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import RunSpec, run_experiment

ENVIRONMENT = "Hetero SYS A"
SYSTEMS = ("dlion", "baseline", "ako", "gaia", "hop")
HORIZON = 240.0  # simulated seconds (short demo; benches run longer)


def main() -> None:
    rows = []
    for system in SYSTEMS:
        result = run_experiment(
            RunSpec(environment=ENVIRONMENT, system=system, seed=0, horizon=HORIZON)
        )
        rows.append(
            [
                system,
                result.final_mean_accuracy(),
                result.accuracy_deviation_at(HORIZON),
                min(result.iterations),
                max(result.iterations),
                round(sum(result.link_bytes.values()) / 1e6, 1),
            ]
        )
        print(f"ran {system}...")

    print()
    print(f"environment: {ENVIRONMENT}, horizon {HORIZON:.0f} simulated seconds")
    print(
        format_table(
            ["system", "accuracy", "worker std", "min iters", "max iters", "MB sent"],
            rows,
        )
    )
    print()
    best = max(rows, key=lambda r: r[1])
    print(f"winner: {best[0]} at {best[1]:.3f} accuracy")


if __name__ == "__main__":
    main()
