#!/usr/bin/env python
"""Six micro-clouds in six Amazon regions, linked by the paper's Table 2.

Each worker lives in a different AWS region; every directed link uses
the measured inter-region bandwidth from the paper (Virginia-Oregon at
190 Mbps down to Ireland-Seoul at 30 Mbps). DLion's per-link
prioritized gradient exchange fits a different Max-N to each link, so
slow routes carry only the most significant gradients.

Run:  python examples/wan_microclouds.py
"""

import numpy as np

from repro import TrainConfig, TrainingEngine
from repro.cluster.compute import ComputeProfile
from repro.cluster.network import AWS_REGIONS, BandwidthMatrix
from repro.cluster.topology import ClusterTopology
from repro.experiments.reporting import format_table

HORIZON = 240.0
# Scale Table 2 down to this demo model's wire size (see DESIGN.md §2's
# wire-scaling rule; the runner does this automatically for benches).
WIRE_SCALE = 0.33 / 5.0 * 0.2


def main() -> None:
    region_ids = list(range(6))  # worker i in region i
    matrix = BandwidthMatrix.from_regions(region_ids, lan_mbps=1000.0)
    # apply the wire scaling by rebuilding with scaled values
    spec = [
        [
            matrix.link(i, j).bandwidth_at(0.0) * WIRE_SCALE if i != j else 1.0
            for j in range(6)
        ]
        for i in range(6)
    ]
    topology = ClusterTopology(
        compute=[ComputeProfile(24, per_core_rate=8.0) for _ in range(6)],
        network=BandwidthMatrix(spec),
    )

    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        system="dlion",
    )
    result = TrainingEngine(config, topology, seed=0).run(HORIZON)

    rows = []
    for dst in range(1, 6):
        chosen = result.link_chosen_n.get((0, dst))
        entries = result.link_entries.get((0, dst))
        rows.append(
            [
                f"{AWS_REGIONS[0]} -> {AWS_REGIONS[dst]}",
                round(spec[0][dst] / WIRE_SCALE),
                float(np.mean(chosen.values)) if chosen else None,
                int(np.mean(entries.values)) if entries else None,
            ]
        )
    print("per-link adaptation from the Virginia worker:")
    print(
        format_table(
            ["link", "Table 2 Mbps", "mean chosen N", "mean entries/msg"], rows
        )
    )
    print(f"\nfinal accuracy: {result.final_mean_accuracy():.3f} "
          f"after {result.epochs:.1f} epochs")


if __name__ == "__main__":
    main()
