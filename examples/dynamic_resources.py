#!/usr/bin/env python
"""Watch DLion adapt to resources that change while training runs.

Compute capacity and network bandwidth follow piecewise schedules (the
simulator's analogue of the paper's ``stress`` and ``tc`` emulation):

* cores per worker shift twice during the run;
* every link's bandwidth follows a 30 <-> 100 Mbps square wave.

The script prints the local batch size chosen by the LBS controller and
the partial-gradient size chosen by the transmission-speed-assurance
module over time — the live versions of the paper's Figs. 19 and 20.

Run:  python examples/dynamic_resources.py
"""

import numpy as np

from repro import TrainConfig, TrainingEngine
from repro.cluster.compute import ComputeProfile
from repro.cluster.network import BandwidthMatrix
from repro.cluster.topology import ClusterTopology
from repro.cluster.traces import PiecewiseTrace, square_wave
from repro.core.config import DktConfig, GbsConfig, LbsConfig

HORIZON = 300.0


def build_topology() -> ClusterTopology:
    # Compute: homogeneous 24 cores, then a heterogeneous phase, then
    # everyone degraded to 8 cores.
    schedules = [
        [(0.0, 24), (100.0, 24), (200.0, 8)],
        [(0.0, 24), (100.0, 24), (200.0, 8)],
        [(0.0, 24), (100.0, 12), (200.0, 8)],
        [(0.0, 24), (100.0, 12), (200.0, 8)],
        [(0.0, 24), (100.0, 4), (200.0, 8)],
        [(0.0, 24), (100.0, 4), (200.0, 8)],
    ]
    compute = [ComputeProfile(PiecewiseTrace(s), per_core_rate=8.0) for s in schedules]

    # Network: all links ride the same square wave (values scaled down
    # to match the demo model's small wire size).
    wave = square_wave(2.0, 6.6, period=75.0, horizon=HORIZON)
    spec = [[wave for _ in range(6)] for _ in range(6)]
    return ClusterTopology(compute=compute, network=BandwidthMatrix(spec))


def main() -> None:
    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        initial_lbs=32,
        system="dlion",
        gbs=GbsConfig(enabled=False),  # pin GBS so adaptation is easy to read
        lbs=LbsConfig(profile_period_iters=10),
        dkt=DktConfig(enabled=False),
    )
    engine = TrainingEngine(config, build_topology(), seed=0)
    result = engine.run(HORIZON)

    print("time | cores(w0/w2/w4) |  LBS per worker            | entries/msg on 0->1")
    entries = result.link_entries[(0, 1)]
    times, values = entries.as_arrays()
    for t in np.arange(25.0, HORIZON + 1, 25.0):
        lbs = [int(s.value_at(t)) for s in result.lbs]
        mask = (times >= t - 25) & (times < t)
        mean_entries = int(values[mask].mean()) if mask.any() else 0
        cores = [
            int(engine.topology.compute[i].cores.value_at(t)) for i in (0, 2, 4)
        ]
        print(
            f"{t:4.0f} | {cores[0]:2d}/{cores[1]:2d}/{cores[2]:2d}          | "
            f"{str(lbs):26s} | {mean_entries}"
        )
    print(f"\nfinal accuracy: {result.final_mean_accuracy():.3f}")


if __name__ == "__main__":
    main()
