#!/usr/bin/env python
"""Write your own distributed-DL system as a DLion framework plugin.

The paper's Table 1 argues DLion is a *generic framework*: Baseline,
Hop, Gaia, and Ako each fit in a handful of plugin lines. This example
writes a brand-new system the same way — "StaleTopK": ship the top 5%
of gradient entries, accumulate the rest, under a loose staleness
bound — registers nothing, changes no framework code, and races it
against DLion and Baseline.

Run:  python examples/framework_plugin.py
"""

import numpy as np

import repro.baselines.registry as registry
from repro import ClusterTopology, TrainConfig, TrainingEngine
from repro.core.api import ExchangeStrategy, PartialGradients
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig
from repro.core.sync import BoundedPolicy
from repro.experiments.reporting import format_table


class StaleTopKStrategy(ExchangeStrategy):
    """Top-5% magnitude exchange with residual accumulation."""

    name = "stale-topk"

    def __init__(self, *, percent: float = 5.0, staleness: int = 8):
        super().__init__(BoundedPolicy(staleness))
        self.percent = percent
        self._residual = None

    # -- the single framework API this system overrides -----------------
    def generate_partial_gradients(self, ctx, grads):
        if self._residual is None:
            self._residual = {k: np.zeros_like(g) for k, g in grads.items()}
        payload = {}
        for name, g in grads.items():
            acc = self._residual[name]
            acc += g
            flat = acc.reshape(-1)
            k = max(1, int(flat.size * self.percent / 100))
            idx = np.argpartition(np.abs(flat), flat.size - k)[flat.size - k:]
            idx = np.sort(idx).astype(np.int64)
            payload[name] = (idx, flat[idx].copy())
            flat[idx] = 0.0  # shipped entries leave the residual
        return {dst: PartialGradients(kind="sparse", payload=payload) for dst in ctx.peers}


def install_plugin() -> None:
    """Hook the new system into the registry under its own name."""
    original = registry.create_strategy

    def patched(config, worker_id):
        if config.system == "stale-topk":
            return StaleTopKStrategy(**config.system_kwargs)
        return original(config, worker_id)

    registry.create_strategy = patched


def main() -> None:
    install_plugin()
    topology_spec = dict(cores=[24, 24, 12, 12, 6, 6], bandwidth=[4, 4, 2.5, 2.5, 1.5, 1.5])
    off = dict(
        gbs=GbsConfig(enabled=False),
        lbs=LbsConfig(enabled=False),
        maxn=MaxNConfig(enabled=False),
        dkt=DktConfig(enabled=False),
        weighted_update=False,
    )
    base = dict(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
    )
    rows = []
    for system, extra in [
        ("dlion", {"dkt": DktConfig(period_iters=25)}),
        ("baseline", off),
        ("stale-topk", off),
    ]:
        cfg = TrainConfig(system=system, **base, **extra)
        result = TrainingEngine(cfg, ClusterTopology.build(**topology_spec), seed=0).run(240.0)
        rows.append(
            [
                system,
                result.final_mean_accuracy(),
                min(result.iterations),
                round(sum(result.link_bytes.values()) / 1e6, 1),
            ]
        )
        print(f"ran {system}")

    print()
    print(format_table(["system", "accuracy", "min iters", "MB sent"], rows))
    print("\nplugin size: one overridden method — the Table 1 story.")


if __name__ == "__main__":
    main()
