#!/usr/bin/env python
"""Quickstart: train a model with DLion on a simulated micro-cloud.

Builds a 6-worker cluster with heterogeneous compute (24/24/12/12/6/6
cores) and constrained heterogeneous WAN links, trains a small model
with the full DLion stack (weighted dynamic batching, per-link
prioritized gradient exchange, direct knowledge transfer), and prints
the training outcome.

Run:  python examples/quickstart.py
"""

from repro import ClusterTopology, DktConfig, TrainConfig, TrainingEngine


def main() -> None:
    # The physical substrate: per-worker CPU cores and per-worker link
    # capacity in Mbps (a transfer is limited by the slower endpoint).
    topology = ClusterTopology.build(
        cores=[24, 24, 12, 12, 6, 6],
        bandwidth=[8.0, 8.0, 5.0, 5.0, 3.0, 3.0],
    )

    # The training job: everything is defaulted to the paper's settings
    # (Max N floor 0.85, DKT period 100 iterations, lambda = 0.75, ...).
    config = TrainConfig(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (128, 64)},
        dataset="cifar_like",
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        initial_lbs=32,
        system="dlion",
        # A shorter DKT period than the paper's 100 iterations, matched
        # to this demo's shorter run.
        dkt=DktConfig(period_iters=25),
    )

    engine = TrainingEngine(config, topology, seed=0)
    result = engine.run(horizon=240.0)  # simulated seconds

    print(f"simulated time : {result.horizon:.0f} s")
    print(f"iterations     : {result.iterations}")
    print(f"epochs         : {result.epochs:.1f}")
    print(f"final accuracy : {result.final_mean_accuracy():.3f} "
          f"(deviation across workers {result.accuracy_deviation_at(result.horizon):.4f})")
    print(f"global batch   : {int(result.gbs.values[0])} -> {int(result.gbs.values[-1])}")
    print(f"local batches  : {[int(s.values[-1]) for s in result.lbs]}")
    print(f"DKT merges     : {result.dkt_merges}")
    t70 = result.time_to_accuracy(0.70)
    print(f"time to 70%    : {'never' if t70 is None else f'{t70:.0f} s'}")


if __name__ == "__main__":
    main()
