"""The event-driven training engine.

Ties together the substrate (clock, compute profiles, links, queues)
and the per-worker logic: it builds the dataset shards, models, and
strategies; routes every message through the simulated links; ticks the
GBS controller; and records the run's time series into a
:class:`RunResult`.

The engine is deterministic for a ``(config, topology, seed)`` triple —
every random stream derives from the seed through :class:`RngPool`, and
the event clock breaks ties by scheduling order.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.chaos import ChaosPlan, LinkFault, LinkFaultInjector
from repro.cluster.membership import MembershipSchedule
from repro.cluster.messages import (
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.simclock import make_clock
from repro.cluster.topology import ClusterTopology
from repro.core.compute_pool import ComputePool
from repro.core.config import TrainConfig
from repro.core.gbs_controller import GbsController
from repro.core.run_metrics import RunMetrics
from repro.core.worker import Worker
from repro.nn.datasets import MinibatchSampler, SyntheticImageDataset
from repro.nn.models import build_model
from repro.obs import profile as _profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, THREAD_NAMES, TID_NET, TID_SYNC
from repro.utils.metrics import TimeSeries, accuracy_at_time
from repro.utils.rng import RngPool

__all__ = ["TrainingEngine", "RunResult"]

# Control-plane propagation delay for GBS announcements (seconds).
_GBS_ANNOUNCE_DELAY = 0.05


@dataclass
class RunResult:
    """Everything a run recorded, plus the paper's derived metrics.

    Run accounting lives in the attached :class:`MetricsRegistry`
    (``metrics``); the historical ``link_bytes`` / ``compute_time`` /
    ``wait_time`` attributes are kept as properties reading from the
    registry, so existing callers and a ``--metrics-out`` dump can
    never disagree.
    """

    n_workers: int
    horizon: float
    accuracy: list[TimeSeries] = field(default_factory=list)
    loss: list[TimeSeries] = field(default_factory=list)
    lbs: list[TimeSeries] = field(default_factory=list)
    gbs: TimeSeries = field(default_factory=TimeSeries)
    # Per ordered link: entries per gradient message and the chosen N.
    link_entries: dict[tuple[int, int], TimeSeries] = field(default_factory=dict)
    link_chosen_n: dict[tuple[int, int], TimeSeries] = field(default_factory=dict)
    iterations: list[int] = field(default_factory=list)
    dkt_merges: int = 0
    epochs: float = 0.0
    events: int = 0
    # Elastic-membership extension: active worker count over time.
    active_workers: TimeSeries = field(default_factory=TimeSeries)
    # The run's metric families (see docs/observability.md for the catalog).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def link_bytes(self) -> dict[tuple[int, int], int]:
        """Gradient-payload bytes shipped per ordered link."""
        counter = self.metrics.get("grad_bytes_total")
        if counter is None:
            return {}
        return {(src, dst): int(v) for (src, dst), v in counter.items()}

    def _per_worker_seconds(self, name: str) -> list[float]:
        counter = self.metrics.get(name)
        if counter is None:
            return [0.0] * self.n_workers
        return [counter.value(w) for w in range(self.n_workers)]

    @property
    def compute_time(self) -> list[float]:
        """Per-worker simulated seconds spent computing gradients."""
        return self._per_worker_seconds("compute_seconds_total")

    @property
    def wait_time(self) -> list[float]:
        """Per-worker simulated seconds blocked on the sync gate."""
        return self._per_worker_seconds("sync_wait_seconds_total")

    def wait_fraction(self, worker: int) -> float:
        """Share of the horizon worker ``worker`` spent sync-blocked."""
        return self.wait_time[worker] / max(self.horizon, 1e-9)

    # -- paper metrics -------------------------------------------------
    def worker_accuracy_at(self, t: float) -> list[float]:
        """Per-worker best accuracy achieved by time ``t``."""
        return [accuracy_at_time(s, t) if len(s) else 0.0 for s in self.accuracy]

    def mean_accuracy_at(self, t: float) -> float:
        """Metric 1: cluster-average accuracy achieved by time ``t``."""
        return float(np.mean(self.worker_accuracy_at(t)))

    def accuracy_deviation_at(self, t: float) -> float:
        """Fig. 17's measure: std-dev of per-worker accuracy at ``t``."""
        return float(np.std(self.worker_accuracy_at(t)))

    def mean_accuracy_series(self) -> TimeSeries:
        """Cluster-average best-so-far accuracy on the union time grid.

        A single merged sweep: every worker's samples are walked once
        while a running per-worker best is maintained, so the cost is
        O(T·W + T log T) over T grid points instead of re-masking every
        series at every grid point (O(T²·W)).
        """
        out = TimeSeries()
        if not self.accuracy:
            return out
        grid = sorted({t for s in self.accuracy for t in s.times})
        series = [(s.times, s.values) for s in self.accuracy]
        cursor = [0] * len(series)
        best = [0.0] * len(series)
        n = len(series)
        for t in grid:
            bound = t + 1e-12  # the tolerance accuracy_at_time applies
            for w, (times, values) in enumerate(series):
                i = cursor[w]
                b = best[w]
                while i < len(times) and times[i] <= bound:
                    if values[i] > b:
                        b = values[i]
                    i += 1
                cursor[w] = i
                best[w] = b
            out.append(t, sum(best) / n)
        return out

    def time_to_accuracy(self, target: float) -> float | None:
        """Metric 2: first time the cluster-average accuracy hits ``target``."""
        series = self.mean_accuracy_series()
        times, values = series.as_arrays()
        hits = np.nonzero(values >= target - 1e-12)[0]
        if hits.size == 0:
            return None
        return float(times[hits[0]])

    def final_mean_accuracy(self) -> float:
        """Cluster-mean accuracy at the end of the run (metric 1)."""
        return self.mean_accuracy_at(self.horizon)


class TrainingEngine:
    """Builds and runs one distributed training simulation."""

    def __init__(
        self,
        config: TrainConfig,
        topology: ClusterTopology,
        *,
        seed: int = 0,
        dataset: SyntheticImageDataset | None = None,
        membership=None,
        peer_graph=None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        profiler=None,
        compute_threads: int = 1,
        chaos: ChaosPlan | None = None,
        clock=None,
    ):
        self.config = config
        self.topology = topology
        self.n_workers = topology.n_workers
        self.rng_pool = RngPool(seed)
        # Calendar-queue scheduler by default; REPRO_SIMCLOCK=heap (or an
        # explicit ``clock``) swaps in the frozen binary-heap reference —
        # the hook the golden parity suites and bench_dispatch use.
        self.clock = clock if clock is not None else make_clock()
        self.stopped = False

        # Parallel compute stage: workers' numeric work runs on a thread
        # pool, speculatively overlapped with event processing. Results
        # are byte-identical for any thread count (see core.compute_pool);
        # 1 keeps everything inline on the event loop.
        self.compute_pool = ComputePool(self, compute_threads)

        # Observability: the tracer defaults to a no-op (hot paths pay
        # one ``tracer.enabled`` check); the metrics registry is always
        # live because RunResult's accounting reads from it; a profiler,
        # when given, is activated around run()/advance_to().
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler
        self._register_metrics()
        if self.tracer.enabled:
            self._emit_trace_metadata()

        # Elastic membership (extension; None = the paper's fixed set).
        if membership is not None and membership.n_workers != self.n_workers:
            raise ValueError("membership schedule sized for a different cluster")

        # Unified chaos plan (docs/robustness.md): crash/restart events
        # lower onto the membership machinery (leave + join with the DKT
        # bootstrap pull), so recovery is seed-deterministic; link faults
        # are injected at delivery time through ``_deliver``.
        self.chaos = chaos
        self._fault_injector: LinkFaultInjector | None = None
        self._active_blackouts = 0
        if chaos is not None:
            chaos.validate(self.n_workers)
            crash_events = chaos.membership_events()
            if crash_events:
                merged = list(crash_events)
                if membership is not None:
                    merged.extend(
                        (ev.time, ev.worker, ev.action)
                        for ev in membership.events
                    )
                try:
                    membership = MembershipSchedule(merged, self.n_workers)
                except ValueError as exc:
                    raise ValueError(
                        f"chaos plan conflicts with the membership "
                        f"schedule: {exc}"
                    ) from None
            if chaos.link_faults:
                self._fault_injector = LinkFaultInjector(
                    chaos, self.rng_pool.get("chaos")
                )

        self.membership = membership
        self.active: set[int] = set(range(self.n_workers))
        if membership is not None:
            if membership.min_active() < 2:
                raise ValueError("schedule drops below two active workers")

        # Partial exchange overlay (extension; None = all-to-all).
        self.peer_graph = peer_graph
        if peer_graph is not None and peer_graph.n_workers != self.n_workers:
            raise ValueError("peer graph sized for a different cluster")
        # Sorted-active-members cache: recompute_lbs and active_peers hit
        # this on every iteration; invalidated on membership churn.
        self._active_members: list[int] | None = None

        # Dataset (shared generation, per-worker shards).
        if dataset is None:
            dataset = self._build_dataset()
        self.dataset = dataset
        shards = dataset.shards(self.n_workers, mode=config.shard_mode)
        self._eval_x = dataset.test_x[: config.eval_subset]
        self._eval_y = dataset.test_y[: config.eval_subset]

        # GBS controller (shared deterministic schedule, §3.2).
        self.gbs_controller = GbsController(
            config.gbs,
            initial_gbs=config.initial_lbs * self.n_workers,
            train_size=dataset.train_size,
        )

        # Workers.
        self.workers: list[Worker] = []
        for w in range(self.n_workers):
            model = build_model(
                config.model, self.rng_pool.get("model-init"), **config.model_kwargs
            )
            sampler = MinibatchSampler(shards[w], self.rng_pool.get(f"sampler/{w}"))
            monitor = NetworkResourceMonitor(w, topology.network)
            strategy = self._build_strategy(w)
            worker = Worker(
                worker_id=w,
                engine=self,
                model=model,
                sampler=sampler,
                strategy=strategy,
                monitor=monitor,
                config=config,
                rng=self.rng_pool.get(f"worker/{w}"),
            )
            strategy.setup(worker)
            self.workers.append(worker)

        # Result recording.
        self.result = RunResult(
            n_workers=self.n_workers, horizon=0.0, metrics=self.metrics
        )
        self.result.accuracy = [TimeSeries() for _ in range(self.n_workers)]
        self.result.loss = [TimeSeries() for _ in range(self.n_workers)]
        self.result.lbs = [TimeSeries() for _ in range(self.n_workers)]
        self.result.iterations = [0] * self.n_workers
        self.result.gbs.append(0.0, self.gbs_controller.gbs)
        self.result.active_workers.append(0.0, len(self.active))
        self._g_gbs.set(self.gbs_controller.gbs)
        self._g_active.set(len(self.active))
        for w in range(self.n_workers):
            self.result.lbs[w].append(0.0, config.initial_lbs)
            self._g_lbs.set(config.initial_lbs, w)

        self._started = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        """Attach the shared run metric catalog (docs/observability.md).

        The families live in :class:`~repro.core.run_metrics.RunMetrics`
        so the live backend registers the identical catalog; the private
        aliases below are what workers reference on their hot paths.
        """
        rm = RunMetrics(self.metrics)
        self.run_metrics = rm
        self._c_grad_bytes = rm.c_grad_bytes
        self._c_grad_msgs = rm.c_grad_msgs
        self._c_weight_bytes = rm.c_weight_bytes
        self._h_chosen_n = rm.h_chosen_n
        self._c_iterations = rm.c_iterations
        self._h_iteration_s = rm.h_iteration_s
        self._h_wait_s = rm.h_wait_s
        self._c_wait_total = rm.c_wait_total
        self._c_compute_total = rm.c_compute_total
        self._c_dkt_merges = rm.c_dkt_merges
        self._c_dkt_pulls = rm.c_dkt_pulls
        self._g_gbs = rm.g_gbs
        self._g_lbs = rm.g_lbs
        self._g_queue_depth = rm.g_queue_depth
        self._c_queue_dropped = rm.c_queue_dropped
        self._g_active = rm.g_active
        self._c_events = rm.c_events
        self._c_chaos_dropped = rm.c_chaos_dropped
        self._g_partition = rm.g_partition
        self._c_profile_seconds = rm.c_profile_seconds
        self._c_profile_calls = rm.c_profile_calls

    def _emit_trace_metadata(self) -> None:
        """Name one trace process per worker plus the cluster pseudo-process."""
        tracer = self.tracer
        for w in range(self.n_workers):
            tracer.set_process_name(w, f"worker {w}")
            for tid, name in THREAD_NAMES.items():
                tracer.set_thread_name(w, tid, name)
        tracer.set_process_name(self.cluster_pid, "cluster")
        tracer.set_thread_name(self.cluster_pid, 0, "control")

    @property
    def cluster_pid(self) -> int:
        """Trace pid for cluster-wide events (one past the worker pids)."""
        return self.n_workers

    def _build_dataset(self) -> SyntheticImageDataset:
        rng = self.rng_pool.get("dataset")
        cfg = self.config
        if cfg.dataset == "cifar_like":
            return SyntheticImageDataset.cifar_like(
                rng,
                train_size=cfg.train_size,
                test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        if cfg.dataset == "imagenet_like":
            return SyntheticImageDataset.imagenet_like(
                rng,
                train_size=cfg.train_size,
                test_size=cfg.test_size,
                **cfg.dataset_kwargs,
            )
        raise ValueError(f"unknown dataset preset {cfg.dataset!r}")

    def _build_strategy(self, worker_id: int):
        # Imported lazily: the registry depends on core.api.
        from repro.baselines.registry import create_strategy

        return create_strategy(self.config, worker_id)

    # ------------------------------------------------------------------
    # Physics queries (used by workers)
    # ------------------------------------------------------------------
    def iteration_duration(self, worker: int, batch: int, t: float) -> float:
        """Simulated duration of one gradient iteration (compute model)."""
        return self.topology.compute[worker].iter_time(
            batch, t, self.rng_pool.get(f"jitter/{worker}")
        )

    # ------------------------------------------------------------------
    # Message transport (everything crosses the simulated links)
    # ------------------------------------------------------------------
    def _deliver(
        self, src: int, dst: int, nbytes: int, handler, msg, *, kind: str = "msg"
    ) -> None:
        if dst not in self.active:
            return  # destination is offline; the message is lost
        extra = 0.0
        if self._fault_injector is not None:
            verdict = self._fault_injector.on_send(src, dst, self.clock.now)
            if verdict is None:
                self._c_chaos_dropped.inc(1, src, dst)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "chaos-drop", src, TID_NET, self.clock.now,
                        cat="chaos", args={"dst": dst, "kind": kind},
                    )
                return
            extra = verdict
        arrival = extra + self.topology.network.enqueue_transfer(
            src, dst, nbytes, self.clock.now
        )
        if self.tracer.enabled:
            # One span per transfer on the source worker's net-out
            # thread: enqueue -> delivery (queueing + serialization).
            self.tracer.complete(
                f"{kind}->{dst}",
                src,
                TID_NET,
                self.clock.now,
                arrival - self.clock.now,
                cat="net",
                args={"dst": dst, "bytes": int(nbytes)},
            )
        # Membership can change while the message is in flight; check
        # again at delivery time.
        self.clock.schedule(arrival, self._deliver_checked, dst, handler, msg)

    def _deliver_checked(self, dst: int, handler, msg) -> None:
        if dst in self.active:
            handler(msg)

    def send_gradients(
        self, src: int, dst: int, msg: GradientMessage, *, chosen_n: float | None
    ) -> None:
        """Ship a gradient message over the simulated link, recording stats."""
        nbytes = msg.wire_bytes()
        self._deliver(
            src, dst, nbytes, self.workers[dst].on_gradient_message, msg,
            kind="grad",
        )
        if self.config.record_link_stats:
            key = (src, dst)
            self._c_grad_bytes.inc(nbytes, src, dst)
            self._c_grad_msgs.inc(1, src, dst)
            self.result.link_entries.setdefault(key, TimeSeries()).append(
                self.clock.now, msg.num_entries()
            )
            if chosen_n is not None:
                self._h_chosen_n.observe(chosen_n, f"{src}->{dst}")
                self.result.link_chosen_n.setdefault(key, TimeSeries()).append(
                    self.clock.now, chosen_n
                )
                if self.tracer.enabled:
                    self.tracer.counter(
                        f"chosen_n {src}->{dst}", src, self.clock.now,
                        {"n": round(chosen_n, 3)},
                    )

    def send_gradients_batch(
        self, src: int, items: list[tuple[int, GradientMessage, float | None]]
    ) -> None:
        """Ship one worker's same-instant gradient fan-out as a batch.

        ``items`` is ``[(dst, msg, chosen_n), ...]`` in destination
        order. When the network matrix is vector-mode and no fault
        injector is armed, the per-link arithmetic for every live
        destination runs as one vectorized call; trace spans, delivery
        scheduling, and link stats still run per destination in the
        original order, so traces, metrics, and event sequence numbers
        are byte-identical to the sequential path. Anything the batch
        cannot express exactly (chaos faults, egress queues, traced
        bandwidths) falls back to :meth:`send_gradients` per item.
        """
        network = self.topology.network
        if (
            len(items) < 2
            or self._fault_injector is not None
            or not getattr(network, "vectorized", False)
        ):
            for dst, msg, chosen_n in items:
                self.send_gradients(src, dst, msg, chosen_n=chosen_n)
            return
        now = self.clock.now
        active = self.active
        sizes = [msg.wire_bytes() for _dst, msg, _n in items]
        live = [i for i, (dst, _msg, _n) in enumerate(items) if dst in active]
        if live:
            arrivals = network.enqueue_transfers(
                src,
                [items[i][0] for i in live],
                [sizes[i] for i in live],
                now,
            )
        tracer = self.tracer
        tracing = tracer.enabled
        record = self.config.record_link_stats
        schedule = self.clock.schedule
        workers = self.workers
        k = 0
        for i, (dst, msg, chosen_n) in enumerate(items):
            nbytes = sizes[i]
            if dst in active:
                arrival = float(arrivals[k])
                k += 1
                if tracing:
                    tracer.complete(
                        f"grad->{dst}",
                        src,
                        TID_NET,
                        now,
                        arrival - now,
                        cat="net",
                        args={"dst": dst, "bytes": int(nbytes)},
                    )
                schedule(
                    arrival,
                    self._deliver_checked,
                    dst,
                    workers[dst].on_gradient_message,
                    msg,
                )
            if record:
                key = (src, dst)
                self._c_grad_bytes.inc(nbytes, src, dst)
                self._c_grad_msgs.inc(1, src, dst)
                self.result.link_entries.setdefault(key, TimeSeries()).append(
                    now, msg.num_entries()
                )
                if chosen_n is not None:
                    self._h_chosen_n.observe(chosen_n, f"{src}->{dst}")
                    self.result.link_chosen_n.setdefault(key, TimeSeries()).append(
                        now, chosen_n
                    )
                    if tracing:
                        tracer.counter(
                            f"chosen_n {src}->{dst}", src, now,
                            {"n": round(chosen_n, 3)},
                        )

    def send_control(self, src: int, dst: int, msg) -> None:
        """Route a control message to the destination worker's handler."""
        if isinstance(msg, DktRequestMessage):
            handler = self.workers[dst].on_dkt_request
        elif isinstance(msg, LossShareMessage):
            handler = self.workers[dst].on_loss_share
        elif isinstance(msg, RcpShareMessage):
            handler = self.workers[dst].on_rcp_share
        elif isinstance(msg, ControlMessage):
            handler = self.workers[dst].on_control_message
        else:
            raise TypeError(f"not a control message: {type(msg).__name__}")
        self._deliver(src, dst, msg.wire_bytes(), handler, msg, kind="ctrl")

    def send_weights(self, src: int, dst: int, msg: WeightMessage) -> None:
        """Ship a full weight snapshot (DKT payload) over the link."""
        nbytes = msg.wire_bytes()
        self._c_weight_bytes.inc(nbytes, src, dst)
        self._deliver(
            src, dst, nbytes, self.workers[dst].on_weight_message, msg,
            kind="weights",
        )

    def active_peers(self, worker: int) -> list[int]:
        """The peers a worker exchanges with: active, and (when a
        partial overlay is configured) adjacent in the peer graph.

        With an overlay this iterates the worker's *neighbourhood*, not
        the active set, so per-event peer bookkeeping costs O(degree)
        — independent of the cluster size (overlay edges never include
        the worker itself, so the result is unchanged from the dense
        scan)."""
        if self.peer_graph is not None:
            active = self.active
            return sorted(
                w for w in self.peer_graph.neighbors(worker) if w in active
            )
        return sorted(w for w in self.active if w != worker)

    def active_members(self) -> list[int]:
        """Sorted active worker ids, cached between membership changes.

        ``recompute_lbs`` needs the full member list on every GBS/RCP
        update; at 1,000 workers re-sorting the active set per call
        dominates, so the engine caches it and invalidates on churn."""
        members = self._active_members
        if members is None:
            members = self._active_members = sorted(self.active)
        return members

    def broadcast_rcp(self, src: int, rcp: float) -> None:
        """Share a worker's measured RCP with every active peer."""
        for dst in self.active_peers(src):
            self.send_control(src, dst, RcpShareMessage(sender=src, rcp=rcp))

    def broadcast_loss_share(self, src: int, iteration: int, avg_loss: float) -> None:
        """Share a worker's trailing-average loss with every active peer."""
        for dst in self.active_peers(src):
            self.send_control(
                src,
                dst,
                LossShareMessage(sender=src, iteration=iteration, avg_loss=avg_loss),
            )

    # ------------------------------------------------------------------
    # Elastic membership (extension)
    # ------------------------------------------------------------------
    def _apply_membership_event(self, event) -> None:
        from repro.cluster.messages import DktRequestMessage

        worker = self.workers[event.worker]
        self._active_members = None  # invalidate the sorted-members cache
        if event.action == "leave":
            self.active.discard(event.worker)
            worker.active = False
        else:
            self.active.add(event.worker)
            worker.active = True
            # Resync the rejoiner's iteration counter so bounded/lockstep
            # policies do not stall the cluster while it replays history.
            resume = max(
                (self.workers[w].iteration for w in self.active), default=0
            )
            worker.iteration = max(worker.iteration, resume)
            worker.sync_state.iteration = worker.iteration
        self.result.active_workers.append(self.clock.now, len(self.active))
        self._g_active.set(len(self.active))
        if self.tracer.enabled:
            self.tracer.instant(
                f"membership-{event.action}",
                self.cluster_pid,
                0,
                self.clock.now,
                cat="membership",
                args={"worker": event.worker, "active": len(self.active)},
                scope="g",
            )
        for w in self.active:
            self.workers[w].on_membership_change(self.active)
        if event.action == "join":
            # Bootstrap: pull fresh weights from the best-known active
            # peer (DKT mechanics double as the join protocol), then
            # resume training.
            target = worker.dkt.pull_target()
            if target is None or target not in self.active:
                candidates = [w for w in self.active if w != event.worker]
                target = candidates[0]
            self.send_control(
                event.worker,
                target,
                DktRequestMessage(sender=event.worker, iteration=worker.iteration),
            )
            worker.try_start_iteration()

    # ------------------------------------------------------------------
    # Chaos bookkeeping (gauge flips + recovery accounting)
    # ------------------------------------------------------------------
    def _schedule_chaos_markers(self) -> None:
        for f in self.chaos.blackout_windows():
            self.clock.schedule(f.start, self._blackout_edge, f, +1)
            self.clock.schedule(f.end, self._blackout_edge, f, -1)
        for c in self.chaos.crashes:
            if c.restart_after is not None:
                self.clock.schedule(
                    c.time + c.restart_after, self._record_recovery, c
                )

    def _blackout_edge(self, fault: "LinkFault", delta: int) -> None:
        self._active_blackouts += delta
        self._g_partition.set(self._active_blackouts)
        if self.tracer.enabled:
            self.tracer.instant(
                "blackout-start" if delta > 0 else "blackout-end",
                self.cluster_pid, 0, self.clock.now, cat="chaos",
                args={"src": fault.src, "dst": fault.dst,
                      "bidirectional": fault.bidirectional},
                scope="g",
            )

    def _record_recovery(self, c) -> None:
        # The sim's recovery takes exactly the plan's modelled downtime,
        # and a lowered leave/join destroys no state, so no iterations
        # are lost — the families are populated so sim and live runs
        # share one catalog (docs/robustness.md discusses the semantic
        # difference).
        self.run_metrics.c_worker_restarts.inc(1, c.worker)
        self.run_metrics.h_recovery_s.observe(c.restart_after, c.worker)

    # ------------------------------------------------------------------
    # Progress tracking & the GBS tick
    # ------------------------------------------------------------------
    def global_epoch(self) -> float:
        """Cluster-wide training progress: samples drawn / training size."""
        drawn = sum(w.sampler.samples_drawn for w in self.workers)
        return drawn / self.dataset.train_size

    def _gbs_tick(self) -> None:
        if self.stopped:
            return
        old = self.gbs_controller.gbs
        new = self.gbs_controller.maybe_update(self.global_epoch())
        if new != old:
            self.result.gbs.append(self.clock.now, new)
            self._g_gbs.set(new)
            if self.tracer.enabled:
                self.tracer.counter(
                    "gbs", self.cluster_pid, self.clock.now, {"gbs": new}
                )
                self.tracer.instant(
                    "gbs-update", self.cluster_pid, 0, self.clock.now,
                    cat="ctrl", args={"old": old, "new": new},
                )
            for w in self.workers:
                # Announcement reaches every worker after a short
                # control-plane delay.
                self.clock.schedule_in(_GBS_ANNOUNCE_DELAY, w.set_gbs, new)
        self.clock.schedule_in(self.config.gbs.update_period_s, self._gbs_tick)

    # ------------------------------------------------------------------
    # Recording hooks (called by workers)
    # ------------------------------------------------------------------
    def record_loss(self, worker: int, loss: float) -> None:
        """Record one iteration's training loss (and count the iteration)."""
        self.result.loss[worker].append(self.clock.now, loss)
        self.result.iterations[worker] += 1
        self._c_iterations.inc(1, worker)

    def record_lbs(self, worker: int, lbs: int) -> None:
        """Record a local-batch-size change for the Fig. 6/19 series."""
        self.result.lbs[worker].append(self.clock.now, lbs)
        self._g_lbs.set(lbs, worker)
        if self.tracer.enabled:
            self.tracer.counter("lbs", worker, self.clock.now, {"lbs": lbs})

    def record_dkt_merge(self, worker: int) -> None:
        """Count one applied direct-knowledge-transfer merge."""
        self.result.dkt_merges += 1
        self._c_dkt_merges.inc(1, worker)

    def evaluate_worker(self, worker: int) -> None:
        """Out-of-band accuracy measurement (costs no simulated time)."""
        _, acc = self.workers[worker].model.evaluate(self._eval_x, self._eval_y)
        self.result.accuracy[worker].append(self.clock.now, acc)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._started = True
        if self.config.gbs.enabled:
            self.clock.schedule_in(self.config.gbs.update_period_s, self._gbs_tick)
        if self.membership is not None:
            for event in self.membership.events:
                self.clock.schedule(event.time, self._apply_membership_event, event)
        if self.chaos is not None:
            self._schedule_chaos_markers()
        for w in self.workers:
            if self.config.lbs.enabled:
                cost = w.run_profiling()
                self.clock.schedule_in(cost, w.try_start_iteration)
            else:
                w.try_start_iteration()
        self.compute_pool.prefetch()

    def _profiled(self):
        """Activate this engine's profiler (no-op context when unset)."""
        if self.profiler is not None:
            return _profile.activate(self.profiler)
        return nullcontext()

    def run(self, horizon: float) -> RunResult:
        """Advance the simulation to ``horizon`` seconds and finalize."""
        self.advance_to(horizon)
        return self.finalize()

    def advance_to(self, horizon: float) -> None:
        """Pump simulated events up to ``horizon`` (without finalizing)."""
        if not self._started:
            self._start()
        with self._profiled():
            self.clock.run_until(horizon)

    def run_epochs(self, target_epochs: float, *, max_time: float = 1e6) -> RunResult:
        """Run until the cluster has processed ``target_epochs`` of data."""
        if not self._started:
            self._start()
        with self._profiled():
            while self.global_epoch() < target_epochs and self.clock.now < max_time:
                nxt = self.clock.peek_time()
                if nxt is None:
                    break
                self.clock.run_until(
                    min(max_time, max(nxt, self.clock.now + 1.0)),
                    max_events=10_000,
                )
        return self.finalize()

    def finalize(self) -> RunResult:
        """Stop the run, take final accuracy samples, and close the books."""
        self.stopped = True
        # Rewind speculation for events past the horizon *before* any
        # final evaluation or accounting observes its side effects.
        self.compute_pool.drain()
        self.compute_pool.shutdown()
        # Final accuracy sample for every worker at the stop time.
        for w in range(self.n_workers):
            self.evaluate_worker(w)
        self.result.horizon = self.clock.now
        for w in self.workers:
            # Close out a wait interval still open at the horizon.
            wait = w.wait_time
            if w.waiting and w._wait_started is not None:
                open_wait = self.clock.now - w._wait_started
                wait += open_wait
                if self.tracer.enabled:
                    self.tracer.complete(
                        "sync-wait", w.worker_id, TID_SYNC, w._wait_started,
                        open_wait, cat="sync",
                    )
            self._c_wait_total.inc(wait, w.worker_id)
            self._c_compute_total.inc(w.compute_time, w.worker_id)
        self.result.epochs = self.global_epoch()
        self.result.events = self.clock.events_processed
        self._c_events.inc(self.clock.events_processed)
        if self.profiler is not None:
            for name, (calls, total) in self.profiler.totals().items():
                self._c_profile_seconds.inc(total, name)
                self._c_profile_calls.inc(calls, name)
        return self.result
