"""Weighted model update (§3.2, Eq. 7).

Gradients from workers with different local batch sizes are not equally
trustworthy: larger samples give statistically tighter means. DLion
scales worker j's gradient, as applied at worker k, by the *dynamic
batching weight* ``db_j^k = LBS_j / LBS_k``:

    w_{t+1}^k = w_t^k − η (1/n) Σ_j db_j^k g_t^j

When every worker uses the same LBS, ``db == 1`` and the rule reduces to
the classic distributed update (Eq. 4) — a property the test suite
checks explicitly.
"""

from __future__ import annotations

__all__ = ["dynamic_batching_weight"]


def dynamic_batching_weight(lbs_sender: int, lbs_receiver: int, *, enabled: bool = True) -> float:
    """The confidence coefficient ``db_j^k`` of Eq. 7.

    ``enabled=False`` (the DLion-no-WU ablation, Fig. 14) always
    returns 1, i.e. Eq. 4 behaviour.
    """
    if lbs_sender < 1 or lbs_receiver < 1:
        raise ValueError("batch sizes must be >= 1")
    if not enabled:
        return 1.0
    return lbs_sender / lbs_receiver
