"""Training synchronization strategies (§4.2's ``synch_training``).

The framework "internally maintains each worker's current iteration and
received weight variable ids. Based on the information, it can skip or
proceed to the next training iteration as well as identify straggler
workers." Three policies:

* **async** — never wait (Ako's strategy);
* **sync** — lock-step: start iteration ``t+1`` only after gradients of
  iteration ``t`` have arrived from every peer (Baseline);
* **bounded** — bounded staleness with backup workers: proceed as long
  as at most ``backup`` peers are further than ``staleness`` iterations
  behind (Hop; DLion defaults to this with backup = 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SyncState", "SyncPolicy", "AsyncPolicy", "LockstepPolicy", "BoundedPolicy", "make_sync_policy"]


@dataclass
class SyncState:
    """What a policy may look at: local progress and peer progress."""

    iteration: int  # iterations this worker has completed
    received_from: dict[int, int] = field(default_factory=dict)
    # received_from[j] = highest iteration index whose gradients from
    # peer j have been applied locally (−1 before any arrive).


class SyncPolicy:
    """Decides when a worker may advance (the synch_training family)."""
    name = "abstract"

    def can_proceed(self, state: SyncState) -> bool:
        """May a worker in ``state`` start its next iteration?"""
        raise NotImplementedError

    def stragglers(self, state: SyncState) -> list[int]:
        """Peers currently more than one iteration behind this worker."""
        return [
            j
            for j, it in state.received_from.items()
            if state.iteration - 1 - it > 1
        ]


class AsyncPolicy(SyncPolicy):
    """Never blocks."""

    name = "async"

    def can_proceed(self, state: SyncState) -> bool:
        return True


class LockstepPolicy(SyncPolicy):
    """Fully synchronous: all peers' iteration-(t−1) gradients required."""

    name = "sync"

    def can_proceed(self, state: SyncState) -> bool:
        needed = state.iteration - 1
        if needed < 0:
            return True
        return all(it >= needed for it in state.received_from.values())


class BoundedPolicy(SyncPolicy):
    """Bounded staleness with backup workers.

    Proceed unless *more than* ``backup`` peers lag by more than
    ``staleness`` iterations. ``backup`` is the number of stragglers the
    system tolerates ignoring (Hop sets 1); ``staleness`` is the
    iteration bound (Hop sets 5).
    """

    name = "bounded"

    def __init__(self, staleness: int, backup: int = 0):
        if staleness < 0 or backup < 0:
            raise ValueError("staleness and backup must be non-negative")
        self.staleness = staleness
        self.backup = backup

    def can_proceed(self, state: SyncState) -> bool:
        lagging = sum(
            1
            for it in state.received_from.values()
            if state.iteration - it > self.staleness
        )
        return lagging <= self.backup


def make_sync_policy(mode: str, *, staleness: int = 5, backup: int = 0) -> SyncPolicy:
    """Factory keyed by the ``TrainConfig.sync_mode`` strings."""
    if mode == "async":
        return AsyncPolicy()
    if mode == "sync":
        return LockstepPolicy()
    if mode == "bounded":
        return BoundedPolicy(staleness, backup)
    raise ValueError(f"unknown sync mode {mode!r}")
