"""Configuration for a distributed training run.

One :class:`TrainConfig` fully determines a run together with the
cluster topology and the seed. The defaults follow the paper's
evaluation settings (§5.1.4): minimum N = 0.85 for Max N, DKT period 100
iterations with λ = 0.75, Gaia's S = 1%, Hop's backup = 1 / staleness 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["GbsConfig", "LbsConfig", "MaxNConfig", "DktConfig", "TrainConfig"]


@dataclass(frozen=True)
class GbsConfig:
    """Global-batch-size controller (§3.2).

    GBS grows arithmetically by ``warmup_increment`` until it exceeds
    ``warmup_cap_frac`` of the training set, then geometrically by
    ``speedup_factor`` until ``speedup_cap_frac`` — the 1% / 10% rules.
    ``start_epoch`` delays any growth (Fig. 5's sweep variable).
    """

    enabled: bool = True
    warmup_increment: int = 32
    speedup_factor: float = 2.0
    warmup_cap_frac: float = 0.01
    speedup_cap_frac: float = 0.10
    start_epoch: float = 2.0
    update_period_s: float = 60.0
    # Minimum epoch progress between two growth steps; 1.0 reproduces the
    # Fig. 5 protocol of doubling once per epoch.
    min_epochs_between_updates: float = 0.0

    def __post_init__(self) -> None:
        if self.min_epochs_between_updates < 0:
            raise ValueError("min_epochs_between_updates must be non-negative")
        if self.warmup_increment < 1:
            raise ValueError("warmup_increment must be >= 1")
        if self.speedup_factor <= 1.0:
            raise ValueError("speedup_factor must exceed 1")
        if not 0 < self.warmup_cap_frac <= self.speedup_cap_frac <= 1:
            raise ValueError("need 0 < warmup cap <= speedup cap <= 1")
        if self.update_period_s <= 0:
            raise ValueError("update_period_s must be positive")


@dataclass(frozen=True)
class LbsConfig:
    """Local-batch-size controller (§3.2).

    Profiling fits iteration time vs. batch size by linear regression
    over ``probe_batches`` and inverts the fit at ``unit_time_s`` to get
    the worker's relative compute power (RCP).
    """

    enabled: bool = True
    probe_batches: tuple[int, ...] = (8, 16, 32, 64)
    probe_repeats: int = 2
    unit_time_s: float = 1.0
    profile_period_iters: int = 25
    min_lbs: int = 1

    def __post_init__(self) -> None:
        if len(self.probe_batches) < 2:
            raise ValueError("need at least two probe batch sizes")
        if self.probe_repeats < 1:
            raise ValueError("probe_repeats must be >= 1")
        if self.unit_time_s <= 0:
            raise ValueError("unit_time_s must be positive")
        if self.profile_period_iters < 1:
            raise ValueError("profile_period_iters must be >= 1")


@dataclass(frozen=True)
class MaxNConfig:
    """Per-link prioritized gradient exchange (§3.3).

    ``selector`` picks the data-quality-assurance rule: ``"maxn"`` (the
    paper's algorithm, default) or one of the drop-in alternatives from
    :mod:`repro.core.selectors` (``"topk"``, ``"randomk"``,
    ``"threshold"``) — the plug point the paper describes for gradient
    compression algorithms.
    """

    enabled: bool = True
    n_min: float = 0.85
    n_max: float = 100.0
    fixed_n: float | None = None  # bypass the budget fit (Fig. 7 / Fig. 16)
    selector: str = "maxn"
    # Fraction of the per-link budget actually claimed. The paper's
    # model (independent per-destination shaping) uses 1.0; under a
    # shared NIC set this to 1/(n_peers) so the sum of concurrent
    # payloads fits the interface (see the Ablation D study).
    budget_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.n_min <= self.n_max <= 100.0:
            raise ValueError("need 0 < n_min <= n_max <= 100")
        if self.fixed_n is not None and not 0 < self.fixed_n <= 100.0:
            raise ValueError("fixed_n must be in (0, 100]")
        if self.selector not in ("maxn", "topk", "randomk", "threshold"):
            raise ValueError(f"unknown selector {self.selector!r}")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")


@dataclass(frozen=True)
class DktConfig:
    """Direct knowledge transfer (§3.4)."""

    enabled: bool = True
    period_iters: int = 100
    loss_window: int = 5
    merge_lambda: float = 0.75
    whom: str = "all"  # "all" (Best2all) | "worst" (Best2worst)
    # Fig. 9a's "frequent early exchange" variant: use a shorter period
    # for the first ``early_until_iter`` iterations.
    early_period_iters: int | None = None
    early_until_iter: int = 0

    def __post_init__(self) -> None:
        if self.period_iters < 1:
            raise ValueError("period_iters must be >= 1")
        if self.early_period_iters is not None and self.early_period_iters < 1:
            raise ValueError("early_period_iters must be >= 1")
        if self.early_until_iter < 0:
            raise ValueError("early_until_iter must be non-negative")
        if self.loss_window < 1:
            raise ValueError("loss_window must be >= 1")
        if not 0.0 <= self.merge_lambda <= 1.0:
            raise ValueError("merge_lambda must be in [0, 1]")
        if self.whom not in ("all", "worst"):
            raise ValueError("whom must be 'all' or 'worst'")


@dataclass(frozen=True)
class TrainConfig:
    """Everything a run needs besides the topology and seed."""

    # Workload
    model: str = "mlp"
    model_kwargs: dict = field(default_factory=dict)
    dataset: str = "cifar_like"
    dataset_kwargs: dict = field(default_factory=dict)
    train_size: int = 6000
    test_size: int = 600
    shard_mode: str = "iid"

    # Optimization
    lr: float = 0.1
    initial_lbs: int = 32

    # System strategy ("dlion", "baseline", "ako", "gaia", "hop")
    system: str = "dlion"
    system_kwargs: dict = field(default_factory=dict)

    # Synchronization: "sync" | "async" | "bounded"
    sync_mode: str = "bounded"
    staleness_bound: int = 5
    backup_workers: int = 0

    # DLion technique configs (ablations flip `enabled`)
    gbs: GbsConfig = field(default_factory=GbsConfig)
    lbs: LbsConfig = field(default_factory=LbsConfig)
    maxn: MaxNConfig = field(default_factory=MaxNConfig)
    dkt: DktConfig = field(default_factory=DktConfig)
    weighted_update: bool = True

    # Message queues: per-queue capacity (None = unbounded). Bounded
    # queues reject (and count) overflow, surfacing backpressure in the
    # queue_depth / queue_dropped_total metrics.
    queue_capacity: int | None = None

    # Measurement
    eval_period_iters: int = 20  # paper §5.1.3
    eval_subset: int = 400
    record_link_stats: bool = True

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.initial_lbs < 1:
            raise ValueError("initial_lbs must be >= 1")
        if self.sync_mode not in ("sync", "async", "bounded"):
            raise ValueError("sync_mode must be sync/async/bounded")
        if self.staleness_bound < 0 or self.backup_workers < 0:
            raise ValueError("staleness/backup must be non-negative")
        if self.eval_period_iters < 1:
            raise ValueError("eval_period_iters must be >= 1")
        if self.eval_subset < 1:
            raise ValueError("eval_subset must be >= 1")

    def with_(self, **changes) -> "TrainConfig":
        """A modified copy (dataclass ``replace`` convenience)."""
        return replace(self, **changes)
