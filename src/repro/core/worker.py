"""A DLion worker: the module wiring of Fig. 10.

Each worker owns a model replica, a data shard sampler, its message
queues, the network resource monitor, the DKT state, and the LBS
controller. The engine (``core.engine``) drives workers through the
event clock; the worker exposes the handlers for iteration completion
and message arrival and implements the strategy-facing
:class:`~repro.core.api.WorkerContext` protocol.

Module map (paper §4.1 → methods here):

* batch size update module      → :meth:`run_profiling`, :meth:`recompute_lbs`
* gradients computation module  → :meth:`finish_iteration`
* partial gradients generation  → strategy call inside :meth:`finish_iteration`
* model update module           → :meth:`on_gradient_message`
* model synchronization module  → :meth:`on_loss_share` / :meth:`on_dkt_request`
  / :meth:`on_weight_message`
* network resource monitor      → :attr:`monitor`
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.messages import (
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.queues import MessageQueues
from repro.core.api import ExchangeStrategy, PartialGradients
from repro.core.config import TrainConfig
from repro.core.dkt import DktState, merge_weights
from repro.core.lbs_controller import LbsController, allocate_lbs
from repro.core.sync import SyncState
from repro.core.weighted_update import dynamic_batching_weight
from repro.nn import workspace
from repro.nn.datasets import MinibatchSampler
from repro.nn.model import Model
from repro.obs.trace import TID_CTRL, TID_DKT, TID_ITER, TID_SYNC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import TrainingEngine

__all__ = ["Worker"]


class Worker:
    """One training participant."""

    def __init__(
        self,
        worker_id: int,
        engine: "TrainingEngine",
        model: Model,
        sampler: MinibatchSampler,
        strategy: ExchangeStrategy,
        monitor: NetworkResourceMonitor,
        config: TrainConfig,
        rng: np.random.Generator,
    ):
        self.worker_id = worker_id
        self.engine = engine
        self.tracer = engine.tracer
        self.model = model
        self.sampler = sampler
        self.strategy = strategy
        self.monitor = monitor
        self.config = config
        self.rng = rng

        self.n_workers = engine.n_workers
        self.queues = MessageQueues(worker_id, capacity=config.queue_capacity)
        self.dkt = DktState(config.dkt, worker_id, self.n_workers)
        self.lbs_controller = LbsController(config.lbs)

        # Batch-size state. Until profiling completes, LBS is the even
        # share of the initial GBS.
        self.gbs = config.initial_lbs * self.n_workers
        self.lbs = config.initial_lbs
        self.rcp_table: dict[int, float] = {}

        # Progress / synchronization state.
        self.active = True
        self.sync_state = SyncState(
            iteration=0, received_from={p: -1 for p in self.peers}
        )
        self.computing = False
        self.waiting = False
        self.iteration = 0
        # Bumped AFTER every write to the model replica (own update,
        # peer gradient, DKT merge). The compute pool validates its
        # speculative results against this counter; the bump-after-write
        # discipline means a torn concurrent read can never be committed.
        self.model_version = 0

        # Iteration-time estimate (EMA over measured durations), seeded
        # pessimistically until the first iteration completes.
        self._iter_time_ema: float | None = None
        self._recent_iters: deque[tuple[int, float]] = deque(maxlen=32)

        self.stats_grad_msgs_sent = 0
        self.stats_grad_msgs_received = 0
        self.stats_weight_pulls = 0

        # Utilization accounting: simulated seconds spent computing
        # gradients vs. blocked on the synchronization gate.
        self.compute_time = 0.0
        self.wait_time = 0.0
        self._wait_started: float | None = None

    # ------------------------------------------------------------------
    # WorkerContext protocol (what strategies may see)
    # ------------------------------------------------------------------
    @property
    def peers(self) -> list[int]:
        """Currently-active peers (the full set when membership is static)."""
        return self.engine.active_peers(self.worker_id)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.clock.now

    def iter_time_estimate(self) -> float:
        """EMA estimate of this worker's iteration duration (s)."""
        if self._iter_time_ema is not None:
            return self._iter_time_ema
        # Before any measurement: assume one second (the LBS unit time).
        return self.config.lbs.unit_time_s

    def plan_epoch(self) -> tuple[int, int]:
        """Token for per-iteration planner caches (WorkerContext API).

        One token per completed iteration: gradients are produced once
        per iteration, so any plan within the same epoch prices the
        same gradient map and may reuse its histograms.
        """
        return (self.worker_id, self.iteration)

    def _group_size(self) -> int:
        """This worker's exchange-group size (itself + current peers)."""
        return len(self.peers) + 1

    def bandwidth_to(self, dst: int) -> float:
        """Monitored bandwidth (Mbps) on the link to peer ``dst``."""
        return self.monitor.available_bandwidth(dst, self.now())

    def model_variables(self) -> dict[str, np.ndarray]:
        """Live views of the local model's named weight variables."""
        return self.model.variables()

    # ------------------------------------------------------------------
    # Batch size update module
    # ------------------------------------------------------------------
    def run_profiling(self) -> float:
        """Measure RCP via timed probes; returns the simulated cost.

        Probe durations come from the engine's compute model — the
        controller sees only (batch, seconds) pairs, like real profiling.
        """
        probe_times: list[float] = []
        t = self.now()

        def probe(batch: int) -> float:
            dur = self.engine.iteration_duration(self.worker_id, batch, t)
            probe_times.append(dur)
            return dur

        rcp = self.lbs_controller.profile(probe)
        self.rcp_table[self.worker_id] = rcp
        self.recompute_lbs()
        self.engine.broadcast_rcp(self.worker_id, rcp)
        cost = sum(probe_times)
        if self.tracer.enabled:
            self.tracer.complete(
                "rcp-profile", self.worker_id, TID_CTRL, t, cost,
                cat="ctrl", args={"rcp": round(rcp, 6)},
            )
        return cost

    def on_rcp_share(self, msg: RcpShareMessage) -> None:
        """Update the RCP table with a peer's measurement; rebalance LBS."""
        self.rcp_table[msg.sender] = msg.rcp
        self.recompute_lbs()

    def set_gbs(self, gbs: int) -> None:
        """Adopt a new global batch size announced by the GBS controller."""
        if gbs < self.n_workers:
            raise ValueError("GBS below one sample per worker")
        self.gbs = int(gbs)
        self.recompute_lbs()

    def recompute_lbs(self) -> None:
        """Eq. 5 with this worker's current (possibly stale) RCP table.

        The allocation spans the *active* worker set, so the extension's
        membership churn automatically redistributes the GBS across the
        survivors.
        """
        members = self.engine.active_members()
        if self.worker_id not in members:
            return
        if not self.config.lbs.enabled:
            # Dynamic batching disabled: even split of the current GBS.
            new = max(self.config.lbs.min_lbs, self.gbs // len(members))
        else:
            own = self.rcp_table.get(self.worker_id, 1.0)
            rcps = [self.rcp_table.get(j, own) for j in members]
            alloc = allocate_lbs(self.gbs, rcps, min_lbs=self.config.lbs.min_lbs)
            new = alloc[members.index(self.worker_id)]
        if new != self.lbs:
            self.lbs = new
            self.engine.record_lbs(self.worker_id, new)

    # ------------------------------------------------------------------
    # Elastic membership (extension)
    # ------------------------------------------------------------------
    def on_membership_change(self, active: set[int]) -> None:
        """Adapt bookkeeping to the new active set.

        Sync state keeps progress for peers that stayed, forgets peers
        that left, and seeds newly-(re)joined peers at this worker's own
        iteration so bounded policies do not treat them as stragglers
        for history they were never part of.
        """
        old = self.sync_state.received_from
        self.sync_state.received_from = {
            p: old.get(p, self.iteration) for p in self.peers
        }
        for table in (self.rcp_table, self.dkt.shared_losses):
            for gone in [w for w in table if w not in active]:
                del table[gone]
        self.recompute_lbs()
        if self.active and self.waiting:
            self.try_start_iteration()

    # ------------------------------------------------------------------
    # Gradients computation module
    # ------------------------------------------------------------------
    def try_start_iteration(self) -> None:
        """Start the next iteration if the sync policy allows it."""
        if self.computing or self.engine.stopped or not self.active:
            return
        if not self.strategy.synch_training(self, self.sync_state):
            if not self.waiting:
                self.waiting = True
                self._wait_started = self.now()
            return
        if self.waiting and self._wait_started is not None:
            waited = self.now() - self._wait_started
            self.wait_time += waited
            self.engine._h_wait_s.observe(waited, self.worker_id)
            if self.tracer.enabled and waited > 0.0:
                self.tracer.complete(
                    "sync-wait", self.worker_id, TID_SYNC,
                    self._wait_started, waited, cat="sync",
                    args={"iteration": self.iteration},
                )
            self._wait_started = None
        self.waiting = False
        self.computing = True
        batch = self.lbs
        dur = self.engine.iteration_duration(self.worker_id, batch, self.now())
        self.compute_time += dur
        self.engine.clock.schedule_in(dur, self._finish_iteration, batch, dur)

    def _finish_iteration(self, batch: int, duration: float) -> None:
        self.computing = False
        pool = self.engine.compute_pool
        if not self.active:
            # The worker left mid-iteration; its result is discarded —
            # including any speculative compute the pool had in flight.
            pool.discard(self)
            return
        self._recent_iters.append((batch, duration))
        ema = self._iter_time_ema
        self._iter_time_ema = duration if ema is None else 0.8 * ema + 0.2 * duration

        # Real gradient computation over the shard (Eq. 6) — inline in
        # serial mode, or committed/replayed from the compute pool.
        loss, grads = pool.collect(self, batch)
        self.iteration += 1
        self.sync_state.iteration = self.iteration
        self.dkt.record_loss(loss)
        self.engine.record_loss(self.worker_id, loss)
        self.engine._h_iteration_s.observe(duration, self.worker_id)
        if self.tracer.enabled:
            # The compute span covers the simulated iteration duration
            # that just elapsed; it ends at the current instant.
            self.tracer.complete(
                "compute", self.worker_id, TID_ITER,
                self.now() - duration, duration, cat="iter",
                args={
                    "iteration": self.iteration,
                    "batch": batch,
                    "loss": round(float(loss), 6),
                },
            )

        # Local model update: own gradient with db = 1 (Eq. 7 term j=k).
        # The averaging denominator is the size of this worker's
        # exchange group (itself + its peers): exactly n for the paper's
        # all-to-all case, the gossip neighbourhood under a partial
        # overlay, and the surviving group under membership churn.
        self.model.apply_grads(
            grads, lr=self.config.lr, coeff=1.0 / self._group_size()
        )
        self.model_version += 1

        # enqueue: generate_partial_gradients + send_data (§4.2).
        self.enqueue(grads)

        # Model synchronization module hooks.
        if self.dkt.should_share(self.iteration):
            avg = self.dkt.avg_loss()
            if avg is not None:
                if self.tracer.enabled:
                    self.tracer.instant(
                        "dkt-share", self.worker_id, TID_DKT, self.now(),
                        cat="dkt", args=self.dkt.trace_args(),
                    )
                self.engine.broadcast_loss_share(self.worker_id, self.iteration, avg)
                target = self.dkt.pull_target()
                if target is not None:
                    self.dkt.pulls_requested += 1
                    self.stats_weight_pulls += 1
                    self.engine._c_dkt_pulls.inc(1, self.worker_id)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "dkt-pull-request", self.worker_id, TID_DKT,
                            self.now(), cat="dkt", args={"target": target},
                        )
                    self.engine.send_control(
                        self.worker_id,
                        target,
                        DktRequestMessage(sender=self.worker_id, iteration=self.iteration),
                    )

        # Periodic re-profiling (batch size update module).
        reprofile = (
            self.config.lbs.enabled
            and self.iteration % self.config.lbs.profile_period_iters == 0
        )

        # Accuracy measurement every eval_period iterations (§5.1.3).
        if self.iteration % self.config.eval_period_iters == 0:
            self.engine.evaluate_worker(self.worker_id)

        if reprofile:
            cost = self.run_profiling()
            self.engine.clock.schedule_in(cost, self.try_start_iteration)
        else:
            self.try_start_iteration()

        # With this worker's next completion now (possibly) scheduled,
        # let the pool speculate on the upcoming wave of iterations.
        pool.prefetch()

    # ------------------------------------------------------------------
    # Partial gradients generation + send_data
    # ------------------------------------------------------------------
    def enqueue(self, grads: dict[str, np.ndarray]) -> None:
        """The DLion ``enqueue`` API: plan payloads and ship them.

        The whole fan-out happens at one simulated instant, so it ships
        through the engine's batched send — one vectorized link-state
        update instead of per-destination scalar arithmetic — with
        byte-identical results (see ``send_gradients_batch``)."""
        plans = self.strategy.generate_partial_gradients(self, grads)
        items = []
        for dst, pg in plans.items():
            items.append((dst, self._wrap_gradients(pg), pg.chosen_n))
            self.stats_grad_msgs_sent += 1
        self.engine.send_gradients_batch(self.worker_id, items)

    def _wrap_gradients(self, pg: PartialGradients) -> GradientMessage:
        """Wrap a planned payload in its wire message."""
        dense = pg.payload if pg.kind == "dense" else None
        if dense is not None and workspace.enabled():
            # Dense payloads hold live references to layer gradient
            # buffers; with the workspace path those buffers are reused
            # by the sender's next step before the (delayed) delivery
            # event fires, so the message must carry its own copy.
            # Sparse payloads already copy via fancy indexing.
            dense = {name: g.copy() for name, g in dense.items()}
        return GradientMessage(
            sender=self.worker_id,
            iteration=self.iteration,
            lbs=self.lbs,
            sparse=pg.payload if pg.kind == "sparse" else None,
            dense=dense,
        )

    def send_data(self, dst: int, pg: PartialGradients) -> None:
        """The DLion ``send_data`` API: wrap a payload and ship it."""
        msg = self._wrap_gradients(pg)
        self.stats_grad_msgs_sent += 1
        self.engine.send_gradients(self.worker_id, dst, msg, chosen_n=pg.chosen_n)

    # ------------------------------------------------------------------
    # Model update module
    # ------------------------------------------------------------------
    def on_gradient_message(self, msg: GradientMessage) -> None:
        """Model update module: apply a peer's (partial) gradients (Eq. 7)."""
        accepted = self.queues.push_data(msg)
        self.engine._g_queue_depth.set(
            self.queues.data_depth, self.worker_id, "data"
        )
        if not accepted:
            # Bounded queue overflow: the update is lost (backpressure),
            # exactly like a capped broker queue dropping the newest entry.
            self.engine._c_queue_dropped.inc(1, self.worker_id, "data")
            return
        self.stats_grad_msgs_received += 1
        db = dynamic_batching_weight(
            msg.lbs, self.lbs, enabled=self.config.weighted_update
        )
        coeff = db / self._group_size()
        if msg.dense is not None:
            self.model.apply_grads(msg.dense, lr=self.config.lr, coeff=coeff)
        elif msg.sparse:
            self.model.apply_sparse_grads(msg.sparse, lr=self.config.lr, coeff=coeff)
        self.model_version += 1
        self.queues.pop_data()
        self.engine._g_queue_depth.set(
            self.queues.data_depth, self.worker_id, "data"
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "apply-grads", self.worker_id, TID_ITER, self.now(),
                cat="iter",
                args={
                    "from": msg.sender,
                    "iteration": msg.iteration,
                    "entries": msg.num_entries(),
                },
            )

        if msg.sender in self.sync_state.received_from:
            prev = self.sync_state.received_from[msg.sender]
            if msg.iteration > prev:
                self.sync_state.received_from[msg.sender] = msg.iteration
        if self.waiting:
            self.try_start_iteration()

    def on_control_message(self, msg) -> None:
        """Park an opaque control message in the control queue.

        Typed control traffic (loss shares, DKT requests, RCP shares)
        has dedicated handlers; anything else lands here so application
        extensions can drain it. Bounded queues reject (and count)
        overflow.
        """
        accepted = self.queues.push_control(msg)
        self.engine._g_queue_depth.set(
            self.queues.control_depth, self.worker_id, "control"
        )
        if not accepted:
            self.engine._c_queue_dropped.inc(1, self.worker_id, "control")

    # ------------------------------------------------------------------
    # Model synchronization module
    # ------------------------------------------------------------------
    def on_loss_share(self, msg: LossShareMessage) -> None:
        """Record a peer's shared loss for the DKT best-worker table."""
        self.dkt.on_loss_share(msg.sender, msg.avg_loss)

    def on_dkt_request(self, msg: DktRequestMessage) -> None:
        """This worker is (believed to be) the best: ship its weights."""
        if self.tracer.enabled:
            self.tracer.instant(
                "dkt-serve", self.worker_id, TID_DKT, self.now(),
                cat="dkt", args={"requester": msg.sender},
            )
        snapshot = WeightMessage(
            sender=self.worker_id,
            iteration=self.iteration,
            weights=self.model.copy_weights(),
        )
        self.engine.send_weights(self.worker_id, msg.sender, snapshot)

    def on_weight_message(self, msg: WeightMessage) -> None:
        """Merge received best-worker weights into the local model (DKT)."""
        merge_weights(
            self.model.variables(), msg.weights, self.config.dkt.merge_lambda
        )
        self.model_version += 1
        self.dkt.merges_applied += 1
        self.engine.record_dkt_merge(self.worker_id)
        if self.tracer.enabled:
            self.tracer.instant(
                "dkt-merge", self.worker_id, TID_DKT, self.now(),
                cat="dkt",
                args={"from": msg.sender, "iteration": msg.iteration},
            )
