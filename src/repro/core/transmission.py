"""Transmission speed assurance (§3.3).

Per link and per iteration, pick the **largest** Max-N value whose
encoded payload fits the link's byte budget

    budget_j = BW_net_j / Iter_com_i

— the bytes the link to worker j can carry during the time worker i
takes to produce the next gradient (``Iter_com_i`` = iterations per unit
time). The chosen N is floored at ``n_min`` (the data-quality floor,
0.85 in the paper's runs) and capped at ``n_max``.

Performance: evaluating a candidate N must not re-scan the gradient —
models can have single variables with ~10⁶ entries and this runs every
iteration. :class:`GradientHistograms` builds one magnitude histogram
per variable (one O(n) pass over the gradient map, total) and folds the
suffix-cumulative counts of all variables into a single
bytes-at-every-bin-edge array (O(BINS) extra), *rounding each
per-variable count up* to bin granularity so a candidate judged
feasible is guaranteed feasible exactly. Every destination budget is
then answered by one vectorized ``searchsorted`` over that array —
no per-link re-evaluation, no bisection loop. The planner additionally
shares one payload per resolved bin index (links whose budgets land in
the same bin ship the same bytes) and can reuse the histograms across
``plan`` calls within an iteration via an explicit ``plan_epoch``
token.

In steady state the histogram build itself disappears: for a plan with
one distinct budget (uniform bandwidths) the planner guesses the edge
by a ``searchsorted`` into the *previous* iteration's fold and
verifies with a couple of exact-count secant probes on the current
gradients (:meth:`GradientHistograms.fit_warm`), rebuilding the
histograms only on a probe miss. Warm answers stay exactly feasible —
probes are exact counts — and sit at most a few bins (``slack``, ≲0.1
N) below the certified optimum. All planners also share one
process-wide scratch pool so the hot buffers stay cache-warm when
many simulated workers take turns planning.

Exactness invariant (asserted by the property suite in
``tests/properties/test_prop_transmission.py``): whenever the chosen N
exceeds ``n_min``, the exact encoded payload at that N fits the budget.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.messages import VARIABLE_HEADER_BYTES
from repro.core.config import MaxNConfig
from repro.core.maxn import select_payload
from repro.core.selectors import GradientSelector
from repro.obs import profile as _profile

__all__ = [
    "GradientHistograms",
    "fit_n_to_budget",
    "fit_level_to_budget",
    "fit_levels_to_budgets",
    "TransmissionPlanner",
]

_BINS = 4096


def _build_n_at_edge() -> np.ndarray:
    """``n_at_edge[i]``: the largest N whose threshold bin is ``i``.

    In exact arithmetic ``N = 100·(1 − i/BINS)``; each entry is nudged
    down by float ulps until ``int((1 − N/100)·BINS) >= i`` actually
    holds, so a fit answer converted through this table can never land
    one bin below the edge it was resolved at (which would overshoot
    the budget).
    """
    edges = 100.0 * (1.0 - np.arange(_BINS + 1) / _BINS)
    for i in range(_BINS + 1):
        n = float(edges[i])
        while n > 0.0 and int((1.0 - n / 100.0) * _BINS) < i:
            n = math.nextafter(n, 0.0)
        edges[i] = n
    return edges


_N_AT_EDGE = _build_n_at_edge()


class _Scratch:
    """Reusable per-planner buffers for the per-iteration gradient view.

    The view's working arrays (concatenated values, magnitudes, the
    selection mask, the quantization scratch) are each a few hundred KB
    — past glibc's mmap threshold, so allocating them fresh every
    iteration means page-faulting the memory in every time. One planner
    plans every iteration with the same model, so the buffers are
    allocated once and reused; they are resized only when the model (or
    gradient dtype) changes.
    """

    __slots__ = (
        "_size",
        "_dtype",
        "generation",
        "mags",
        "scale",
        "quant",
        "mask",
        "names",
        "sizes",
        "offsets",
        "bounds",
    )

    def __init__(self) -> None:
        self._size = -1
        self._dtype: np.dtype | None = None
        # bumped on every view built from this pool: a histogram view
        # records the generation it was built at, so a cached view can
        # tell when another planner has since reused the buffers
        self.generation = 0
        # cached variable layout (names + sizes -> offsets/bounds): one
        # model per planner, so the layout is identical every iteration
        self.names: list[str] | None = None
        self.sizes: list[int] | None = None

    def ensure(self, size: int, dtype: np.dtype) -> "_Scratch":
        self.generation += 1
        if size > self._size or dtype != self._dtype:
            self._size = size
            self._dtype = dtype
            self.mags = np.empty(size, dtype=dtype)
            self.scale = np.empty(size, dtype=dtype)
            # intp so np.bincount ingests it without an internal cast
            self.quant = np.empty(size, dtype=np.intp)
            self.mask = np.empty(size, dtype=bool)
        return self


# Process-wide buffer pool. Every worker in a simulation plans over the
# same model, and the planners take turns (the simulator is
# single-threaded), so sharing one pool keeps the working arrays
# cache-warm across *all* planners instead of letting six cold copies
# chase each other out of the cache. The generation counter keeps
# epoch-cached views honest when planners interleave.
_SHARED_SCRATCH = _Scratch()


class GradientHistograms:
    """Batched budget resolver for one iteration's gradient map.

    Construction builds a cheap *view*: every variable's magnitudes
    packed segment-by-segment into one shared buffer (the values are
    never copied — payload gathers index the caller's arrays) and
    per-variable maxima via a single ``maximum.reduceat``. Whole-map
    operations then run as one NumPy call (or one short call per
    segment) instead of a full per-variable pipeline, which matters
    because dispatch overhead (not arithmetic) dominates on the
    many-small-variables gradient maps real models produce. The
    histogram itself — one shared
    bytes-at-every-bin-edge array — is folded lazily on the first fit:
    ``bytes_at_edge[i]`` is an upper bound on the Max-N payload size
    for any threshold inside bin ``i`` (the threshold is rounded *down*
    to its bin edge, so counts can only overcount and a feasibility
    verdict is always exact-feasible).

    Two extra exact primitives ride on the view: ``exact_bytes_at``
    (one vectorized count, no histogram) powers the planner's
    warm-start verification, and ``select_payload`` reuses the cached
    magnitudes.

    The working arrays are each a few hundred KB — past glibc's mmap
    threshold — so a planner that builds one view per iteration passes
    a :class:`_Scratch` pool and the concatenation, magnitude, mask and
    quantization buffers are reused across iterations instead of being
    page-faulted in fresh every time.

    Gradient maps with mixed dtypes (or non-float gradients) cannot be
    concatenated without changing comparison semantics; they fall back
    to an equivalent per-variable path. All-zero variables carry no
    information and contribute nothing (matching
    :func:`repro.core.maxn.select_max_n`).
    """

    __slots__ = (
        "_names",
        "_flats",
        "_mags",
        "_offsets",
        "_bounds",
        "_maxes64",
        "_zero_entries",
        "_nnz",
        "_legacy_vars",
        "_rev_bytes",
        "_exact_cache",
        "_mask",
        "_mask_n",
        "_scale",
        "_quant",
        "_gen",
    )

    def __init__(
        self, grads: Mapping[str, np.ndarray], *, scratch: "_Scratch | None" = None
    ):
        with _profile.scope("maxn/grad_view"):
            self._init_view(grads, scratch)

    def buffers_valid(self, scratch: "_Scratch") -> bool:
        """Whether this view's buffers are untouched since it was built.

        Views that own their arrays (no scratch, legacy, empty) are
        always valid; a view built from ``scratch`` is invalidated by
        any later view built from the same pool.
        """
        return self._gen is None or self._gen == scratch.generation

    def _init_view(
        self, grads: Mapping[str, np.ndarray], scratch: "_Scratch | None"
    ) -> None:
        self._rev_bytes: np.ndarray | None = None
        self._exact_cache: dict[float, int] = {}
        self._legacy_vars: dict | None = None
        self._mask: np.ndarray | None = None
        self._mask_n: float | None = None
        self._scale: np.ndarray | None = None
        self._quant: np.ndarray | None = None
        self._gen: int | None = None
        names: list[str] = []
        flats: list[np.ndarray] = []
        for name, g in grads.items():
            flat = g.reshape(-1)
            if flat.size:
                names.append(name)
                flats.append(flat)
        if not flats:
            self._names = []
            self._flats = self._mags = self._offsets = self._bounds = None
            self._maxes64 = None
            self._zero_entries = self._nnz = 0
            self._rev_bytes = np.zeros(_BINS + 1, dtype=np.int64)
            return
        if len({f.dtype for f in flats}) > 1 or not np.issubdtype(
            flats[0].dtype, np.floating
        ):
            self._init_legacy(dict(zip(names, flats)))
            return
        self._names = names
        self._flats = flats  # per-variable views of the caller's arrays
        sizes = [f.size for f in flats]
        if scratch is not None and scratch.names == names and scratch.sizes == sizes:
            # same model layout as last iteration: reuse the offsets
            offsets = scratch.offsets
            bounds = scratch.bounds
        else:
            offsets = np.empty(len(flats) + 1, dtype=np.intp)
            offsets[0] = 0
            np.cumsum(sizes, out=offsets[1:])
            bounds = [
                (int(offsets[i]), int(offsets[i + 1])) for i in range(len(flats))
            ]
            if scratch is not None:
                scratch.names = list(names)
                scratch.sizes = sizes
                scratch.offsets = offsets
                scratch.bounds = bounds
        self._offsets = offsets
        self._bounds = bounds
        total = bounds[-1][1]
        if scratch is not None:
            scratch.ensure(total, flats[0].dtype)
            self._gen = scratch.generation
            self._mags = scratch.mags[:total]
            self._mask = scratch.mask[:total]
            self._mask_n = None  # buffer contents belong to a prior view
            self._scale = scratch.scale[:total]
            self._quant = scratch.quant[:total]
        else:
            self._mags = np.empty(total, dtype=flats[0].dtype)
        # magnitudes of all variables, packed into one buffer segment
        # by segment — never a concatenated copy of the values
        # themselves (payload gathers index the caller's arrays).
        mags = self._mags
        for i, flat in enumerate(flats):
            a, b = bounds[i]
            np.abs(flat, out=mags[a:b])
        maxes = np.maximum.reduceat(mags, offsets[:-1])
        # float64 maxima: per-variable thresholds are computed in
        # float64 and cast back to the gradient dtype, matching
        # select_max_n's python-float threshold exactly.
        self._maxes64 = maxes.astype(np.float64)
        nonzero = self._maxes64 > 0.0
        self._nnz = int(np.count_nonzero(nonzero))
        if self._nnz == len(flats):
            self._zero_entries = 0
        else:
            self._zero_entries = int(
                sum(s for s, nz in zip(sizes, nonzero) if not nz)
            )

    def _init_legacy(self, flats: Mapping[str, np.ndarray]) -> None:
        """Per-variable fallback (mixed or non-float dtypes)."""
        self._legacy_vars = {}
        for name, flat in flats.items():
            mags = np.abs(flat)
            self._legacy_vars[name] = (flat, mags, float(mags.max(initial=0.0)))

    @property
    def folded(self) -> np.ndarray | None:
        """The folded bytes array, if a fit has forced the fold yet.

        Stored in **ascending** order — index ``k`` holds the bytes at
        edge ``_BINS - k`` — which is exactly the layout
        ``searchsorted`` wants, so neither the fits here nor the
        planner's warm-start guess ever copy a reversed view.
        """
        return self._rev_bytes

    @property
    def supports_exact_counts(self) -> bool:
        """Whether the vectorized exact-count primitives are available."""
        return self._legacy_vars is None and self._flats is not None

    def _mask_at(self, n_percent: float) -> np.ndarray:
        """Boolean selection mask at ``n_percent`` (view mode).

        One comparison per variable *segment* of the shared mask buffer
        — no materialized per-entry threshold array. The buffer is
        tagged with the level it holds, so the planner's usual sequence
        (warm-probe a level, then select the payload at that same
        level) builds the mask once.
        """
        if self._mask is not None and self._mask_n == n_percent:
            return self._mask
        if self._mask is None:
            self._mask = np.empty(self._mags.size, dtype=bool)
        mask = self._mask
        frac = 1.0 - n_percent / 100.0
        for i, (a, b) in enumerate(self._bounds):
            seg = mask[a:b]
            mx = float(self._maxes64[i])
            if mx == 0.0:
                # all-zero variables select nothing at any level
                seg[:] = False
            else:
                # python-float threshold: identical promotion to
                # select_max_n's `mags >= (1 - n/100) * max` compare
                np.greater_equal(self._mags[a:b], frac * mx, out=seg)
        self._mask_n = n_percent
        return mask

    def exact_bytes_at(self, n_percent: float) -> int:
        """The **exact** encoded payload size at ``n_percent``.

        One vectorized count over the cached magnitudes — no histogram.
        Every nonzero variable keeps at least its max entry, so the
        header term is a constant ``24 * nnz``.
        """
        cached = self._exact_cache.get(n_percent)
        if cached is not None:
            return cached
        if self._legacy_vars is not None:
            total = 0
            for flat, mags, mx in self._legacy_vars.values():
                if mx == 0.0:
                    continue
                cnt = int(np.count_nonzero(mags >= (1.0 - n_percent / 100.0) * mx))
                if cnt:
                    total += VARIABLE_HEADER_BYTES + 8 * cnt
        elif self._flats is None:
            total = 0
        else:
            cnt = int(np.count_nonzero(self._mask_at(n_percent)))
            total = 8 * cnt + VARIABLE_HEADER_BYTES * self._nnz
        self._exact_cache[n_percent] = total
        return total

    def _ensure_hist(self) -> np.ndarray:
        if self._rev_bytes is not None:
            return self._rev_bytes
        with _profile.scope("maxn/histograms"):
            if self._legacy_vars is not None:
                counts = np.zeros(_BINS, dtype=np.int64)
                nnz = 0
                for flat, mags, mx in self._legacy_vars.values():
                    if mx == 0.0:
                        continue
                    nnz += 1
                    bins = ((mags / mx) * _BINS).astype(np.int32)
                    hist = np.bincount(bins, minlength=_BINS + 1)
                    hist[_BINS - 1] += hist[_BINS]
                    counts += hist[:_BINS]
            else:
                nnz = self._nnz
                # Quantize every entry into the shared scale buffer:
                # per-variable scalar division (bit-identical to the
                # historical (mags / mx) * _BINS). Normalizing before
                # scaling keeps subnormal maxima from overflowing the
                # scale factor; the integer cast and the overflow-bin
                # fold (entries at exactly the max land in bin _BINS)
                # avoid a full-array clip pass.
                scale = self._scale
                if scale is None:
                    scale = np.empty(self._mags.size, dtype=self._mags.dtype)
                for i, (a, b) in enumerate(self._bounds):
                    mx = float(self._maxes64[i])
                    if mx == 0.0:
                        # zero variables land in bin 0, subtracted
                        # out again below
                        scale[a:b] = 0.0
                    else:
                        np.divide(self._mags[a:b], mx, out=scale[a:b])
                quant = self._quant
                if quant is None:
                    quant = np.empty(scale.size, dtype=np.intp)
                # one fused pass: the float multiply (exact — _BINS is
                # a power of two) C-cast-truncates straight into the
                # intp buffer bincount ingests copy-free; values are
                # identical to the historical scale-then-astype chain
                np.multiply(scale, _BINS, out=quant, casting="unsafe")
                hist = np.bincount(quant, minlength=_BINS + 1)
                hist[_BINS - 1] += hist[_BINS]
                hist[0] -= self._zero_entries
                counts = hist[:_BINS]
            # rev[k] = bytes at edge _BINS - k: 8 bytes per entry in a
            # bin >= that edge, plus — at every edge below _BINS — one
            # header per variable with a nonzero max (each keeps at
            # least its max entry in any band, so the header term is a
            # constant and the whole map folds into one array). Built
            # ascending so every fit is one searchsorted with no
            # reversed-view copy.
            rev = np.empty(_BINS + 1, dtype=np.int64)
            rev[0] = 0
            np.cumsum(counts[::-1], out=rev[1:])
            np.multiply(rev, 8, out=rev)
            rev[1:] += VARIABLE_HEADER_BYTES * nnz
            self._rev_bytes = rev
        return self._rev_bytes

    def bytes_at(self, n_percent: float) -> int:
        """Upper bound on the Max-N payload size (never an underestimate)."""
        thr = 1.0 - n_percent / 100.0
        idx = min(_BINS, max(0, int(thr * _BINS)))
        return int(self._ensure_hist()[_BINS - idx])

    def fit_many(
        self,
        budgets: Sequence[float] | np.ndarray,
        *,
        n_min: float = 0.85,
        n_max: float = 100.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Largest feasible N per budget, for **all** budgets at once.

        Returns ``(chosen_n, edge)`` arrays: ``edge`` is the resolved
        bin index — equal edges mean equal N and therefore an identical
        payload (the planner's payload-cache key). Budgets that cannot
        fit even the ``n_min`` selection get ``n_min`` (the quality
        floor wins over the speed goal, as in the paper).
        """
        if not 0 < n_min <= n_max <= 100.0:
            raise ValueError("need 0 < n_min <= n_max <= 100")
        budgets = np.asarray(budgets, dtype=np.float64)
        # the fold is stored ascending, so one searchsorted yields, per
        # budget, the smallest edge (= largest N) whose upper-bound
        # payload still fits.
        rev = self._ensure_hist()
        fits = np.searchsorted(rev, budgets, side="right") - 1
        i_star = _BINS - np.maximum(fits, 0)
        idx_cap = int((1.0 - n_max / 100.0) * _BINS)  # edge of the N cap
        idx_floor = int((1.0 - n_min / 100.0) * _BINS)  # edge of the floor
        edge = np.clip(i_star, idx_cap, idx_floor + 1)
        chosen = np.where(
            edge <= idx_cap,
            n_max,
            np.where(edge > idx_floor, n_min, _N_AT_EDGE[np.minimum(edge, _BINS)]),
        )
        return chosen, edge

    def fit_edge(
        self, budget_bytes: float, *, n_min: float = 0.85, n_max: float = 100.0
    ) -> tuple[float, int]:
        """Scalar twin of :meth:`fit_many` for a single budget.

        Same searchsorted-and-clamp logic without the array round
        trips; returns the same ``(chosen_n, edge)`` the batched path
        would. The planner uses it on uniform-bandwidth plans, where
        every destination shares one budget.
        """
        if not 0 < n_min <= n_max <= 100.0:
            raise ValueError("need 0 < n_min <= n_max <= 100")
        rev = self._ensure_hist()
        fits = int(np.searchsorted(rev, budget_bytes, side="right")) - 1
        i_star = _BINS - max(fits, 0)
        idx_cap = int((1.0 - n_max / 100.0) * _BINS)
        idx_floor = int((1.0 - n_min / 100.0) * _BINS)
        edge = min(max(i_star, idx_cap), idx_floor + 1)
        if edge <= idx_cap:
            return n_max, edge
        if edge > idx_floor:
            return n_min, edge
        return float(_N_AT_EDGE[edge]), edge

    def fit(
        self, budget_bytes: float, *, n_min: float = 0.85, n_max: float = 100.0
    ) -> float:
        """Single-budget convenience wrapper over :meth:`fit_edge`."""
        return self.fit_edge(budget_bytes, n_min=n_min, n_max=n_max)[0]

    def fit_warm(
        self,
        budget_bytes: float,
        guess_edge: int,
        *,
        n_min: float = 0.85,
        n_max: float = 100.0,
        max_probes: int = 4,
        slope_hint: float | None = None,
        slack: int = 0,
    ) -> tuple[float, int] | None:
        """Try to resolve one budget from a previous iteration's fold.

        Each probe is one **exact** vectorized count (no histogram
        build); every returned edge is therefore exactly feasible.
        Without ``slope_hint`` the search walks the guess one edge at a
        time — right for guesses already at the answer. Minibatch
        gradient distributions, however, shift the optimal edge by tens
        of bins per iteration, so the planner passes ``slope_hint``
        (bytes per bin near the guess, read off the previous fold):
        each miss then takes a secant step sized by the exact byte
        error, which lands within a few bins of the true boundary.

        The search keeps a bracket — the best feasible edge found and
        the largest edge known infeasible — and certifies the answer
        optimal when the bracket closes. ``slack`` loosens that:
        a feasible edge at most ``slack`` bins above the certified
        bracket is accepted as-is (``slack`` bins = ``100·slack/4096``
        of N below the true optimum, at worst). Returns ``None`` after
        ``max_probes`` counts without an acceptable edge — the caller
        falls back to the batched :meth:`fit_many`. Because probes use
        exact counts while the histogram overcounts, a warm answer may
        sit above the batched one even at ``slack=0``; both are within
        one bin of the true optimum and exactly feasible.
        """
        if not 0 < n_min <= n_max <= 100.0:
            raise ValueError("need 0 < n_min <= n_max <= 100")
        if not self.supports_exact_counts:
            return None
        idx_cap = int((1.0 - n_max / 100.0) * _BINS)
        idx_floor = int((1.0 - n_min / 100.0) * _BINS)
        hi = idx_floor + 1

        def n_at(edge: int) -> float:
            if edge <= idx_cap:
                return n_max
            if edge > idx_floor:
                return n_min
            return float(_N_AT_EDGE[edge])

        edge = min(max(int(guess_edge), idx_cap), hi)
        best: tuple[float, int] | None = None  # smallest feasible so far
        inf_below = idx_cap - 1  # largest edge known infeasible
        for _ in range(max_probes):
            bytes_at = self.exact_bytes_at(n_at(edge))
            if bytes_at <= budget_bytes:
                if best is None or edge < best[1]:
                    best = (n_at(edge), edge)
                if edge - (inf_below + 1) <= slack:
                    # bracket closed (or within the accepted slack):
                    # the winning probe ran last, so its selection
                    # mask is the one left cached for select_payload
                    return best
                if slope_hint and budget_bytes - bytes_at < slope_hint * (slack + 1):
                    # the unused budget is worth at most ~slack more
                    # bins by the slope model: accept without paying
                    # probes to close the bracket exactly
                    return best
                if slope_hint:
                    step = int((budget_bytes - bytes_at) / slope_hint)
                    nxt = edge - max(step, 1)
                else:
                    nxt = edge - 1
                nxt = max(nxt, inf_below + 1)
                if nxt >= edge:
                    return best
                edge = nxt
            else:
                if edge >= hi:
                    # even the floor selection does not fit: the
                    # quality floor wins, same as fit_many's clamp
                    return n_min, hi
                inf_below = max(inf_below, edge)
                if best is not None and best[1] - (inf_below + 1) <= slack:
                    return best
                if slope_hint:
                    step = int((bytes_at - budget_bytes) / slope_hint)
                    nxt = edge + max(step, 1)
                else:
                    nxt = edge + 1
                nxt = min(nxt, hi)
                if best is not None:
                    nxt = min(nxt, best[1] - 1)
                if nxt <= edge:
                    return best
                edge = nxt
        return None

    def select_payload(
        self, n_percent: float
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Max-N payload at ``n_percent``, reusing the cached magnitudes.

        Identical output to :func:`repro.core.maxn.select_payload`, but
        skips the per-variable ``abs``/``max`` passes already paid at
        construction and runs one comparison over the concatenated map.
        """
        if not 0.0 < n_percent <= 100.0:
            raise ValueError(f"N must be in (0, 100], got {n_percent}")
        payload: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        if self._legacy_vars is not None:
            for name, (flat, mags, mx) in self._legacy_vars.items():
                if mx == 0.0:
                    continue
                idx = np.nonzero(mags >= (1.0 - n_percent / 100.0) * mx)[0]
                if idx.size:
                    payload[name] = (idx.astype(np.int64, copy=False), flat[idx])
            return payload
        if self._flats is None:
            return payload
        mask = self._mask_at(n_percent)
        bounds = self._bounds
        for i, name in enumerate(self._names):
            a, b = bounds[i]
            idx = np.nonzero(mask[a:b])[0]
            if idx.size:
                payload[name] = (idx, self._flats[i][idx])
        return payload


def fit_n_to_budget(
    grads: Mapping[str, np.ndarray],
    budget_bytes: float,
    *,
    n_min: float = 0.85,
    n_max: float = 100.0,
    precision: float = 0.01,
) -> float:
    """Largest N in ``[n_min, n_max]`` whose payload fits ``budget_bytes``.

    If even the ``n_min`` selection exceeds the budget, ``n_min`` is
    returned anyway — the quality floor wins over the speed goal, as in
    the paper ("the minimum N for max N algorithm [is] 0.85").

    ``precision`` is kept for backward compatibility: the batched
    resolver answers exactly at histogram-bin granularity (``100/4096``
    of N), which is also how far this answer can sit from the one the
    historical bisection (``_fit_n_bisect``) converges to.
    """
    if not 0 < n_min <= n_max <= 100.0:
        raise ValueError("need 0 < n_min <= n_max <= 100")
    del precision  # bin granularity subsumes it; see docstring
    with _profile.scope("maxn/fit_n_to_budget"):
        return GradientHistograms(grads).fit(budget_bytes, n_min=n_min, n_max=n_max)


def _fit_n_bisect(
    grads: Mapping[str, np.ndarray],
    budget_bytes: float,
    *,
    n_min: float = 0.85,
    n_max: float = 100.0,
    precision: float = 0.01,
) -> float:
    """The pre-batching per-link bisection over the binned upper bound.

    Kept as the reference implementation: the property suite asserts
    :func:`fit_n_to_budget` agrees with it within one histogram bin
    plus ``precision``, and the micro-benchmarks measure the batched
    planner's speedup against a per-link loop of these (which, like the
    historical code, rebuilds the histograms on every call).
    """
    if not 0 < n_min <= n_max <= 100.0:
        raise ValueError("need 0 < n_min <= n_max <= 100")
    hist = GradientHistograms(grads)
    if hist.bytes_at(n_max) <= budget_bytes:
        return n_max
    if hist.bytes_at(n_min) > budget_bytes:
        return n_min
    lo, hi = n_min, n_max  # feasible at lo, infeasible at hi
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if hist.bytes_at(mid) <= budget_bytes:
            lo = mid
        else:
            hi = mid
    return lo


def fit_level_to_budget(
    selector,
    grads: Mapping[str, np.ndarray],
    budget_bytes: float,
    *,
    level_min: float = 0.85,
    level_max: float = 100.0,
    precision: float = 0.01,
) -> float:
    """Generic budget fit for any :class:`GradientSelector`.

    Bisection over the quality level using the selector's exact
    ``count_at``. Selectors that vectorize ``count_at_levels`` should
    go through :func:`fit_levels_to_budgets` instead (the planner picks
    automatically); the Max-N fast path (:func:`fit_n_to_budget`)
    should be preferred when the selector is Max N itself.
    """
    if not 0 < level_min <= level_max <= 100.0:
        raise ValueError("need 0 < level_min <= level_max <= 100")

    with _profile.scope("maxn/fit_level_to_budget"):

        def bytes_at(level: float) -> int:
            total = 0
            for g in grads.values():
                cnt = selector.count_at(g, level)
                if cnt:
                    total += VARIABLE_HEADER_BYTES + 8 * cnt
            return total

        if bytes_at(level_max) <= budget_bytes:
            return level_max
        if bytes_at(level_min) > budget_bytes:
            return level_min
        lo, hi = level_min, level_max
        while hi - lo > precision:
            mid = 0.5 * (lo + hi)
            if bytes_at(mid) <= budget_bytes:
                lo = mid
            else:
                hi = mid
        return lo


# Grid resolution of the batched generic fit — mirrors the Max-N
# histogram so both paths answer at the same level granularity.
_LEVEL_GRID_POINTS = _BINS


def fit_levels_to_budgets(
    selector,
    grads: Mapping[str, np.ndarray],
    budgets: Sequence[float] | np.ndarray,
    *,
    level_min: float = 0.85,
    level_max: float = 100.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched generic fit: all budgets answered from one level grid.

    The selector's vectorized ``count_at_levels`` prices every grid
    level in one pass per variable; each budget then resolves by one
    ``searchsorted``. Because the counts are the selector's *exact*
    counts (not an upper bound), the chosen level's payload is exactly
    feasible whenever it exceeds ``level_min``. Answers agree with
    :func:`fit_level_to_budget` within one grid step,
    ``(level_max − level_min)/4096``.

    Returns ``(levels, grid_index)``; equal grid indices mean equal
    levels and therefore shareable payloads. Requires a selector whose
    ``count_at_levels`` is genuinely vectorized and monotone
    non-decreasing in level (the :class:`GradientSelector` contract) —
    the planner falls back to per-link bisection otherwise.
    """
    if not 0 < level_min <= level_max <= 100.0:
        raise ValueError("need 0 < level_min <= level_max <= 100")
    with _profile.scope("maxn/fit_levels_to_budgets"):
        budgets = np.asarray(budgets, dtype=np.float64)
        steps = np.arange(_LEVEL_GRID_POINTS + 1) / _LEVEL_GRID_POINTS
        grid = level_min + (level_max - level_min) * steps
        grid[-1] = level_max  # exact endpoint despite float rounding
        bytes_at = np.zeros(grid.size, dtype=np.int64)
        for g in grads.values():
            counts = np.asarray(selector.count_at_levels(g, grid), dtype=np.int64)
            bytes_at += 8 * counts + VARIABLE_HEADER_BYTES * (counts > 0)
        fits = np.searchsorted(bytes_at, budgets, side="right") - 1
        idx = np.maximum(fits, 0)  # fits < 0: even level_min is infeasible
        return grid[idx], idx


class TransmissionPlanner:
    """Builds per-link partial-gradient payloads for one worker.

    ``plan(grads, bandwidths_mbps, iter_time_s)`` returns, per
    destination, the chosen N and the sparse payload. A fixed-N config
    (Fig. 7 / Fig. 16 studies) bypasses the budget fit *and* the
    payload cache entirely. When the config names a non-default
    selector, the batched generic fit over that selector replaces the
    Max-N histogram fast path (or per-link bisection, for selectors
    without a vectorized ``count_at_levels``).

    Payload caching: destinations whose budgets resolve to the same
    histogram bin share one payload object — strictly more reuse than
    caching by bandwidth value, since distinct bandwidths frequently
    land in the same bin.

    Histogram reuse: pass ``plan_epoch`` (any equality-comparable
    token that changes every iteration, e.g. ``(worker_id, iteration)``)
    to reuse the histograms across ``plan`` calls within one iteration.
    Reuse requires both the token *and* the gradient-map object to
    match — a matching token with different gradients raises, so call
    sites cannot accidentally price stale histograms.
    """

    def __init__(self, config: MaxNConfig, *, selector=None):
        self.config = config
        if selector is None and config.selector != "maxn":
            from repro.core.selectors import make_selector

            selector = make_selector(
                config.selector, rng=np.random.default_rng(0)
            )
        self.selector = selector  # None = the Max-N fast path
        self._hist: GradientHistograms | None = None
        self._hist_epoch: object = None
        self._hist_grads: Mapping[str, np.ndarray] | None = None
        # most recent bytes-at-edge fold: the warm-start *guess* source
        # for later iterations (guesses need no freshness — every warm
        # answer is verified by exact counts on the current gradients).
        # _warm_miss counts consecutive uniform plans without a warm
        # hit; past the give-up streak the planner stops paying for
        # probes that keep failing (gradient distributions that shift
        # too fast per iteration) and only re-probes occasionally.
        self._stale_fold: np.ndarray | None = None
        self._warm_miss = 0
        # the process-wide buffer pool: planners across all simulated
        # workers take turns over the same working arrays, keeping them
        # cache-warm (a per-planner pool would go cold between any one
        # worker's iterations while the other workers train)
        self._scratch = _SHARED_SCRATCH

    def budget_bytes(self, bandwidth_mbps: float, iter_time_s: float) -> float:
        """``BW_net_j / Iter_com_i`` expressed in bytes per iteration.

        Scaled by the config's ``budget_fraction`` (1.0 in the paper's
        per-link shaping model; 1/peers under a shared NIC).
        """
        if bandwidth_mbps <= 0 or iter_time_s <= 0:
            raise ValueError("bandwidth and iteration time must be positive")
        bytes_per_sec = bandwidth_mbps * 1e6 / 8.0
        return bytes_per_sec * iter_time_s * self.config.budget_fraction

    def plan(
        self,
        grads: Mapping[str, np.ndarray],
        bandwidths_mbps: Mapping[int, float],
        iter_time_s: float,
        *,
        plan_epoch: object = None,
    ) -> dict[int, tuple[float, dict[str, tuple[np.ndarray, np.ndarray]]]]:
        """Per-destination ``(chosen_n, sparse_payload)``.

        Destinations whose budgets resolve to the same histogram bin
        (identical bandwidths in particular) reuse one payload object.
        """
        with _profile.scope("maxn/plan"):
            return self._plan(grads, bandwidths_mbps, iter_time_s, plan_epoch)

    def _histograms(
        self, grads: Mapping[str, np.ndarray], plan_epoch: object
    ) -> GradientHistograms:
        """Build (or reuse, same epoch + same gradient map) histograms."""
        if (
            plan_epoch is not None
            and self._hist is not None
            and plan_epoch == self._hist_epoch
        ):
            if grads is not self._hist_grads:
                raise ValueError(
                    f"plan_epoch {plan_epoch!r} was reused with a different "
                    "gradient map; pass a fresh token (e.g. the iteration "
                    "number) whenever the gradients change"
                )
            # another planner may have recycled the shared buffers in
            # the meantime; if so, rebuild (reuse is an optimization,
            # never a correctness requirement)
            if self._hist.buffers_valid(self._scratch):
                return self._hist
        hist = GradientHistograms(grads, scratch=self._scratch)
        if plan_epoch is not None:
            self._hist = hist
            self._hist_epoch = plan_epoch
            self._hist_grads = grads
        return hist

    def _plan(
        self,
        grads: Mapping[str, np.ndarray],
        bandwidths_mbps: Mapping[int, float],
        iter_time_s: float,
        plan_epoch: object,
    ) -> dict[int, tuple[float, dict[str, tuple[np.ndarray, np.ndarray]]]]:
        plans: dict[int, tuple[float, dict]] = {}
        cfg = self.config
        if cfg.fixed_n is not None:
            # Fixed-N studies bypass the fit and the cache: no budgets
            # are computed (zero-bandwidth links are fine here) and
            # every destination gets its own payload object.
            for dst in bandwidths_mbps:
                plans[dst] = (cfg.fixed_n, self._select(grads, cfg.fixed_n))
            return plans

        dsts = list(bandwidths_mbps)
        budgets = [
            self.budget_bytes(bandwidths_mbps[dst], iter_time_s) for dst in dsts
        ]

        if self.selector is None:
            hist = self._histograms(grads, plan_epoch)
            fits = self._fit_budgets(hist, budgets)
            shared: dict[int, dict] = {}
            for dst, (n, edge) in zip(dsts, fits):
                payload = shared.get(edge)
                if payload is None:
                    with _profile.scope("maxn/select_payload"):
                        payload = hist.select_payload(n)
                    shared[edge] = payload
                plans[dst] = (n, payload)
            return plans

        if (
            type(self.selector).count_at_levels
            is GradientSelector.count_at_levels
        ):
            # Documented fallback: this selector has no vectorized count
            # path, so each distinct budget is fit by bisection (and the
            # payload shared across links with equal budgets).
            cache: dict[float, tuple[float, dict]] = {}
            for dst, budget in zip(dsts, budgets):
                hit = cache.get(budget)
                if hit is None:
                    level = fit_level_to_budget(
                        self.selector,
                        grads,
                        budget,
                        level_min=cfg.n_min,
                        level_max=cfg.n_max,
                    )
                    hit = cache[budget] = (level, self._select(grads, level))
                plans[dst] = hit
            return plans

        levels, indices = fit_levels_to_budgets(
            self.selector, grads, budgets, level_min=cfg.n_min, level_max=cfg.n_max
        )
        shared = {}
        for dst, level, idx in zip(dsts, levels, indices):
            key = int(idx)
            payload = shared.get(key)
            if payload is None:
                with _profile.scope("maxn/select_payload"):
                    payload = self._select(grads, float(level))
                shared[key] = payload
            plans[dst] = (float(level), payload)
        return plans

    def _fit_budgets(
        self, hist: GradientHistograms, budgets: list[float]
    ) -> list[tuple[float, int]]:
        """``(chosen_n, edge)`` per budget, warm-starting when possible.

        A plan with a single distinct budget (uniform bandwidths — the
        common homogeneous-cluster case) guesses the edge from the most
        recent fold by one ``searchsorted`` — gradient *distributions*
        drift slowly across iterations even when the budget itself
        jumps around (measured iteration times jitter) — and verifies
        with a couple of exact counts on the current gradients. Only on
        a verification miss (or with heterogeneous budgets) does the
        batched histogram fit run, which also refreshes the guess
        source.
        """
        cfg = self.config
        uniform = len(set(budgets)) == 1
        if uniform and self._stale_fold is not None:
            if self._warm_miss < 4 or self._warm_miss % 64 == 0:
                with _profile.scope("maxn/fit_warm"):
                    stale = self._stale_fold
                    fit = (
                        int(np.searchsorted(stale, budgets[0], side="right")) - 1
                    )
                    k = max(fit, 0)
                    guess = _BINS - k
                    # local byte-cost of one bin near the guess, read
                    # off the stale fold: sizes the secant steps and
                    # the early-accept margin inside fit_warm
                    k1 = max(k - 64, 0)
                    k2 = min(k + 64, _BINS)
                    slope = float(stale[k2] - stale[k1]) / max(k2 - k1, 1)
                    # 8 probes, not the default 4: one extra probe
                    # (~60us) is far cheaper than the fold rebuild a
                    # miss forces (~340us), so spend probes generously
                    warm = hist.fit_warm(
                        budgets[0],
                        guess,
                        n_min=cfg.n_min,
                        n_max=cfg.n_max,
                        max_probes=8,
                        slope_hint=max(slope, 8.0),
                        slack=4,
                    )
                if warm is not None:
                    self._warm_miss = 0
                    return [warm] * len(budgets)
            self._warm_miss += 1
        if uniform:
            n, edge = hist.fit_edge(budgets[0], n_min=cfg.n_min, n_max=cfg.n_max)
            self._stale_fold = hist.folded
            return [(n, edge)] * len(budgets)
        chosen, edges = hist.fit_many(budgets, n_min=cfg.n_min, n_max=cfg.n_max)
        self._stale_fold = hist.folded
        return [(float(n), int(e)) for n, e in zip(chosen, edges)]

    def _select(self, grads: Mapping[str, np.ndarray], level: float) -> dict:
        if self.selector is None:
            return select_payload(grads, level)
        payload = {}
        for name, g in grads.items():
            idx, vals = self.selector.select(g, level)
            if idx.size:
                payload[name] = (idx, vals)
        return payload
