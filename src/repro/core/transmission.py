"""Transmission speed assurance (§3.3).

Per link and per iteration, pick the **largest** Max-N value whose
encoded payload fits the link's byte budget

    budget_j = BW_net_j / Iter_com_i

— the bytes the link to worker j can carry during the time worker i
takes to produce the next gradient (``Iter_com_i`` = iterations per unit
time). The chosen N is floored at ``n_min`` (the data-quality floor,
0.85 in the paper's runs) and capped at ``n_max``.

Performance: evaluating a candidate N must not re-scan the gradient —
models can have single variables with ~10⁶ entries and this runs every
iteration. We build one magnitude histogram per variable (one O(n)
pass) whose suffix-cumulative counts answer "how many entries fall in
the top-N% band" in O(1), *rounding the count up* (bin-granularity), so
a candidate judged feasible is guaranteed feasible exactly. A bisection
over N then finds the largest feasible value.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cluster.messages import VARIABLE_HEADER_BYTES
from repro.core.config import MaxNConfig
from repro.core.maxn import select_payload
from repro.obs import profile as _profile

__all__ = ["fit_n_to_budget", "TransmissionPlanner"]

_BINS = 4096


def _suffix_histograms(
    grads: Mapping[str, np.ndarray]
) -> list[np.ndarray | None]:
    """Per variable: suffix counts of normalized-magnitude bins.

    ``suffix[i]`` = number of entries with ``|g|/max|g| >= i / _BINS``
    (so ``suffix[0] == size`` and ``suffix[_BINS]`` counts only the
    max-magnitude bin's upper edge, i.e. 0 by construction of the
    padding). ``None`` marks an all-zero gradient (nothing to send).
    """
    out: list[np.ndarray | None] = []
    for g in grads.values():
        mags = np.abs(g.reshape(-1))
        mx = float(mags.max(initial=0.0))
        if mx == 0.0:
            out.append(None)
            continue
        # Direct quantize + bincount: same bins as np.histogram over
        # (0, mx) but ~3x faster on large variables (this runs every
        # training iteration). Normalize before scaling so subnormal
        # maxima cannot overflow the scale factor.
        bins = np.minimum(
            ((mags / mx) * _BINS).astype(np.int64), _BINS - 1
        )
        hist = np.bincount(bins, minlength=_BINS)
        suffix = np.zeros(_BINS + 1, dtype=np.int64)
        suffix[:_BINS] = np.cumsum(hist[::-1])[::-1]
        out.append(suffix)
    return out


def _upper_bound_bytes(suffixes: list[np.ndarray | None], n: float) -> int:
    """An upper bound on the Max-N payload size (never an underestimate).

    The threshold ``(1 − N/100)·max`` is rounded *down* to its bin edge,
    so the per-variable count can only overcount — a feasibility verdict
    from this bound is always exact-feasible.
    """
    thr = 1.0 - n / 100.0
    total = 0
    for suffix in suffixes:
        if suffix is None:
            continue
        idx = min(_BINS, max(0, int(thr * _BINS)))
        cnt = int(suffix[idx])
        if cnt:
            total += VARIABLE_HEADER_BYTES + 8 * cnt
    return total


def fit_n_to_budget(
    grads: Mapping[str, np.ndarray],
    budget_bytes: float,
    *,
    n_min: float = 0.85,
    n_max: float = 100.0,
    precision: float = 0.01,
) -> float:
    """Largest N in ``[n_min, n_max]`` whose payload fits ``budget_bytes``.

    If even the ``n_min`` selection exceeds the budget, ``n_min`` is
    returned anyway — the quality floor wins over the speed goal, as in
    the paper ("the minimum N for max N algorithm [is] 0.85").
    """
    if not 0 < n_min <= n_max <= 100.0:
        raise ValueError("need 0 < n_min <= n_max <= 100")
    with _profile.scope("maxn/fit_n_to_budget"):
        suffixes = _suffix_histograms(grads)
        if _upper_bound_bytes(suffixes, n_max) <= budget_bytes:
            return n_max
        if _upper_bound_bytes(suffixes, n_min) > budget_bytes:
            return n_min
        lo, hi = n_min, n_max  # feasible at lo, infeasible at hi
        while hi - lo > precision:
            mid = 0.5 * (lo + hi)
            if _upper_bound_bytes(suffixes, mid) <= budget_bytes:
                lo = mid
            else:
                hi = mid
        return lo


def fit_level_to_budget(
    selector,
    grads: Mapping[str, np.ndarray],
    budget_bytes: float,
    *,
    level_min: float = 0.85,
    level_max: float = 100.0,
    precision: float = 0.01,
) -> float:
    """Generic budget fit for any :class:`GradientSelector`.

    Bisection over the quality level using the selector's exact
    ``count_at``; the Max-N fast path (:func:`fit_n_to_budget`) should
    be preferred when the selector is Max N itself.
    """
    if not 0 < level_min <= level_max <= 100.0:
        raise ValueError("need 0 < level_min <= level_max <= 100")

    def bytes_at(level: float) -> int:
        total = 0
        for g in grads.values():
            cnt = selector.count_at(g, level)
            if cnt:
                total += VARIABLE_HEADER_BYTES + 8 * cnt
        return total

    if bytes_at(level_max) <= budget_bytes:
        return level_max
    if bytes_at(level_min) > budget_bytes:
        return level_min
    lo, hi = level_min, level_max
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if bytes_at(mid) <= budget_bytes:
            lo = mid
        else:
            hi = mid
    return lo


class TransmissionPlanner:
    """Builds per-link partial-gradient payloads for one worker.

    ``plan(grads, bandwidths_mbps, iter_time_s)`` returns, per
    destination, the chosen N and the sparse payload. A fixed-N config
    (Fig. 7 / Fig. 16 studies) bypasses the budget fit entirely. When
    the config names a non-default selector, the generic fit over that
    selector replaces the Max-N histogram fast path.
    """

    def __init__(self, config: MaxNConfig, *, selector=None):
        self.config = config
        if selector is None and config.selector != "maxn":
            from repro.core.selectors import make_selector

            selector = make_selector(
                config.selector, rng=np.random.default_rng(0)
            )
        self.selector = selector  # None = the Max-N fast path

    def budget_bytes(self, bandwidth_mbps: float, iter_time_s: float) -> float:
        """``BW_net_j / Iter_com_i`` expressed in bytes per iteration.

        Scaled by the config's ``budget_fraction`` (1.0 in the paper's
        per-link shaping model; 1/peers under a shared NIC).
        """
        if bandwidth_mbps <= 0 or iter_time_s <= 0:
            raise ValueError("bandwidth and iteration time must be positive")
        bytes_per_sec = bandwidth_mbps * 1e6 / 8.0
        return bytes_per_sec * iter_time_s * self.config.budget_fraction

    def plan(
        self,
        grads: Mapping[str, np.ndarray],
        bandwidths_mbps: Mapping[int, float],
        iter_time_s: float,
    ) -> dict[int, tuple[float, dict[str, tuple[np.ndarray, np.ndarray]]]]:
        """Per-destination ``(chosen_n, sparse_payload)``.

        Destinations whose links share a bandwidth value reuse one
        selection (payloads are identical for identical N).
        """
        with _profile.scope("maxn/plan"):
            return self._plan(grads, bandwidths_mbps, iter_time_s)

    def _plan(
        self,
        grads: Mapping[str, np.ndarray],
        bandwidths_mbps: Mapping[int, float],
        iter_time_s: float,
    ) -> dict[int, tuple[float, dict[str, tuple[np.ndarray, np.ndarray]]]]:
        plans: dict[int, tuple[float, dict]] = {}
        cache: dict[float, tuple[float, dict]] = {}
        for dst, bw in bandwidths_mbps.items():
            key = round(bw, 6)
            if self.config.fixed_n is None and key in cache:
                plans[dst] = cache[key]
                continue
            if self.config.fixed_n is not None:
                n = self.config.fixed_n
            elif self.selector is not None:
                n = fit_level_to_budget(
                    self.selector,
                    grads,
                    self.budget_bytes(bw, iter_time_s),
                    level_min=self.config.n_min,
                    level_max=self.config.n_max,
                )
            else:
                n = fit_n_to_budget(
                    grads,
                    self.budget_bytes(bw, iter_time_s),
                    n_min=self.config.n_min,
                    n_max=self.config.n_max,
                )
            payload = self._select(grads, n)
            plans[dst] = (n, payload)
            if self.config.fixed_n is None:
                cache[key] = plans[dst]
        return plans

    def _select(self, grads: Mapping[str, np.ndarray], level: float) -> dict:
        if self.selector is None:
            return select_payload(grads, level)
        payload = {}
        for name, g in grads.items():
            idx, vals = self.selector.select(g, level)
            if idx.size:
                payload[name] = (idx, vals)
        return payload
