"""The run-accounting metric families shared by both backends.

The simulator (:class:`~repro.core.engine.TrainingEngine`) and the live
multi-process backend (:mod:`repro.transport.runtime`) must report the
same metric catalog with the same names and label schemas — that is
what lets ``repro-dlion report`` and a ``--metrics-out`` dump read
identically whichever backend produced them, and what the sim/live
parity tests compare. Registering the families in one place keeps the
two backends from drifting.

The catalog is documented in ``docs/observability.md``. Transport-layer
families (``transport_*``) live in :class:`TransportMetrics` below —
they are instantiated by :class:`repro.transport.mesh.PeerMesh` because
only the live backend has real sockets to account for, but their names,
label schemas, and buckets are catalogued here next to everything else
so the two backends (and the telemetry docs) read one source of truth.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["RunMetrics", "TransportMetrics"]

# Wire frames range from padded control messages (~128 B) to dense
# full-model weight snapshots (MBs); log-spaced byte buckets cover both.
FRAME_BYTES_BUCKETS = (
    128.0, 512.0, 2048.0, 8192.0, 32768.0, 131072.0,
    524288.0, 2097152.0, 8388608.0,
)

# Frame latency = enqueue to drained write. Loopback sits in the
# sub-millisecond range; shaped (token-bucket paced) links reach
# seconds, so the buckets span both regimes.
FRAME_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class RunMetrics:
    """Registers (or re-attaches to) the run metric families.

    Instantiating this against a registry is idempotent: families are
    get-or-create, so an engine can attach to a registry that already
    carries series (e.g. the parent registry a live run merges into).
    """

    def __init__(self, registry: MetricsRegistry):
        m = registry
        self.registry = registry
        self.c_grad_bytes = m.counter(
            "grad_bytes_total", "gradient payload bytes per directed link",
            ("src", "dst"),
        )
        self.c_grad_msgs = m.counter(
            "grad_msgs_total", "gradient messages per directed link",
            ("src", "dst"),
        )
        self.c_weight_bytes = m.counter(
            "weight_bytes_total", "DKT weight-snapshot bytes per directed link",
            ("src", "dst"),
        )
        self.h_chosen_n = m.histogram(
            "maxn_chosen_n", "Max-N value chosen per link decision", ("link",),
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0),
        )
        self.c_iterations = m.counter(
            "iterations_total", "completed gradient iterations", ("worker",)
        )
        self.h_iteration_s = m.histogram(
            "iteration_seconds", "simulated duration of one iteration",
            ("worker",),
        )
        self.h_wait_s = m.histogram(
            "sync_wait_seconds", "simulated length of one sync-gate wait",
            ("worker",),
        )
        self.c_wait_total = m.counter(
            "sync_wait_seconds_total",
            "simulated seconds blocked on the sync gate", ("worker",),
        )
        self.c_compute_total = m.counter(
            "compute_seconds_total",
            "simulated seconds computing gradients", ("worker",),
        )
        self.c_dkt_merges = m.counter(
            "dkt_merges_total", "DKT weight merges applied", ("worker",)
        )
        self.c_dkt_pulls = m.counter(
            "dkt_pulls_total", "DKT weight-pull requests sent", ("worker",)
        )
        self.g_gbs = m.gauge("gbs", "current global batch size")
        self.g_lbs = m.gauge("lbs", "current local batch size", ("worker",))
        self.g_queue_depth = m.gauge(
            "queue_depth",
            "pending messages in a worker's queue, per kind",
            ("worker", "kind"),
        )
        self.c_queue_dropped = m.counter(
            "queue_dropped_total",
            "messages rejected by a bounded worker queue, per kind",
            ("worker", "kind"),
        )
        self.g_active = m.gauge("active_workers", "currently active workers")
        self.c_events = m.counter(
            "events_processed", "simulation events dispatched"
        )
        # Crash-recovery accounting (docs/robustness.md). The live
        # backend measures recovery in wall seconds (kill detection to
        # rejoin-go); the simulator records the plan's modelled
        # restart_after — both land in the same family so dashboards
        # and the parity tests read one catalog.
        self.c_worker_restarts = m.counter(
            "worker_restarts_total",
            "supervised worker respawns after a crash", ("worker",),
        )
        self.h_recovery_s = m.histogram(
            "recovery_time_seconds",
            "crash detection to rejoin-go, per recovery", ("worker",),
            buckets=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0),
        )
        self.c_lost_iterations = m.counter(
            "lost_iterations_total",
            "iterations lost to a crash (progress beyond the restored "
            "checkpoint)", ("worker",),
        )
        self.g_partition = m.gauge(
            "partition_active",
            "currently-active injected link blackout windows",
        )
        self.c_chaos_dropped = m.counter(
            "chaos_dropped_total",
            "messages dropped by fault injection", ("src", "dst"),
        )
        # Wall-clock attribution (populated at finalize when a profiler
        # is attached, empty otherwise): lets a --metrics-out dump carry
        # the same per-scope numbers the --profile table prints.
        self.c_profile_seconds = m.counter(
            "profile_seconds_total",
            "wall-clock seconds per profiler scope", ("scope",),
        )
        self.c_profile_calls = m.counter(
            "profile_calls_total", "profiler scope entries", ("scope",)
        )


class TransportMetrics:
    """The ``transport_*`` families recorded by the live mesh.

    Same idempotent get-or-create discipline as :class:`RunMetrics`;
    :class:`repro.transport.mesh.PeerMesh` instantiates this when a
    registry is attached (sim-backend dumps carry no empty transport
    series). Per-link telemetry labels directed edges ``(src, dst)``
    plus the channel name (``control`` / ``data``).
    """

    def __init__(self, registry: MetricsRegistry):
        m = registry
        self.registry = registry
        self.connects = m.counter(
            "transport_connect_total",
            "successful outgoing transport connections", ("worker", "peer"),
        )
        self.reconnects = m.counter(
            "transport_reconnect_total",
            "connections re-established after an established link dropped",
            ("worker", "peer"),
        )
        self.retries = m.counter(
            "transport_retry_total",
            "failed connection attempts (incl. backoff retries)",
            ("worker", "peer"),
        )
        self.send_bytes = m.counter(
            "transport_send_bytes_total",
            "bytes actually written per directed link and channel",
            ("src", "dst", "channel"),
        )
        self.send_msgs = m.counter(
            "transport_send_msgs_total",
            "frames actually written per directed link and channel",
            ("src", "dst", "channel"),
        )
        self.coalesced = m.counter(
            "transport_coalesced_frames_total",
            "frames written as part of a multi-frame batched write",
            ("src", "dst", "channel"),
        )
        self.lane = m.gauge(
            "transport_lane",
            "active lane per outgoing data link (1 on the selected lane: "
            "shm ring or tcp socket)",
            ("worker", "dst", "lane"),
        )
        self.dropped = m.counter(
            "transport_dropped_total",
            "frames dropped (outbox full or peer declared dead)",
            ("src", "dst", "channel"),
        )
        self.heartbeats = m.counter(
            "transport_heartbeat_total", "heartbeat rounds sent", ("worker",)
        )
        self.revives = m.counter(
            "transport_revive_total",
            "peer resurrections applied (links rebuilt at a new address)",
            ("worker", "peer"),
        )
        self.outbox_depth = m.gauge(
            "transport_outbox_depth",
            "queued frames per outgoing link",
            ("worker", "dst", "channel"),
        )
        self.outbox_high_water = m.gauge(
            "transport_outbox_high_water",
            "deepest the outgoing link's outbox has ever been",
            ("worker", "dst", "channel"),
        )
        self.h_frame_latency = m.histogram(
            "transport_frame_latency_seconds",
            "enqueue-to-drained-write latency per frame",
            ("src", "dst", "channel"),
            buckets=FRAME_LATENCY_BUCKETS,
        )
        self.h_frame_bytes = m.histogram(
            "transport_frame_bytes",
            "wire size of frames actually written",
            ("src", "dst", "channel"),
            buckets=FRAME_BYTES_BUCKETS,
        )
        self.stall_seconds = m.counter(
            "transport_stall_seconds_total",
            "wall seconds sender tasks slept in the token-bucket shaper",
            ("src", "dst"),
        )
        self.hb_rtt = m.gauge(
            "transport_heartbeat_rtt_seconds",
            "latest heartbeat round-trip time (send to echoed ack)",
            ("worker", "peer"),
        )
