"""Global batch size controller (§3.2).

Grows GBS in two phases once training has passed ``start_epoch``:

* **warm-up** — arithmetic progression ``GBS += C_warmup`` until GBS
  exceeds 1% of the training-set size;
* **speed-up** — geometric progression ``GBS *= C_speedup`` until GBS
  exceeds 10% of the training-set size, then stops for good.

The controller is a pure, deterministic function of the training
progress it has been shown, so every worker computing it from shared
progress reaches the same GBS without central coordination.
"""

from __future__ import annotations

from repro.core.config import GbsConfig

__all__ = ["GbsController"]


class GbsController:
    """Stateful GBS schedule."""

    WARMUP = "warmup"
    SPEEDUP = "speedup"
    DONE = "done"

    def __init__(self, config: GbsConfig, *, initial_gbs: int, train_size: int):
        if initial_gbs < 1:
            raise ValueError("initial GBS must be >= 1")
        if train_size < 1:
            raise ValueError("train_size must be >= 1")
        self.config = config
        self.train_size = train_size
        self.gbs = int(initial_gbs)
        self.phase = self.WARMUP
        self._warmup_cap = config.warmup_cap_frac * train_size
        self._speedup_cap = config.speedup_cap_frac * train_size
        self._last_growth_epoch: float | None = None
        # A GBS already past a cap skips the corresponding phase.
        self._advance_phase_if_capped()

    def _advance_phase_if_capped(self) -> None:
        if self.phase == self.WARMUP and self.gbs > self._warmup_cap:
            self.phase = self.SPEEDUP
        if self.phase == self.SPEEDUP and self.gbs > self._speedup_cap:
            self.phase = self.DONE

    def maybe_update(self, epoch: float) -> int:
        """One controller tick at training progress ``epoch``.

        Returns the (possibly unchanged) GBS. Ticks before
        ``start_epoch`` and after the speed-up cap are no-ops.
        """
        if not self.config.enabled:
            return self.gbs
        if epoch < self.config.start_epoch or self.phase == self.DONE:
            return self.gbs
        gap = self.config.min_epochs_between_updates
        if (
            gap > 0
            and self._last_growth_epoch is not None
            and epoch - self._last_growth_epoch < gap
        ):
            return self.gbs
        self._last_growth_epoch = epoch
        if self.phase == self.WARMUP:
            self.gbs += self.config.warmup_increment
        elif self.phase == self.SPEEDUP:
            self.gbs = int(round(self.gbs * self.config.speedup_factor))
        self._advance_phase_if_capped()
        return self.gbs
