"""Local batch size controller (§3.2).

Measures each worker's *relative compute power* (RCP) — "a maximum local
batch size that worker i can process during a given unit time" — by
fitting iteration time against batch size with linear regression over
timed probe iterations, then splits the GBS proportionally (Eq. 5):

    LBS_i = GBS * RCP_i / Σ_j RCP_j

``allocate_lbs`` performs the proportional split with largest-remainder
rounding so that Σ LBS_i == GBS exactly (the paper's invariant).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.config import LbsConfig
from repro.utils.linreg import fit_line

__all__ = ["LbsController", "allocate_lbs"]


def allocate_lbs(
    gbs: int, rcps: Sequence[float], *, min_lbs: int = 1
) -> list[int]:
    """Split ``gbs`` across workers proportionally to their RCPs.

    Largest-remainder rounding preserves ``sum(result) == gbs``; every
    worker receives at least ``min_lbs`` (taken from the largest shares
    if the proportional share rounds to zero).
    """
    n = len(rcps)
    if n == 0:
        raise ValueError("no workers")
    if gbs < n * min_lbs:
        raise ValueError(f"GBS {gbs} too small for {n} workers at min_lbs={min_lbs}")
    arr = np.asarray(rcps, dtype=float)
    if (arr < 0).any():
        raise ValueError("RCPs must be non-negative")
    total = arr.sum()
    if total <= 0:
        # No information: fall back to an even split.
        arr = np.ones(n)
        total = float(n)

    raw = gbs * arr / total
    base = np.floor(raw).astype(int)
    remainder = gbs - int(base.sum())
    # Hand out the leftover units to the largest fractional parts
    # (ties broken by worker index for determinism).
    frac_order = np.argsort(-(raw - base), kind="stable")
    base[frac_order[:remainder]] += 1

    # Enforce the floor, stealing from the largest allocations.
    for i in range(n):
        while base[i] < min_lbs:
            donor = int(np.argmax(base))
            if base[donor] <= min_lbs:
                raise ValueError("cannot satisfy min_lbs for all workers")
            base[donor] -= 1
            base[i] += 1
    assert int(base.sum()) == gbs
    return [int(b) for b in base]


class LbsController:
    """Per-worker RCP measurement.

    ``profile`` runs timed probe iterations through a caller-supplied
    ``probe(batch_size) -> seconds`` function (in the simulator this
    consumes simulated time; on real hardware it would wrap a training
    step), fits the time-vs-batch line, and returns the RCP estimate.
    """

    def __init__(self, config: LbsConfig):
        self.config = config
        self.last_fit = None
        self.last_rcp: float | None = None

    def profile(self, probe: Callable[[int], float]) -> float:
        """Measure RCP with the configured probe schedule."""
        xs: list[float] = []
        ys: list[float] = []
        for b in self.config.probe_batches:
            for _ in range(self.config.probe_repeats):
                xs.append(float(b))
                ys.append(float(probe(int(b))))
        fit = fit_line(xs, ys)
        self.last_fit = fit
        self.last_rcp = self._rcp_from_fit(fit, xs, ys)
        return self.last_rcp

    def _rcp_from_fit(self, fit, xs: list[float], ys: list[float]) -> float:
        """Invert the fitted line at the unit time.

        Falls back to a direct throughput estimate when the fit is
        degenerate (noise can produce a non-positive slope on a very
        fast worker).
        """
        unit = self.config.unit_time_s
        if fit.slope > 1e-9:
            rcp = fit.invert(unit)
            if rcp >= 1.0:
                return float(rcp)
        # Fallback: samples/sec from the largest probe, scaled to unit time.
        best = max(x / y for x, y in zip(xs, ys) if y > 0)
        return max(1.0, best * unit)

    def probe_cost(self, probe_times: Sequence[float]) -> float:
        """Total simulated time a profiling pass consumed."""
        return float(sum(probe_times))
