"""Speculative parallel gradient computation (the compute pool).

The simulator is a single-threaded discrete-event loop, but the real
``loss_and_grads`` work it performs per iteration is data-independent
across workers *between* model writes: worker ``k``'s gradient at its
next completion instant depends only on its own model replica, which
changes exclusively inside event handlers (its own update, a delivered
peer gradient, a DKT merge). The pool exploits this by **speculating**:
when an iteration-completion event fires, it scans the pending event
heap in timestamp order and submits the numeric work for upcoming
completions to a persistent thread pool, provided no model-writing
event is scheduled to reach that worker first. NumPy's BLAS kernels
release the GIL, so the W workers' GEMMs genuinely overlap.

Correctness never depends on the speculation being right:

* every worker carries a ``model_version`` counter bumped *after* each
  model write; a task records the version at submission and is only
  **committed** if the version still matches at its completion event
  (so a write that lands in between — including one scheduled after
  the scan ran — forces a recompute with the up-to-date model);
* a speculative step's side effects (BatchNorm running statistics,
  Dropout RNG position) are snapshotted at submission via
  ``Model.save_step_state`` and restored before any recompute, and the
  minibatch drawn at submission is reused, so the miss path replays
  exactly the serial computation;
* a torn read (the pool thread racing a concurrent main-thread write)
  can only produce a result that the version check then discards.

Because each worker has at most one in-flight completion event and all
sampler draws happen once per iteration in iteration order, the
per-worker RNG streams advance exactly as in serial execution; epoch
accounting (``samples_drawn``) is deferred to the completion instant
via ``MinibatchSampler.commit``. Runs are therefore **byte-identical**
for any thread count — the determinism suite compares full metric
dumps and trace files across ``--compute-threads 1`` and ``4``.

Speculation hit/miss counts are exposed as pool attributes only; they
are deliberately kept out of the MetricsRegistry because they vary
with thread count while every registered metric must not.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import profile as _profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import TrainingEngine
    from repro.core.worker import Worker

__all__ = ["ComputePool", "ComputeTask"]


class ComputeTask:
    """One speculative ``loss_and_grads`` in flight for one worker."""

    __slots__ = (
        "worker_id", "batch", "version", "xb", "yb",
        "saved_state", "sampler_state", "future",
    )

    def __init__(
        self,
        worker_id: int,
        batch: int,
        version: int,
        xb: np.ndarray,
        yb: np.ndarray,
        saved_state: list,
        sampler_state: dict,
        future: Future,
    ):
        self.worker_id = worker_id
        self.batch = batch
        self.version = version
        self.xb = xb
        self.yb = yb
        self.saved_state = saved_state
        self.sampler_state = sampler_state
        self.future = future


class ComputePool:
    """Runs workers' forward/backward steps on a thread pool, speculatively.

    With ``threads == 1`` every call degenerates to the historical
    serial path (no executor is ever created); the engine still routes
    through :meth:`collect` so there is exactly one code path.
    """

    def __init__(self, engine: "TrainingEngine", threads: int = 1):
        if threads < 1:
            raise ValueError("compute pool needs at least one thread")
        self.engine = engine
        self.threads = threads
        self._executor: ThreadPoolExecutor | None = None
        self._tasks: dict[int, ComputeTask] = {}
        # Diagnostics only — never registered as metrics (see module doc).
        self.hits = 0
        self.misses = 0
        self.discards = 0
        self._classified = False

    def enabled(self) -> bool:
        """Whether speculation is on (more than one compute thread)."""
        return self.threads > 1

    # ------------------------------------------------------------------
    # Event classification (lazy: avoids import cycles at module load)
    # ------------------------------------------------------------------
    def _classify(self) -> None:
        from repro.core.engine import TrainingEngine
        from repro.core.worker import Worker

        self._fn_finish = Worker._finish_iteration
        self._fn_deliver = TrainingEngine._deliver_checked
        self._fn_barrier = {TrainingEngine._apply_membership_event}
        self._fn_neutral = {
            Worker.set_gbs,
            Worker.try_start_iteration,
            TrainingEngine._gbs_tick,
        }
        # Delivery handlers that write the destination model, vs. those
        # that provably do not touch it (or only read parameters, which
        # the pool never writes).
        self._h_writes = {Worker.on_gradient_message, Worker.on_weight_message}
        self._h_neutral = {
            Worker.on_loss_share,
            Worker.on_dkt_request,
            Worker.on_rcp_share,
            Worker.on_control_message,
        }
        self._classified = True

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-compute"
            )
        return self._executor

    def _submit(self, worker: "Worker", batch: int) -> None:
        model = worker.model
        sampler = worker.sampler
        task = ComputeTask(
            worker_id=worker.worker_id,
            batch=batch,
            version=worker.model_version,
            xb=None,  # filled below (draw may raise; keep task unregistered)
            yb=None,
            saved_state=model.save_step_state(),
            sampler_state=sampler.rng.bit_generator.state,
            future=None,
        )
        task.xb, task.yb = sampler.draw_uncounted(batch)
        # Propagate the caller's context (active profiler) to the pool
        # thread so nn/* scopes attribute correctly under --profile.
        ctx = contextvars.copy_context()
        task.future = self._ensure_executor().submit(
            ctx.run, model.loss_and_grads, task.xb, task.yb
        )
        self._tasks[worker.worker_id] = task

    def prefetch(self) -> None:
        """Scan the pending event heap and speculate on safe completions.

        Walks events in firing order. An iteration-completion event for
        a worker no model-writing delivery reaches first is submitted to
        the pool; a membership event or any unrecognized event is a
        conservative barrier (nothing beyond it is speculated). Writes
        scheduled *after* this scan are caught by the version check at
        commit time, so the scan only has to be conservative, not
        clairvoyant.
        """
        if not self.enabled():
            return
        if not self._classified:
            self._classify()
        dirty: set[int] = set()
        for ev in self.engine.clock.iter_pending():
            if ev.cancelled:
                continue
            func = getattr(ev.fn, "__func__", ev.fn)
            if func is self._fn_finish:
                worker = ev.fn.__self__
                wid = worker.worker_id
                if wid not in dirty and wid not in self._tasks and worker.active:
                    self._submit(worker, ev.args[0])
            elif func is self._fn_deliver:
                dst, handler, _msg = ev.args
                hfunc = getattr(handler, "__func__", handler)
                if hfunc not in self._h_neutral:
                    dirty.add(dst)
            elif func in self._fn_neutral:
                continue
            elif func in self._fn_barrier:
                break
            else:
                break  # unknown event kind: stop speculating

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def collect(self, worker: "Worker", batch: int) -> tuple[float, dict]:
        """Produce this iteration's (loss, grads) at its completion event.

        Serial path (no task pending) draws and computes inline — the
        historical behaviour. Otherwise the speculative result is
        committed if the model is untouched since submission, or the
        step is replayed from the submission-time snapshot.
        """
        task = self._tasks.pop(worker.worker_id, None)
        if task is None:
            xb, yb = worker.sampler.draw(batch)
            return worker.model.loss_and_grads(xb, yb)
        assert task.batch == batch, "completion event batch drifted from submission"
        with _profile.scope("engine/compute_pool"):
            try:
                result = task.future.result()
            except Exception:  # torn state mid-speculation; replay below
                result = None
        if result is not None and task.version == worker.model_version:
            self.hits += 1
            worker.sampler.commit(batch)
            return result
        self.misses += 1
        worker.model.restore_step_state(task.saved_state)
        worker.sampler.commit(batch)
        return worker.model.loss_and_grads(task.xb, task.yb)

    def discard(self, worker: "Worker") -> None:
        """Throw away a pending task as if it was never submitted.

        Used when a worker turns out to be inactive at its completion
        event: serial execution would not have drawn a batch at all, so
        both the model side effects and the sampler RNG are rewound.
        """
        task = self._tasks.pop(worker.worker_id, None)
        if task is None:
            return
        try:
            task.future.result()  # join: the thread must stop mutating first
        except Exception:
            pass
        self.discards += 1
        worker.model.restore_step_state(task.saved_state)
        worker.sampler.rng.bit_generator.state = task.sampler_state

    def drain(self) -> None:
        """Discard every in-flight task (finalization / early stop).

        Must run before final evaluations: speculative steps for events
        past the horizon have already advanced BatchNorm statistics and
        RNG streams that ``Model.evaluate`` and the books would observe.
        """
        for wid in list(self._tasks):
            self.discard(self.engine.workers[wid])

    def shutdown(self) -> None:
        """Tear down the executor (idempotent; tasks must be drained)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
