"""Direct knowledge transfer (§3.4).

Workers periodically share the average of their last ``l`` training
losses; each worker then asks the currently-best worker (smallest shared
loss) for its weights and merges them into the local model:

    w_local ← w_local − λ (w_local − w_best)

λ = 0 disables DKT; λ = 1 replaces local weights outright. The
*whom-to-send* variants from Fig. 9b: ``all`` (every worker pulls from
the best — Best2all) and ``worst`` (only the currently-worst worker
pulls — Best2worst).
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

import numpy as np

from repro.core.config import DktConfig

__all__ = ["merge_weights", "DktState"]


def merge_weights(
    local: Mapping[str, np.ndarray],
    best: Mapping[str, np.ndarray],
    lam: float,
) -> None:
    """In-place merge ``w_local -= λ (w_local − w_best)`` per variable."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    if lam == 0.0:
        return
    for name, w in local.items():
        wb = best[name]
        if wb.shape != w.shape:
            raise ValueError(f"weight shape mismatch for {name}")
        # w = (1-λ) w + λ w_best, written as two in-place ops.
        w *= 1.0 - lam
        w += lam * wb


class DktState:
    """One worker's view of the DKT protocol.

    Tracks the trailing loss window, the latest loss shares received
    from peers, and decides (a) when this worker should broadcast its
    loss, and (b) whether it should pull weights — and from whom.
    """

    def __init__(self, config: DktConfig, worker: int, n_workers: int):
        self.config = config
        self.worker = worker
        self.n_workers = n_workers
        self._losses: deque[float] = deque(maxlen=config.loss_window)
        # latest shared avg-loss per worker (own entry updated locally)
        self.shared_losses: dict[int, float] = {}
        self.pulls_requested = 0
        self.merges_applied = 0

    def record_loss(self, loss: float) -> None:
        """Append one training-loss observation to the trailing window."""
        self._losses.append(float(loss))

    def avg_loss(self) -> float | None:
        """Average of the last ``loss_window`` losses (None before any)."""
        if not self._losses:
            return None
        return float(sum(self._losses) / len(self._losses))

    def _period_at(self, iteration: int) -> int:
        if (
            self.config.early_period_iters is not None
            and iteration <= self.config.early_until_iter
        ):
            return self.config.early_period_iters
        return self.config.period_iters

    def should_share(self, iteration: int) -> bool:
        """Loss shares go out every ``period_iters`` local iterations
        (or every ``early_period_iters`` during the early phase)."""
        return (
            self.config.enabled
            and iteration > 0
            and iteration % self._period_at(iteration) == 0
            and bool(self._losses)
        )

    def on_loss_share(self, sender: int, avg_loss: float) -> None:
        """Record a peer's shared trailing-average loss."""
        self.shared_losses[sender] = float(avg_loss)

    def best_worker(self) -> int | None:
        """The worker with the smallest known shared loss (ties → lowest id)."""
        own = self.avg_loss()
        table = dict(self.shared_losses)
        if own is not None:
            table[self.worker] = own
        if not table:
            return None
        return min(table.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def worst_worker(self) -> int | None:
        """The worker with the largest known shared loss (ties -> lowest id)."""
        own = self.avg_loss()
        table = dict(self.shared_losses)
        if own is not None:
            table[self.worker] = own
        if not table:
            return None
        return max(table.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def trace_args(self) -> dict:
        """A compact protocol-state snapshot for trace instants.

        Deterministic keys and rounded floats so traced runs of the
        same seed stay byte-identical.
        """
        best = self.best_worker()
        avg = self.avg_loss()
        return {
            "best": -1 if best is None else best,
            "avg_loss": None if avg is None else round(avg, 6),
            "peers_known": len(self.shared_losses),
        }

    def pull_target(self) -> int | None:
        """Whom this worker should request weights from right now.

        Returns a peer id, or ``None`` when no pull is due (this worker
        *is* the best, no information yet, or the ``worst`` policy says
        only the worst worker pulls and we are not it).
        """
        if not self.config.enabled:
            return None
        best = self.best_worker()
        if best is None or best == self.worker:
            return None
        if self.config.whom == "worst" and self.worst_worker() != self.worker:
            return None
        return best
