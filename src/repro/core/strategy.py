"""DLion's own exchange strategy: per-link prioritized gradient exchange.

Each iteration, the partial-gradient-generation module asks the network
resource monitor for the bandwidth of every outgoing link and hands the
gradients to the transmission planner, which fits the largest Max-N per
link (§3.3). Peers behind fast links receive large high-fidelity
payloads; peers behind slow links receive only the statistically most
significant entries.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ExchangeStrategy, PartialGradients, WorkerContext
from repro.core.config import MaxNConfig
from repro.core.sync import SyncPolicy
from repro.core.transmission import TransmissionPlanner

__all__ = ["DLionStrategy"]


class DLionStrategy(ExchangeStrategy):
    """DLion's per-link prioritized gradient exchange (Max N + budgets)."""
    name = "dlion"

    def __init__(self, sync_policy: SyncPolicy, maxn: MaxNConfig):
        super().__init__(sync_policy)
        self.planner = TransmissionPlanner(maxn)

    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        bandwidths = {dst: ctx.bandwidth_to(dst) for dst in ctx.peers}
        plans = self.planner.plan(
            grads,
            bandwidths,
            ctx.iter_time_estimate(),
            plan_epoch=ctx.plan_epoch(),
        )
        return {
            dst: PartialGradients(kind="sparse", payload=payload, chosen_n=n)
            for dst, (n, payload) in plans.items()
        }
