"""The generic, flexible DLion framework surface (§4.2).

The paper stresses that DLion is a *framework*: other systems are
expressed as small plugins. Two extension points carry all the
system-to-system variation (Table 1):

* ``generate_partial_gradients`` — which gradient entries go to which
  peer this iteration;
* ``synch_training`` — whether the worker may start its next iteration.

:class:`ExchangeStrategy` is that plugin interface. The framework calls
``enqueue`` after every local gradient computation, which internally
invokes ``generate_partial_gradients`` and then ``send_data`` (the
index/value split and per-variable keying happen in the message layer).

:class:`WorkerContext` is the narrow view of the worker a strategy is
allowed to touch: identity, peers, clock, its own model variables, the
network resource monitor, and the latest iteration-time estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

from repro.core.sync import SyncPolicy, SyncState

__all__ = ["PartialGradients", "WorkerContext", "ExchangeStrategy"]


@dataclass
class PartialGradients:
    """What a strategy emits for one destination.

    ``kind`` selects the wire format: ``"sparse"`` payloads map variable
    name to ``(flat_indices, values)``; ``"dense"`` payloads map
    variable name to a full gradient array. ``chosen_n`` records the
    Max-N value used (DLion only; kept for the Fig. 8/20 series).
    """

    kind: str
    payload: dict
    chosen_n: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sparse", "dense"):
            raise ValueError("kind must be 'sparse' or 'dense'")


class WorkerContext(Protocol):
    """The strategy-visible slice of a worker (see ``core.worker``)."""

    worker_id: int
    n_workers: int

    @property
    def peers(self) -> list[int]:
        """Ids of the peers this worker currently exchanges with."""
        ...

    def now(self) -> float:
        """Current simulated time in seconds."""
        ...

    def iter_time_estimate(self) -> float:
        """Latest estimate of this worker's iteration duration (s)."""
        ...

    def plan_epoch(self) -> object:
        """Equality-comparable token for the current planning round.

        Changes every iteration; strategies hand it to per-iteration
        caches (the transmission planner's histogram reuse) so stale
        state can never be mistaken for fresh.
        """
        ...

    def bandwidth_to(self, dst: int) -> float:
        """Monitored bandwidth (Mbps) on the link to peer ``dst``."""
        ...

    def model_variables(self) -> dict[str, np.ndarray]:
        """Live views of the local model's named weight variables."""
        ...


class ExchangeStrategy:
    """Base plugin. Subclasses override the two framework APIs.

    ``setup`` runs once per worker before training; per-worker state
    (accumulators, partition cursors) lives on the strategy instance —
    the engine creates one instance per worker.
    """

    name = "abstract"

    def __init__(self, sync_policy: SyncPolicy):
        self.sync_policy = sync_policy

    def setup(self, ctx: WorkerContext) -> None:
        """Optional per-worker initialization hook."""

    # -- framework API #1 ------------------------------------------------
    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        """Return the per-destination payloads for this iteration."""
        raise NotImplementedError

    # -- framework API #2 ------------------------------------------------
    def synch_training(self, ctx: WorkerContext, state: SyncState) -> bool:
        """May the worker start its next iteration?"""
        return self.sync_policy.can_proceed(state)
