"""The Max N data-quality-assurance algorithm (§3.3).

Max N keeps, *per weight variable*, the gradient entries whose absolute
value lies in the top-N% band of that variable's maximum:

    keep i  ⇔  |g_i| >= (1 − N/100) · max|g|

so N = 100 keeps everything (whole-gradient exchange) and N → 0 keeps
only the largest entry. This is the reading consistent with all three of
the paper's statements about N (see DESIGN.md §2). Each weight variable
is filtered independently because "each weight variable has their own
value distribution and convergence speed".
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = ["select_max_n", "select_payload", "selection_count"]


def _threshold(max_abs: float, n_percent: float) -> float:
    return (1.0 - n_percent / 100.0) * max_abs


def select_max_n(grad: np.ndarray, n_percent: float) -> tuple[np.ndarray, np.ndarray]:
    """Select the Max-N entries of one variable's gradient.

    Returns ``(flat_indices, values)``; the max-magnitude entry is
    always included (for any valid N the band contains the max).
    """
    if not 0.0 < n_percent <= 100.0:
        raise ValueError(f"N must be in (0, 100], got {n_percent}")
    flat = grad.reshape(-1)
    mags = np.abs(flat)
    max_abs = float(mags.max(initial=0.0))
    if max_abs == 0.0:
        # A zero gradient carries no information; send nothing.
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=flat.dtype)
    idx = np.nonzero(mags >= _threshold(max_abs, n_percent))[0]
    return idx.astype(np.int64), flat[idx]


def selection_count(sorted_norm_mags: np.ndarray, n_percent: float) -> int:
    """Entries Max N would keep, given ascending-sorted ``|g|/max|g|``.

    Used by the transmission-speed-assurance module to evaluate payload
    sizes for many candidate N without re-scanning the gradient.
    """
    if sorted_norm_mags.size == 0:
        return 0
    thr = 1.0 - n_percent / 100.0
    return int(sorted_norm_mags.size - np.searchsorted(sorted_norm_mags, thr, side="left"))


def select_payload(
    grads: Mapping[str, np.ndarray], n_percent: float
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Apply Max N per variable; variables with empty selections are dropped."""
    payload: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, g in grads.items():
        idx, vals = select_max_n(g, n_percent)
        if idx.size:
            payload[name] = (idx, vals)
    return payload
