"""LiveEngine: the multi-process (``--backend proc``) run orchestrator.

Spawns one OS process per DLion worker (each running a
:class:`~repro.transport.runtime.LiveWorkerRuntime` over an asyncio TCP
:class:`~repro.transport.mesh.PeerMesh`), coordinates the port-exchange
handshake over pipes, and merges every child's metrics, time series, and
trace events into the same :class:`~repro.core.engine.RunResult` shape
the simulator produces — so ``report``, ``--metrics-out``, and the
experiment tooling work on live runs unchanged.

The engine is also the crash **supervisor** (docs/robustness.md). A
:class:`~repro.cluster.chaos.ChaosPlan` scripts SIGKILLs on the modelled
clock; killed workers with a ``restart_after`` are respawned with
``resume=True`` (the child restores its newest checkpoint), walked
through a private port/ready handshake, and rejoined — the new port is
fanned out to the survivors as ``("revive", worker, port)`` pipe
commands so they re-open their mesh links. Unplanned child deaths are
respawned the same way under ``restart_budget`` with exponential
backoff; past the budget they fail the run with the dead child's
captured stderr tail in the error.

The engine is hang-proof by construction: every phase of the handshake
and the result collection runs against a wall-clock deadline, and any
child that misses it (or reports an error) causes the remaining
processes to be terminated before the failure is raised.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import shutil
import tempfile
import time
import uuid

from repro.cluster.chaos import ChaosPlan
from repro.cluster.topology import ClusterTopology
from repro.core.config import TrainConfig
from repro.core.engine import RunResult
from repro.core.run_metrics import RunMetrics
from repro.obs import live_status
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.transport.checkpoint import CheckpointConfig
from repro.transport.mesh import TransportConfig
from repro.transport.runtime import LiveRunSpec, run_live_worker
from repro.transport.shm import ring_name, sweep_ring
from repro.utils.metrics import TimeSeries

__all__ = ["LiveEngine"]

# How much of a dead child's captured stderr to quote in errors.
_STDERR_TAIL_BYTES = 2048
# A scripted kill waits for its victim to complete one iteration past
# its restore point (so the crash is meaningful at any CI load), but at
# most this many wall seconds past the due time — the gate must never
# wedge the run.
_PROGRESS_GATE_SLACK_S = 10.0
# How many of each worker's freshest flight-recorder events the status
# snapshot retains (the full stream still lands in the merged trace).
_FLIGHT_TAIL_EVENTS = 16


class _Child:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "proc", "conn", "port", "last_iteration", "last_time",
        "restored_iteration", "restarts", "stats_prev_iter",
        "stats_prev_wall",
    )

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.port: int | None = None
        self.last_iteration = 0       # newest progress-reported iteration
        self.last_time = 0.0          # its modelled timestamp
        self.restored_iteration = 0   # checkpoint iteration after resume
        self.restarts = 0
        self.stats_prev_iter = 0      # iteration at the last stats tick
        self.stats_prev_wall: float | None = None


class LiveEngine:
    """Runs one training job as real communicating worker processes."""

    def __init__(
        self,
        config: TrainConfig,
        topology: ClusterTopology,
        *,
        seed: int = 0,
        speedup: float = 20.0,
        transport: TransportConfig | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        profile: bool = False,
        host: str = "127.0.0.1",
        compute_threads: int = 1,
        handshake_timeout_s: float = 60.0,
        restart_budget: int = 0,
        restart_backoff_s: float = 0.5,
        checkpoint: CheckpointConfig | None = None,
        ship_interval_s: float | None = 1.0,
        stats_interval_s: float | None = None,
        status_dir: str | None = None,
        shm_lanes: bool = False,
    ):
        self.config = config
        self.topology = topology
        self.n_workers = topology.n_workers
        self.seed = seed
        self.speedup = float(speedup)
        self.transport = transport if transport is not None else TransportConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profile = profile
        self.host = host
        if compute_threads < 1:
            raise ValueError("compute_threads must be >= 1")
        self.compute_threads = compute_threads
        if handshake_timeout_s <= 0:
            raise ValueError("handshake_timeout_s must be positive")
        self.handshake_timeout_s = float(handshake_timeout_s)
        if restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        self.restart_budget = int(restart_budget)
        if restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be >= 0")
        self.restart_backoff_s = float(restart_backoff_s)
        self.checkpoint = checkpoint
        if ship_interval_s is not None and ship_interval_s <= 0:
            raise ValueError("ship_interval_s must be positive or None")
        self.ship_interval_s = ship_interval_s
        if stats_interval_s is not None and stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be positive or None")
        self.stats_interval_s = stats_interval_s
        self.status_dir = status_dir
        self.shm_lanes = bool(shm_lanes)
        self._stderr_dir: str | None = None
        # Telemetry-delta stores, reset per run. Metric states are
        # cumulative snapshots (latest per worker wins); trace streams
        # and flight events accumulate in arrival order.
        self._delta_metrics: dict[int, dict] = {}
        self._delta_info: dict[int, dict] = {}
        self._delta_trace: dict[int, list] = {}
        self._delta_flight: dict[int, list] = {}
        self._flight_tail: dict[int, collections.deque] = {}
        self.deltas_received = 0
        self.flight_events: dict[int, list] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        horizon: float,
        *,
        chaos: ChaosPlan | None = None,
        chaos_kill: tuple[float, int] | None = None,
        grace_s: float = 60.0,
    ) -> RunResult:
        """Run every worker process to the modelled ``horizon`` and merge.

        ``chaos`` scripts crashes (supervised respawn + rejoin when the
        event carries ``restart_after``) and link faults on the modelled
        clock. ``chaos_kill=(wall_delay_s, worker_id)`` is the legacy
        hook: it SIGKILLs one worker that many wall seconds after the go
        signal with no restart. ``grace_s`` bounds how long past the
        modelled horizon's wall equivalent the parent waits before
        declaring a child hung and terminating it.
        """
        if chaos is not None:
            chaos.validate(self.n_workers)
        self._delta_metrics = {}
        self._delta_info = {}
        self._delta_trace = {}
        self._delta_flight = {}
        self._flight_tail = {}
        self.deltas_received = 0
        self.flight_events = {}
        checkpoint = self.checkpoint
        tmp_ckpt_dir = None
        needs_checkpoint = self.restart_budget > 0 or (
            chaos is not None and chaos.has_restarts()
        )
        if checkpoint is None and needs_checkpoint:
            # Respawned children restore from disk; give them somewhere
            # to checkpoint even when the caller did not configure it.
            tmp_ckpt_dir = tempfile.mkdtemp(prefix="dlion-ckpt-")
            checkpoint = CheckpointConfig(directory=tmp_ckpt_dir)
        self._stderr_dir = tempfile.mkdtemp(prefix="dlion-stderr-")
        # Per-run nonce for shm ring segment names: stale segments from
        # a previous (crashed) run can never be mistaken for live rings.
        shm_token = uuid.uuid4().hex[:8] if self.shm_lanes else ""
        spec = LiveRunSpec(
            config=self.config,
            topology=self.topology,
            seed=self.seed,
            horizon=horizon,
            speedup=self.speedup,
            transport=self.transport,
            trace=self.tracer.enabled,
            profile=self.profile,
            host=self.host,
            compute_threads=self.compute_threads,
            checkpoint=checkpoint,
            chaos=chaos,
            stderr_dir=self._stderr_dir,
            ship_interval_s=self.ship_interval_s,
            shm_lanes=self.shm_lanes,
            shm_token=shm_token,
        )
        if self.compute_threads > 1:
            # The worker processes are the parallel compute stage here;
            # pin each child's BLAS pool to one thread so W processes do
            # not oversubscribe the machine W*cores-fold. Spawned
            # children inherit the environment before their numpy import.
            for var in (
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
                "OMP_NUM_THREADS",
                "NUMEXPR_NUM_THREADS",
            ):
                os.environ.setdefault(var, "1")
        ctx = multiprocessing.get_context("spawn")
        children: dict[int, _Child] = {}
        try:
            for w in range(self.n_workers):
                children[w] = self._spawn(ctx, w, spec, resume=False)

            port_msgs = self._recv_expected(children, "port")
            for w, msg in port_msgs.items():
                children[w].port = msg[2]
            port_map = {w: c.port for w, c in children.items()}
            for c in children.values():
                c.conn.send(("ports", port_map))
            self._recv_expected(children, "ready")
            for c in children.values():
                c.conn.send(("go",))

            payloads, killed = self._supervise(
                ctx, spec, children, horizon, chaos, chaos_kill, grace_s
            )
        finally:
            for c in children.values():
                if c.proc.is_alive():
                    c.proc.terminate()
            for c in children.values():
                c.proc.join(timeout=5.0)
                if c.proc.is_alive():  # pragma: no cover - last resort
                    c.proc.kill()
                    c.proc.join(timeout=5.0)
            for c in children.values():
                try:
                    c.conn.close()
                except OSError:  # pragma: no cover
                    pass
            shutil.rmtree(self._stderr_dir, ignore_errors=True)
            self._stderr_dir = None
            if tmp_ckpt_dir is not None:
                shutil.rmtree(tmp_ckpt_dir, ignore_errors=True)
            if shm_token:
                # Children unlink their rings at mesh close; a crashed
                # child leaves its created segments behind, so sweep
                # every possible pair of this run's token.
                for src in range(self.n_workers):
                    for dst in range(self.n_workers):
                        if src != dst:
                            sweep_ring(ring_name(shm_token, src, dst))
        return self._merge(payloads, killed, horizon)

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, ctx, w: int, spec: LiveRunSpec, *, resume: bool) -> _Child:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=run_live_worker,
            args=(w, spec, child_conn, resume),
            daemon=True,
            name=f"dlion-worker-{w}",
        )
        proc.start()
        child_conn.close()  # the child holds its own copy
        return _Child(proc, parent_conn)

    def _stderr_tail(self, w: int) -> str:
        """The tail of a child's captured stderr, formatted for an error."""
        if not self._stderr_dir:
            return ""
        path = os.path.join(self._stderr_dir, f"worker{w}.stderr.log")
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - _STDERR_TAIL_BYTES))
                tail = fh.read().decode("utf-8", "replace").strip()
        except OSError:
            return ""
        if not tail:
            return ""
        return f"\n--- worker {w} stderr (tail) ---\n{tail}"

    # ------------------------------------------------------------------
    # Handshake phases
    # ------------------------------------------------------------------
    def _recv_expected(
        self, children: dict[int, _Child], expected: str
    ) -> dict[int, tuple]:
        """Collect one ``expected``-tagged message from every child."""
        out: dict[int, tuple] = {}
        deadline = time.monotonic() + self.handshake_timeout_s
        pending = set(children)
        while pending:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"live worker(s) {sorted(pending)} did not report "
                    f"{expected!r} within {self.handshake_timeout_s:.0f}s"
                )
            for w in sorted(pending):
                c = children[w]
                if not c.proc.is_alive() and not c.conn.poll():
                    raise RuntimeError(
                        f"live worker {w} died during the {expected!r} "
                        "handshake" + self._stderr_tail(w)
                    )
                if c.conn.poll(0.01):
                    try:
                        msg = c.conn.recv()
                    except EOFError:
                        raise RuntimeError(
                            f"live worker {w} closed its pipe during the "
                            f"{expected!r} handshake" + self._stderr_tail(w)
                        ) from None
                    if msg[0] == "error":
                        raise RuntimeError(
                            f"live worker {w} failed during startup:\n{msg[2]}"
                        )
                    if msg[0] != expected:
                        raise RuntimeError(
                            f"live worker {w}: expected {expected!r}, got {msg[0]!r}"
                        )
                    out[w] = msg
                    pending.discard(w)
        return out

    def _recv_one(self, child: _Child, w: int, expected: str) -> tuple:
        """One ``expected``-tagged message from a single (respawned) child."""
        deadline = time.monotonic() + self.handshake_timeout_s
        while time.monotonic() <= deadline:
            if child.conn.poll(0.02):
                try:
                    msg = child.conn.recv()
                except EOFError:
                    raise RuntimeError(
                        f"respawned worker {w} closed its pipe during the "
                        f"{expected!r} handshake" + self._stderr_tail(w)
                    ) from None
                if msg[0] == "error":
                    raise RuntimeError(
                        f"respawned worker {w} failed during startup:\n{msg[2]}"
                    )
                if msg[0] != expected:
                    raise RuntimeError(
                        f"respawned worker {w}: expected {expected!r}, "
                        f"got {msg[0]!r}"
                    )
                return msg
            if not child.proc.is_alive() and not child.conn.poll():
                raise RuntimeError(
                    f"respawned worker {w} died during the {expected!r} "
                    "handshake" + self._stderr_tail(w)
                )
        raise RuntimeError(
            f"respawned worker {w} did not report {expected!r} within "
            f"{self.handshake_timeout_s:.0f}s"
        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(
        self,
        ctx,
        spec: LiveRunSpec,
        children: dict[int, _Child],
        horizon: float,
        chaos: ChaosPlan | None,
        chaos_kill: tuple[float, int] | None,
        grace_s: float,
    ) -> tuple[dict[int, dict], set[int]]:
        """The post-go supervisor loop.

        Fires scripted kills, detects dead children, respawns/rejoins
        under the plan or the restart budget, relays progress, and
        collects results — all against the horizon wall deadline.
        """
        rm = RunMetrics(self.metrics)
        go_t0 = time.monotonic()
        deadline = go_t0 + horizon / self.speedup + grace_s
        payloads: dict[int, dict] = {}
        killed: set[int] = set()               # dead for good, by script
        pending = set(children)                # workers still owing a result
        restart_uses = 0

        # Scripted crashes on the modelled clock (plus the legacy
        # wall-scheduled chaos_kill), ordered by due wall time.
        crash_queue: list[dict] = []
        if chaos is not None:
            for ev in chaos.crashes:
                crash_queue.append({
                    "due": go_t0 + ev.time / self.speedup,
                    "worker": ev.worker,
                    "restart_after": ev.restart_after,
                    "event_time": ev.time,
                })
        if chaos_kill is not None:
            crash_queue.append({
                "due": go_t0 + float(chaos_kill[0]),
                "worker": int(chaos_kill[1]),
                "restart_after": None,
                "event_time": None,
            })
        crash_queue.sort(key=lambda e: e["due"])
        # Scheduled respawns: [{at, worker, detected, lost_baseline}].
        respawns: list[dict] = []

        # Cluster-health emission cadence: the --stats-interval print and
        # the --status-dir snapshot share one tick.
        stats_every = self.stats_interval_s
        if stats_every is None and self.status_dir is not None:
            stats_every = 1.0
        last_stats = go_t0

        while pending:
            now = time.monotonic()
            if stats_every is not None and now - last_stats >= stats_every:
                last_stats = now
                self._emit_stats(children, killed, go_t0, now, horizon)
            awaiting = {r["worker"] for r in respawns}
            if now > deadline:
                # Hang-proofing: a worker that outlives the horizon plus
                # grace is terminated; the run fails loudly.
                for w in sorted(pending - awaiting):
                    children[w].proc.terminate()
                raise RuntimeError(
                    f"live worker(s) {sorted(pending)} missed the horizon "
                    f"deadline (+{grace_s:.0f}s grace); terminated"
                )

            # 1. Fire due scripted kills (head of the queue blocks: the
            #    progress gate below may defer it a little).
            while crash_queue and now >= crash_queue[0]["due"]:
                ev = crash_queue[0]
                w = ev["worker"]
                if w not in pending or w in awaiting:
                    crash_queue.pop(0)
                    continue
                c = children[w]
                # Drain buffered progress so the lost-work baseline is
                # as current as the pipe allows.
                while c.conn.poll():
                    try:
                        msg = c.conn.recv()
                    except EOFError:
                        break
                    if msg[0] == "progress":
                        c.last_iteration = msg[2]
                        c.last_time = msg[3]
                    elif msg[0] == "delta":
                        self._note_delta(c, w, msg[2])
                    elif msg[0] == "result":
                        payloads[w] = msg[2]
                        pending.discard(w)
                if w not in pending:
                    crash_queue.pop(0)
                    continue
                if (
                    ev["event_time"] is not None
                    and c.last_iteration <= c.restored_iteration
                    and now < ev["due"] + _PROGRESS_GATE_SLACK_S
                ):
                    break  # give the victim a moment to make progress
                crash_queue.pop(0)
                c.proc.kill()
                c.proc.join(timeout=5.0)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "worker-killed", self.n_workers, 0,
                        (now - go_t0) * self.speedup,
                        cat="chaos", args={"worker": w}, scope="g",
                    )
                if ev["restart_after"] is not None:
                    at = go_t0 + (
                        ev["event_time"] + ev["restart_after"]
                    ) / self.speedup
                    respawns.append({
                        "at": max(at, now),
                        "worker": w,
                        "detected": now,
                        "lost_baseline": c.last_iteration,
                    })
                    awaiting.add(w)
                else:
                    killed.add(w)
                    pending.discard(w)

            # 2. Fire due respawns.
            for r in list(respawns):
                if now >= r["at"]:
                    respawns.remove(r)
                    awaiting.discard(r["worker"])
                    self._respawn(ctx, spec, children, r, go_t0, rm)

            # 3. Drain child pipes (one message per child per sweep; the
            #    0.02-s polls double as the loop's pacing).
            for w in sorted(pending - awaiting):
                c = children[w]
                if c.conn.poll(0.02):
                    try:
                        msg = c.conn.recv()
                    except EOFError:
                        raise RuntimeError(
                            f"live worker {w} closed its pipe before "
                            "reporting a result" + self._stderr_tail(w)
                        ) from None
                    if msg[0] == "progress":
                        c.last_iteration = msg[2]
                        c.last_time = msg[3]
                    elif msg[0] == "delta":
                        self._note_delta(c, w, msg[2])
                    elif msg[0] == "error":
                        raise RuntimeError(
                            f"live worker {w} failed:\n{msg[2]}"
                        )
                    elif msg[0] == "result":
                        payloads[w] = msg[2]
                        pending.discard(w)
                elif not c.proc.is_alive():
                    # Unplanned death. Respawn under the budget, else fail
                    # with whatever the child managed to say on stderr.
                    if restart_uses < self.restart_budget:
                        delay = self.restart_backoff_s * (2 ** restart_uses)
                        restart_uses += 1
                        respawns.append({
                            "at": now + delay,
                            "worker": w,
                            "detected": now,
                            "lost_baseline": c.last_iteration,
                        })
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "worker-died", self.n_workers, 0,
                                (now - go_t0) * self.speedup,
                                cat="chaos", args={"worker": w}, scope="g",
                            )
                    else:
                        raise RuntimeError(
                            f"live worker {w} exited without reporting a "
                            "result" + self._stderr_tail(w)
                        )
        return payloads, killed

    def _respawn(
        self,
        ctx,
        spec: LiveRunSpec,
        children: dict[int, _Child],
        r: dict,
        go_t0: float,
        rm: RunMetrics,
    ) -> None:
        """Respawn one dead worker with ``resume=True`` and rejoin it."""
        w = r["worker"]
        old = children[w]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        child = self._spawn(ctx, w, spec, resume=True)
        child.restarts = old.restarts + 1
        child.last_iteration = old.last_iteration
        children[w] = child

        msg = self._recv_one(child, w, "port")
        child.port = msg[2]
        child.restored_iteration = int(msg[3]) if len(msg) > 3 else 0
        child.last_iteration = child.restored_iteration
        # The rejoiner only dials live peers (a no-restart casualty's old
        # port would just burn its reconnect budget).
        live = {
            i: c.port
            for i, c in children.items()
            if i == w or c.proc.is_alive()
        }
        child.conn.send(("ports", live))
        self._recv_one(child, w, "ready")

        # Survivors first: re-opening their links before the rejoiner
        # starts training narrows the window in which its DKT bootstrap
        # pull could go unanswered.
        for i, c in children.items():
            if i != w and c.proc.is_alive():
                try:
                    c.conn.send(("revive", w, child.port))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
        now = time.monotonic()
        clock_offset = (now - go_t0) * self.speedup
        child.conn.send((
            "go",
            {
                "clock_offset": clock_offset,
                "active": sorted(i for i in live if i != w),
            },
        ))

        rm.c_worker_restarts.inc(1, w)
        rm.h_recovery_s.observe(now - r["detected"], w)
        lost = max(0, int(r["lost_baseline"]) - child.restored_iteration)
        if lost:
            rm.c_lost_iterations.inc(lost, w)
        if self.tracer.enabled:
            start_model = (r["detected"] - go_t0) * self.speedup
            self.tracer.complete(
                "recovery", self.n_workers, 0,
                start_model, clock_offset - start_model,
                cat="chaos",
                args={
                    "worker": w,
                    "restored_iteration": child.restored_iteration,
                    "lost_iterations": lost,
                },
            )

    # ------------------------------------------------------------------
    # Telemetry deltas and cluster health
    # ------------------------------------------------------------------
    def _note_delta(self, c: _Child, w: int, payload: dict) -> None:
        """Fold one in-flight telemetry delta from worker ``w``.

        Metric states are cumulative snapshots, so the newest one simply
        replaces its predecessor (idempotent, no double-count); trace
        streams and drained flight events are incremental and accumulate.
        A respawned worker's deltas overwrite its previous incarnation's
        metric snapshot the same way — latest wins.
        """
        c.last_iteration = payload["iteration"]
        c.last_time = payload["time"]
        self._delta_metrics[w] = payload["metrics"]
        self._delta_info[w] = {
            "iteration": payload["iteration"],
            "time": payload["time"],
            "samples_drawn": payload.get("samples_drawn", 0),
        }
        if payload.get("trace_events"):
            self._delta_trace.setdefault(w, []).extend(payload["trace_events"])
        flight = payload.get("flight") or []
        if flight:
            self._delta_flight.setdefault(w, []).extend(flight)
            tail = self._flight_tail.setdefault(
                w, collections.deque(maxlen=_FLIGHT_TAIL_EVENTS)
            )
            tail.extend(flight)
        self.deltas_received += 1

    def _emit_stats(
        self,
        children: dict[int, _Child],
        killed: set[int],
        go_t0: float,
        now: float,
        horizon: float,
    ) -> None:
        """One cluster-health tick: print a line and/or write a snapshot."""
        workers: dict[int, dict] = {}
        t_model = 0.0
        for w, c in sorted(children.items()):
            alive = c.proc.is_alive() and w not in killed
            prev_wall = c.stats_prev_wall
            rate = 0.0
            if prev_wall is not None and now > prev_wall:
                rate = (c.last_iteration - c.stats_prev_iter) / (now - prev_wall)
            c.stats_prev_iter = c.last_iteration
            c.stats_prev_wall = now
            workers[w] = {
                "iteration": c.last_iteration,
                "time": round(c.last_time, 3),
                "rate": round(max(rate, 0.0), 3),
                "alive": alive,
                "restarts": c.restarts,
            }
            if alive:
                t_model = max(t_model, c.last_time)
        snapshot = live_status.build_snapshot(
            time_model_s=t_model,
            horizon_s=horizon,
            wall_elapsed_s=now - go_t0,
            speedup=self.speedup,
            workers=workers,
            cluster=self._cluster_health(),
            flight_tail={w: list(t) for w, t in self._flight_tail.items()},
        )
        if self.stats_interval_s is not None:
            print(live_status.render_health_line(snapshot), flush=True)
        if self.status_dir is not None:
            live_status.write_snapshot(self.status_dir, snapshot)

    def _cluster_health(self) -> dict:
        """Aggregate the latest per-worker delta metric snapshots.

        Folds every worker's cumulative snapshot into one throwaway
        registry (cheap at stats cadence) and reads the cluster-wide
        transport numbers off it.
        """
        reg = MetricsRegistry()
        for state in self._delta_metrics.values():
            reg.merge_state(state)

        def total(name):
            fam = reg.get(name)
            return sum(v for _, v in fam.items()) if fam is not None else 0

        def peak(name):
            fam = reg.get(name)
            vals = [v for _, v in fam.items()] if fam is not None else []
            return max(vals) if vals else 0

        lat = reg.get("transport_frame_latency_seconds")
        return {
            "frame_latency_p99_s": (
                lat.percentile_all(0.99) if lat is not None else None
            ),
            "send_msgs_total": total("transport_send_msgs_total"),
            "send_bytes_total": total("transport_send_bytes_total"),
            "stall_seconds_total": round(
                total("transport_stall_seconds_total"), 3
            ),
            "outbox_depth_max": peak("transport_outbox_depth"),
            "queue_depth_max": peak("queue_depth"),
            "queue_dropped_total": total("queue_dropped_total"),
            "deltas_received": self.deltas_received,
        }

    # ------------------------------------------------------------------
    # Result merging
    # ------------------------------------------------------------------
    def _merge(
        self, payloads: dict[int, dict], killed: set[int], horizon: float
    ) -> RunResult:
        RunMetrics(self.metrics)  # ensure the catalog exists even if empty
        result = RunResult(
            n_workers=self.n_workers, horizon=horizon, metrics=self.metrics
        )
        result.accuracy = [TimeSeries() for _ in range(self.n_workers)]
        result.loss = [TimeSeries() for _ in range(self.n_workers)]
        result.lbs = [TimeSeries() for _ in range(self.n_workers)]
        result.iterations = [0] * self.n_workers

        def fill(ts: TimeSeries, pair) -> None:
            for t, v in zip(*pair):
                ts.append(t, v)

        for w, payload in sorted(payloads.items()):
            fill(result.accuracy[w], payload["accuracy"])
            fill(result.loss[w], payload["loss"])
            fill(result.lbs[w], payload["lbs"])
            result.iterations[w] = payload["iterations"]
            result.dkt_merges += payload["dkt_merges"]
            result.events += payload["events"]
            result.epochs = max(result.epochs, payload["epoch"])
            for key, pair in payload["link_entries"].items():
                fill(result.link_entries.setdefault(tuple(key), TimeSeries()), pair)
            for key, pair in payload["link_chosen_n"].items():
                fill(result.link_chosen_n.setdefault(tuple(key), TimeSeries()), pair)
            self.metrics.merge_state(payload["metrics"])

        # Crash safety: a worker that never reported a final result (a
        # no-restart casualty, or one SIGKILLed mid-respawn) is restored
        # from its newest shipped delta — its metrics and progress
        # survive up to one shipping interval behind the kill. A final
        # payload supersedes every delta from the same worker (both are
        # cumulative snapshots; merging both would double-count).
        for w in range(self.n_workers):
            if w in payloads:
                continue
            state = self._delta_metrics.get(w)
            if state:
                self.metrics.merge_state(state)
            info = self._delta_info.get(w)
            if info:
                result.iterations[w] = info["iteration"]

        # Trace and flight streams are incremental (deltas carry events
        # past the previous cursor; the final payload carries the tail
        # past the last delta), so per worker: delta stream first, then
        # the final tail — concatenation with no duplicates.
        for w in range(self.n_workers):
            payload = payloads.get(w)
            trace_stream = list(self._delta_trace.get(w, ()))
            if payload is not None and payload["trace_events"]:
                trace_stream.extend(payload["trace_events"])
            if self.tracer.enabled and trace_stream:
                self.tracer.ingest(trace_stream)
            flight = list(self._delta_flight.get(w, ()))
            if payload is not None and payload.get("flight"):
                flight.extend(payload["flight"])
            if flight:
                self.flight_events[w] = flight
                if self.tracer.enabled:
                    self.tracer.ingest(flight)

        # GBS and membership are cluster-wide series every worker records
        # its own view of; take the lowest surviving worker's.
        if payloads:
            first = payloads[min(payloads)]
            fill(result.gbs, first["gbs"])
            fill(result.active_workers, first["active_workers"])
        return result
