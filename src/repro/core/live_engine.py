"""LiveEngine: the multi-process (``--backend proc``) run orchestrator.

Spawns one OS process per DLion worker (each running a
:class:`~repro.transport.runtime.LiveWorkerRuntime` over an asyncio TCP
:class:`~repro.transport.mesh.PeerMesh`), coordinates the port-exchange
handshake over pipes, optionally kills a worker mid-run (the churn /
fault-injection hook the acceptance tests use), and merges every child's
metrics, time series, and trace events into the same
:class:`~repro.core.engine.RunResult` shape the simulator produces — so
``report``, ``--metrics-out``, and the experiment tooling work on live
runs unchanged.

The engine is hang-proof by construction: every phase of the handshake
and the result collection runs against a wall-clock deadline, and any
child that misses it (or reports an error) causes the remaining
processes to be terminated before the failure is raised.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.cluster.topology import ClusterTopology
from repro.core.config import TrainConfig
from repro.core.engine import RunResult
from repro.core.run_metrics import RunMetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.transport.mesh import TransportConfig
from repro.transport.runtime import LiveRunSpec, run_live_worker
from repro.utils.metrics import TimeSeries

__all__ = ["LiveEngine"]

# How long to wait for child startup phases (port report, mesh connect).
_HANDSHAKE_TIMEOUT_S = 60.0


class LiveEngine:
    """Runs one training job as real communicating worker processes."""

    def __init__(
        self,
        config: TrainConfig,
        topology: ClusterTopology,
        *,
        seed: int = 0,
        speedup: float = 20.0,
        transport: TransportConfig | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        profile: bool = False,
        host: str = "127.0.0.1",
        compute_threads: int = 1,
    ):
        self.config = config
        self.topology = topology
        self.n_workers = topology.n_workers
        self.seed = seed
        self.speedup = float(speedup)
        self.transport = transport if transport is not None else TransportConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profile = profile
        self.host = host
        if compute_threads < 1:
            raise ValueError("compute_threads must be >= 1")
        self.compute_threads = compute_threads

    # ------------------------------------------------------------------
    def run(
        self,
        horizon: float,
        *,
        chaos_kill: tuple[float, int] | None = None,
        grace_s: float = 60.0,
    ) -> RunResult:
        """Run every worker process to the modelled ``horizon`` and merge.

        ``chaos_kill=(wall_delay_s, worker_id)`` SIGKILLs one worker that
        many wall seconds after the go signal — the dead-peer path the
        acceptance criteria exercise (survivors must reconnect/backoff,
        then surface a clean membership change, never hang). ``grace_s``
        bounds how long past the modelled horizon's wall equivalent the
        parent waits before declaring a child hung and terminating it.
        """
        spec = LiveRunSpec(
            config=self.config,
            topology=self.topology,
            seed=self.seed,
            horizon=horizon,
            speedup=self.speedup,
            transport=self.transport,
            trace=self.tracer.enabled,
            profile=self.profile,
            host=self.host,
            compute_threads=self.compute_threads,
        )
        if self.compute_threads > 1:
            # The worker processes are the parallel compute stage here;
            # pin each child's BLAS pool to one thread so W processes do
            # not oversubscribe the machine W*cores-fold. Spawned
            # children inherit the environment before their numpy import.
            for var in (
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
                "OMP_NUM_THREADS",
                "NUMEXPR_NUM_THREADS",
            ):
                os.environ.setdefault(var, "1")
        ctx = multiprocessing.get_context("spawn")
        conns = []
        procs = []
        try:
            for w in range(self.n_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=run_live_worker,
                    args=(w, spec, child_conn),
                    daemon=True,
                    name=f"dlion-worker-{w}",
                )
                proc.start()
                child_conn.close()  # the child holds its own copy
                conns.append(parent_conn)
                procs.append(proc)

            port_map = self._collect_ports(conns, procs)
            for conn in conns:
                conn.send(("ports", port_map))
            self._collect_ready(conns, procs)
            for conn in conns:
                conn.send(("go",))

            payloads, killed = self._collect_results(
                conns, procs, horizon, chaos_kill, grace_s
            )
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=5.0)
            for conn in conns:
                conn.close()
        return self._merge(payloads, killed, horizon)

    # ------------------------------------------------------------------
    # Handshake phases
    # ------------------------------------------------------------------
    def _recv_expected(self, conns, procs, expected: str) -> dict[int, tuple]:
        """Collect one ``expected``-tagged message from every child."""
        out: dict[int, tuple] = {}
        deadline = time.monotonic() + _HANDSHAKE_TIMEOUT_S
        pending = set(range(self.n_workers))
        while pending:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"live worker(s) {sorted(pending)} did not report "
                    f"{expected!r} within {_HANDSHAKE_TIMEOUT_S:.0f}s"
                )
            for w in sorted(pending):
                if not procs[w].is_alive() and not conns[w].poll():
                    raise RuntimeError(
                        f"live worker {w} died during the {expected!r} handshake"
                    )
                if conns[w].poll(0.01):
                    try:
                        msg = conns[w].recv()
                    except EOFError:
                        raise RuntimeError(
                            f"live worker {w} closed its pipe during the "
                            f"{expected!r} handshake"
                        ) from None
                    if msg[0] == "error":
                        raise RuntimeError(
                            f"live worker {w} failed during startup:\n{msg[2]}"
                        )
                    if msg[0] != expected:
                        raise RuntimeError(
                            f"live worker {w}: expected {expected!r}, got {msg[0]!r}"
                        )
                    out[w] = msg
                    pending.discard(w)
        return out

    def _collect_ports(self, conns, procs) -> dict[int, int]:
        msgs = self._recv_expected(conns, procs, "port")
        return {w: msg[2] for w, msg in msgs.items()}

    def _collect_ready(self, conns, procs) -> None:
        self._recv_expected(conns, procs, "ready")

    def _collect_results(
        self, conns, procs, horizon, chaos_kill, grace_s
    ) -> tuple[dict[int, dict], set[int]]:
        t0 = time.monotonic()
        deadline = t0 + horizon / self.speedup + grace_s
        payloads: dict[int, dict] = {}
        killed: set[int] = set()
        pending = set(range(self.n_workers))
        kill_at = None
        kill_target = None
        if chaos_kill is not None:
            kill_at = t0 + float(chaos_kill[0])
            kill_target = int(chaos_kill[1])
        while pending:
            now = time.monotonic()
            if kill_at is not None and now >= kill_at and kill_target in pending:
                procs[kill_target].kill()
                killed.add(kill_target)
                pending.discard(kill_target)
                kill_at = None
            if now > deadline:
                # Hang-proofing: a worker that outlives the horizon plus
                # grace is terminated; the run fails loudly.
                for w in sorted(pending):
                    procs[w].terminate()
                raise RuntimeError(
                    f"live worker(s) {sorted(pending)} missed the horizon "
                    f"deadline (+{grace_s:.0f}s grace); terminated"
                )
            for w in sorted(pending):
                if conns[w].poll(0.02):
                    try:
                        msg = conns[w].recv()
                    except EOFError:
                        raise RuntimeError(
                            f"live worker {w} closed its pipe before "
                            "reporting a result"
                        ) from None
                    if msg[0] == "error":
                        raise RuntimeError(f"live worker {w} failed:\n{msg[2]}")
                    if msg[0] == "result":
                        payloads[w] = msg[2]
                        pending.discard(w)
                elif not procs[w].is_alive():
                    if w in killed:  # pragma: no cover - already handled
                        pending.discard(w)
                    else:
                        raise RuntimeError(
                            f"live worker {w} exited without reporting a result"
                        )
        return payloads, killed

    # ------------------------------------------------------------------
    # Result merging
    # ------------------------------------------------------------------
    def _merge(
        self, payloads: dict[int, dict], killed: set[int], horizon: float
    ) -> RunResult:
        RunMetrics(self.metrics)  # ensure the catalog exists even if empty
        result = RunResult(
            n_workers=self.n_workers, horizon=horizon, metrics=self.metrics
        )
        result.accuracy = [TimeSeries() for _ in range(self.n_workers)]
        result.loss = [TimeSeries() for _ in range(self.n_workers)]
        result.lbs = [TimeSeries() for _ in range(self.n_workers)]
        result.iterations = [0] * self.n_workers

        def fill(ts: TimeSeries, pair) -> None:
            for t, v in zip(*pair):
                ts.append(t, v)

        for w, payload in sorted(payloads.items()):
            fill(result.accuracy[w], payload["accuracy"])
            fill(result.loss[w], payload["loss"])
            fill(result.lbs[w], payload["lbs"])
            result.iterations[w] = payload["iterations"]
            result.dkt_merges += payload["dkt_merges"]
            result.events += payload["events"]
            result.epochs = max(result.epochs, payload["epoch"])
            for key, pair in payload["link_entries"].items():
                fill(result.link_entries.setdefault(tuple(key), TimeSeries()), pair)
            for key, pair in payload["link_chosen_n"].items():
                fill(result.link_chosen_n.setdefault(tuple(key), TimeSeries()), pair)
            self.metrics.merge_state(payload["metrics"])
            if self.tracer.enabled and payload["trace_events"]:
                self.tracer.ingest(payload["trace_events"])

        # GBS and membership are cluster-wide series every worker records
        # its own view of; take the lowest surviving worker's.
        if payloads:
            first = payloads[min(payloads)]
            fill(result.gbs, first["gbs"])
            fill(result.active_workers, first["active_workers"])
        return result
