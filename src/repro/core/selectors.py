"""Pluggable gradient selectors for the data quality assurance module.

The paper positions Max N as one instance of a family: "[gradient]
compression algorithms can be placed in the data quality assurance
module in DLion" (§6, Related Work). This module provides that plug
point. A :class:`GradientSelector` answers two questions per weight
variable:

* ``select(grad, level)`` — which entries ship at quality ``level``;
* ``count_at(grad_stats, level)`` — how many entries that is, cheaply,
  so the transmission-speed-assurance bisection can size payloads
  without re-scanning the gradient.

``level`` generalizes Max N's N: it always lives in ``(0, 100]`` and
larger levels ship more data. Implementations:

* :class:`MaxNSelector` — the paper's top-band rule (the default);
* :class:`TopKSelector` — classic top-k sparsification (level = the
  percentage of entries kept), as in Alistarh et al. [3];
* :class:`RandomKSelector` — unbiased random sparsification baseline;
* :class:`ThresholdSelector` — absolute-threshold sparsification, the
  rule family of Gaia-style significance filters.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "GradientSelector",
    "MaxNSelector",
    "TopKSelector",
    "RandomKSelector",
    "ThresholdSelector",
    "make_selector",
]


class GradientSelector:
    """Interface for data-quality-assurance selection rules."""

    name = "abstract"

    def select(
        self, grad: np.ndarray, level: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(flat_indices, values)`` for quality ``level``."""
        raise NotImplementedError

    def count_at(self, grad: np.ndarray, level: float) -> int:
        """How many entries :meth:`select` would keep (no allocation).

        Used by the transmission-speed-assurance bisection; the default
        falls back to running the selection.
        """
        return int(self.select(grad, level)[0].size)

    def count_at_levels(self, grad: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count_at` over an array of levels.

        The batched budget fit (``fit_levels_to_budgets``) prices a
        whole level grid through this in one pass per variable.
        Overrides must return counts exactly equal to ``count_at`` at
        every level and monotone non-decreasing in level. This base
        implementation merely loops — the transmission planner treats a
        selector that does not override it as unbatchable and falls
        back to per-link bisection, so the loop only ever runs in
        tests and one-off calls.
        """
        return np.array(
            [self.count_at(grad, lv) for lv in levels], dtype=np.int64
        )

    @staticmethod
    def _validate(level: float) -> None:
        if not 0.0 < level <= 100.0:
            raise ValueError(f"level must be in (0, 100], got {level}")

    @staticmethod
    def _validate_levels(levels: np.ndarray) -> np.ndarray:
        levels = np.asarray(levels, dtype=np.float64)
        if levels.size and not ((levels > 0.0) & (levels <= 100.0)).all():
            raise ValueError("levels must all be in (0, 100]")
        return levels


def _fraction_counts(size: int, levels: np.ndarray) -> np.ndarray:
    """Entries kept by a keep-``level``-percent rule (at least one)."""
    k = np.ceil(size * levels / 100.0).astype(np.int64)
    return np.minimum(size, np.maximum(1, k))


class MaxNSelector(GradientSelector):
    """The paper's Max N: entries within the top-N% magnitude band."""

    name = "maxn"

    def select(self, grad, level):
        from repro.core.maxn import select_max_n

        return select_max_n(grad, level)

    def count_at_levels(self, grad, levels):
        levels = self._validate_levels(levels)
        mags = np.abs(grad.reshape(-1))
        mx = float(mags.max(initial=0.0))
        if mx == 0.0:
            return np.zeros(levels.size, dtype=np.int64)
        # One sort, then every level is a searchsorted over it. The
        # thresholds are cast to the gradient dtype so the comparison
        # matches select_max_n's ``mags >= thr`` exactly (NumPy casts a
        # python-float threshold to the array dtype before comparing).
        order = np.sort(mags)
        thr = ((1.0 - levels / 100.0) * mx).astype(mags.dtype, copy=False)
        below = np.searchsorted(order, thr, side="left")
        return (mags.size - below).astype(np.int64)


class TopKSelector(GradientSelector):
    """Keep the ``level``-percent largest-magnitude entries (at least one).

    Unlike Max N, the payload size is exactly proportional to the
    level, independent of the gradient's value distribution.
    """

    name = "topk"

    def select(self, grad, level):
        self._validate(level)
        flat = grad.reshape(-1)
        mags = np.abs(flat)
        if float(mags.max(initial=0.0)) == 0.0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=flat.dtype)
        k = max(1, math.ceil(flat.size * level / 100.0))
        if k >= flat.size:
            idx = np.arange(flat.size, dtype=np.int64)
        else:
            idx = np.argpartition(mags, flat.size - k)[flat.size - k:]
            idx = np.sort(idx).astype(np.int64)
        return idx, flat[idx]

    def count_at(self, grad, level):
        self._validate(level)
        size = grad.size
        if size == 0 or float(np.abs(grad).max(initial=0.0)) == 0.0:
            return 0
        return min(size, max(1, math.ceil(size * level / 100.0)))

    def count_at_levels(self, grad, levels):
        levels = self._validate_levels(levels)
        if grad.size == 0 or float(np.abs(grad).max(initial=0.0)) == 0.0:
            return np.zeros(levels.size, dtype=np.int64)
        return _fraction_counts(grad.size, levels)


class RandomKSelector(GradientSelector):
    """Keep a uniform random ``level``-percent of entries.

    The unbiasedness baseline: same payload size as top-k but no
    prioritization — useful to quantify how much the *choice* of
    entries (vs. their count) matters.
    """

    name = "randomk"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def select(self, grad, level):
        self._validate(level)
        flat = grad.reshape(-1)
        if float(np.abs(flat).max(initial=0.0)) == 0.0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=flat.dtype)
        k = max(1, math.ceil(flat.size * level / 100.0))
        if k >= flat.size:
            idx = np.arange(flat.size, dtype=np.int64)
        else:
            idx = np.sort(self.rng.choice(flat.size, size=k, replace=False)).astype(
                np.int64
            )
        return idx, flat[idx]

    def count_at(self, grad, level):
        self._validate(level)
        size = grad.size
        if size == 0 or float(np.abs(grad).max(initial=0.0)) == 0.0:
            return 0
        return min(size, max(1, math.ceil(size * level / 100.0)))

    def count_at_levels(self, grad, levels):
        levels = self._validate_levels(levels)
        if grad.size == 0 or float(np.abs(grad).max(initial=0.0)) == 0.0:
            return np.zeros(levels.size, dtype=np.int64)
        return _fraction_counts(grad.size, levels)


class ThresholdSelector(GradientSelector):
    """Keep entries with ``|g| >= threshold``; ``level`` rescales it.

    The effective threshold is ``base_threshold * (100 / level − 1 + ε)``
    so that higher levels admit more entries, reaching everything as
    level → 100.
    """

    name = "threshold"

    def __init__(self, base_threshold: float = 1e-4):
        if base_threshold <= 0:
            raise ValueError("base_threshold must be positive")
        self.base_threshold = base_threshold

    def select(self, grad, level):
        self._validate(level)
        flat = grad.reshape(-1)
        mags = np.abs(flat)
        if float(mags.max(initial=0.0)) == 0.0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=flat.dtype)
        thr = self.base_threshold * (100.0 / level - 1.0 + 1e-9)
        idx = np.nonzero(mags >= thr)[0].astype(np.int64)
        if idx.size == 0:
            # always ship at least the most significant entry
            idx = np.array([int(np.argmax(mags))], dtype=np.int64)
        return idx, flat[idx]

    def count_at(self, grad, level):
        self._validate(level)
        mags = np.abs(grad.reshape(-1))
        if float(mags.max(initial=0.0)) == 0.0:
            return 0
        thr = self.base_threshold * (100.0 / level - 1.0 + 1e-9)
        return max(1, int(np.count_nonzero(mags >= thr)))

    def count_at_levels(self, grad, levels):
        levels = self._validate_levels(levels)
        mags = np.abs(grad.reshape(-1))
        if float(mags.max(initial=0.0)) == 0.0:
            return np.zeros(levels.size, dtype=np.int64)
        order = np.sort(mags)
        thr = self.base_threshold * (100.0 / levels - 1.0 + 1e-9)
        # Cast to the gradient dtype so the comparison matches
        # count_at's ``mags >= thr`` exactly (including overflow of a
        # huge float64 threshold to float32 inf — count 0, floored to 1).
        thr = thr.astype(mags.dtype, copy=False)
        below = np.searchsorted(order, thr, side="left")
        return np.maximum(1, mags.size - below).astype(np.int64)


def make_selector(
    name: str, *, rng: np.random.Generator | None = None, **kwargs
) -> GradientSelector:
    """Factory keyed by selector name."""
    if name == "maxn":
        return MaxNSelector()
    if name == "topk":
        return TopKSelector()
    if name == "randomk":
        if rng is None:
            raise ValueError("randomk needs an rng")
        return RandomKSelector(rng)
    if name == "threshold":
        return ThresholdSelector(**kwargs)
    raise ValueError(f"unknown selector {name!r}")
