"""DLion core: the paper's contribution.

* :mod:`gbs_controller` / :mod:`lbs_controller` / :mod:`weighted_update`
  — weighted dynamic batching (§3.2).
* :mod:`maxn` / :mod:`transmission` — per-link prioritized gradient
  exchange (§3.3).
* :mod:`dkt` — direct knowledge transfer (§3.4).
* :mod:`sync` — synchronous / asynchronous / bounded-synchronous
  training strategies (§4.2's ``synch_training``).
* :mod:`worker` / :mod:`engine` — the per-worker module wiring (Fig. 10)
  and the event-driven trainer.
* :mod:`api` — the generic framework surface (``build_model``,
  ``enqueue``, ``generate_partial_gradients``, ``send_data``,
  ``synch_training``) that the comparison systems plug into.
"""

from repro.core.config import TrainConfig, GbsConfig, LbsConfig, MaxNConfig, DktConfig
from repro.core.gbs_controller import GbsController
from repro.core.lbs_controller import LbsController, allocate_lbs
from repro.core.weighted_update import dynamic_batching_weight
from repro.core.maxn import select_max_n, select_payload
from repro.core.transmission import (
    GradientHistograms,
    TransmissionPlanner,
    fit_level_to_budget,
    fit_levels_to_budgets,
    fit_n_to_budget,
)
from repro.core.dkt import merge_weights, DktState
from repro.core.sync import SyncPolicy, make_sync_policy
from repro.core.engine import TrainingEngine, RunResult

__all__ = [
    "TrainConfig",
    "GbsConfig",
    "LbsConfig",
    "MaxNConfig",
    "DktConfig",
    "GbsController",
    "LbsController",
    "allocate_lbs",
    "dynamic_batching_weight",
    "select_max_n",
    "select_payload",
    "GradientHistograms",
    "TransmissionPlanner",
    "fit_n_to_budget",
    "fit_level_to_budget",
    "fit_levels_to_budgets",
    "merge_weights",
    "DktState",
    "SyncPolicy",
    "make_sync_policy",
    "TrainingEngine",
    "RunResult",
]
