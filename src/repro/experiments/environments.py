"""The emulated micro-cloud environments of Table 3.

Every environment gives each of the six workers a compute level (CPU
cores, or GPU units on the GPU platform) and a network capacity in Mbps.
Dynamic environments chain three sub-environments, each active for a
phase of the run (500 s in the paper; scaled with the run's time scale).

``Hetero NET B`` appears in Fig. 17 but not in Table 3; by analogy with
Hetero CPU B (a distinct straggler) we define it as homogeneous compute
with one distinctly slow network worker, and record the inference in
DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnvSpec", "ENVIRONMENTS", "get_environment", "LAN_MBPS"]

LAN_MBPS = 1000.0  # "LAN" in Table 3: the cluster's 1 Gbps fabric

# GPU instance compute units (relative): p2.xlarge = 1 GPU, p2.8xlarge = 8.
_P2X = 1.0
_P28X = 8.0


@dataclass(frozen=True)
class EnvSpec:
    """One Table 3 row."""

    name: str
    platform: str  # "cpu" | "gpu"
    cores: tuple[float, ...] = ()
    bandwidth: tuple[float, ...] = ()
    # Dynamic environments: names of the three phase sub-environments.
    phases: tuple[str, ...] = ()
    phase_duration: float = 500.0  # paper seconds, scaled by the runner
    description: str = ""

    def __post_init__(self) -> None:
        if self.platform not in ("cpu", "gpu"):
            raise ValueError("platform must be cpu or gpu")
        if not self.phases:
            if len(self.cores) != len(self.bandwidth):
                raise ValueError(
                    f"{self.name}: need matching cores + bandwidth lists"
                )
            if len(self.cores) < 2:
                raise ValueError(f"{self.name}: need at least 2 workers")

    @property
    def dynamic(self) -> bool:
        return bool(self.phases)


def _cpu(name: str, cores, bandwidth, description: str) -> EnvSpec:
    return EnvSpec(
        name=name,
        platform="cpu",
        cores=tuple(float(c) for c in cores),
        bandwidth=tuple(float(b) for b in bandwidth),
        description=description,
    )


ENVIRONMENTS: dict[str, EnvSpec] = {
    # -- homogeneous ---------------------------------------------------
    "Homo A": _cpu("Homo A", [24] * 6, [LAN_MBPS] * 6,
                   "no emulation, LAN (best case)"),
    "Homo B": _cpu("Homo B", [24] * 6, [50] * 6,
                   "no compute emulation, constrained homogeneous WAN"),
    "Homo C": EnvSpec(
        name="Homo C", platform="gpu",
        cores=(_P2X,) * 6, bandwidth=(LAN_MBPS,) * 6,
        description="6x p2.xlarge, LAN (GPU best case)",
    ),
    # -- heterogeneous compute ------------------------------------------
    "Hetero CPU A": _cpu("Hetero CPU A", [24, 24, 12, 12, 6, 6], [LAN_MBPS] * 6,
                         "evenly spread compute heterogeneity, LAN"),
    "Hetero CPU B": _cpu("Hetero CPU B", [24, 24, 24, 24, 24, 4], [LAN_MBPS] * 6,
                         "one distinct compute straggler, LAN"),
    # -- heterogeneous network ------------------------------------------
    "Hetero NET A": _cpu("Hetero NET A", [24] * 6, [50, 50, 35, 35, 20, 20],
                         "no compute emulation, heterogeneous WAN"),
    "Hetero NET B": _cpu("Hetero NET B", [24] * 6, [50, 50, 50, 50, 50, 10],
                         "one distinct network straggler (inferred; see DESIGN.md)"),
    # -- heterogeneous compute + network ---------------------------------
    "Hetero SYS A": _cpu("Hetero SYS A", [24, 24, 12, 12, 6, 6],
                         [50, 50, 35, 35, 20, 20],
                         "more compute comes with more bandwidth"),
    "Hetero SYS B": _cpu("Hetero SYS B", [24, 24, 12, 12, 6, 6],
                         [20, 20, 35, 35, 50, 50],
                         "more compute comes with less bandwidth"),
    "Hetero SYS C": EnvSpec(
        name="Hetero SYS C", platform="gpu",
        cores=(_P28X, _P28X, _P2X, _P2X, _P2X, _P2X),
        bandwidth=(190.0, 190.0, 140.0, 140.0, 100.0, 100.0),
        description="2x p2.8xlarge + 4x p2.xlarge over WAN",
    ),
    # -- scaling stress (extension; not a Table 3 row) -------------------
    # A 1,000-worker micro-cloud federation: the Hetero SYS A resource
    # pattern tiled across the fleet. Use with ``--workers N`` to
    # truncate (the bench ladder runs 16 / 128 / 1000) and ``--overlay``
    # to bound per-worker degree — a 1,000-way full mesh is exactly the
    # dense regime the sparse overlays exist to avoid.
    "Stress 1k": _cpu(
        "Stress 1k",
        ([24, 24, 12, 12, 6, 6] * 167)[:1000],
        ([50, 50, 35, 35, 20, 20] * 167)[:1000],
        "1,000-worker scaling stress preset (Hetero SYS A pattern tiled)",
    ),
    # -- dynamic ---------------------------------------------------------
    "Dynamic SYS A": EnvSpec(
        name="Dynamic SYS A", platform="cpu",
        phases=("Homo B", "Hetero SYS A", "Hetero SYS B"),
        description="more resources early in training",
    ),
    "Dynamic SYS B": EnvSpec(
        name="Dynamic SYS B", platform="cpu",
        phases=("Hetero SYS B", "Hetero SYS A", "Homo B"),
        description="more resources late in training",
    ),
}


def get_environment(name: str) -> EnvSpec:
    """Look up a Table 3 environment preset by name."""
    try:
        return ENVIRONMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; available: {sorted(ENVIRONMENTS)}"
        ) from None
