"""Experiment harness: Table 3 environments, runners, figure drivers.

* :mod:`environments` — the emulated micro-cloud environments of
  Table 3 (plus the Table 2 WAN matrix already in ``repro.cluster``).
* :mod:`runner` — builds topology + config for (environment, system),
  applies the wire-size bandwidth scaling and the time-axis scaling,
  and runs seeds.
* :mod:`figures` — one driver per paper figure; each returns the rows
  the benchmark prints and EXPERIMENTS.md records.
* :mod:`reporting` — ASCII tables.
"""

from repro.experiments.environments import ENVIRONMENTS, EnvSpec, get_environment
from repro.experiments.runner import (
    SYSTEM_VARIANTS,
    RunSpec,
    Workload,
    cpu_workload,
    gpu_workload,
    run_experiment,
    run_seeds,
)
from repro.experiments.reporting import format_table

__all__ = [
    "ENVIRONMENTS",
    "EnvSpec",
    "get_environment",
    "SYSTEM_VARIANTS",
    "RunSpec",
    "Workload",
    "cpu_workload",
    "gpu_workload",
    "run_experiment",
    "run_seeds",
    "format_table",
]
