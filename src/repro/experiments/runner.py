"""Builds and runs (environment × system) experiments.

Two scalings connect this reproduction to the paper's absolute numbers
(see DESIGN.md §2):

* **wire scaling** — the paper's models weigh 5 MB (Cipher) / 17 MB
  (MobileNet); our substrate models are smaller, so every environment
  bandwidth is multiplied by ``model_bytes / paper_model_bytes``. Ratios
  of communication time to computation time — which determine who wins —
  are preserved exactly.
* **time scaling** — the paper trains for 1500 s (CPU) / 2 h (GPU); the
  default ``fast`` scale compresses the time axis (0.25× CPU, 0.05× GPU)
  and scales the DKT period and dynamic-phase lengths with it. Set
  ``REPRO_BENCH_SCALE=full`` for paper-length runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.cluster.traces import PiecewiseTrace
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig, TrainConfig
from repro.core.engine import RunResult, TrainingEngine
from repro.experiments.environments import EnvSpec, get_environment
from repro.nn.models import build_model

__all__ = [
    "Workload",
    "cpu_workload",
    "gpu_workload",
    "SYSTEM_VARIANTS",
    "RunSpec",
    "bench_scale",
    "bench_seeds",
    "run_experiment",
    "run_seeds",
]

# Paper run lengths (seconds).
PAPER_CPU_HORIZON = 1500.0
PAPER_GPU_HORIZON = 7200.0
PAPER_PHASE = 500.0
PAPER_DKT_PERIOD = 100

# "full" keeps the paper's CPU horizon verbatim; the GPU axis stays
# compressed even in full mode because simulating 2 h of GPU-rate
# iterations against a NumPy MobileNet is wall-clock infeasible — and a
# slower-motion 2 h is dynamically identical to a shorter run at normal
# tempo (see docs/simulation.md).
_SCALES = {"fast": {"cpu": 0.25, "gpu": 0.025}, "full": {"cpu": 1.0, "gpu": 0.1}}


def bench_scale() -> str:
    """``fast`` (default) or ``full`` from ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "fast")
    if scale not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return scale


def bench_seeds() -> tuple[int, ...]:
    """One seed in fast mode; the paper's three-run protocol in full."""
    return (0,) if bench_scale() == "fast" else (0, 1, 2)


@dataclass(frozen=True)
class Workload:
    """Platform workload: model, dataset, and calibration constants."""

    platform: str
    model: str
    model_kwargs: dict
    dataset: str
    dataset_kwargs: dict
    train_size: int
    test_size: int
    lr: float
    initial_lbs: int
    per_unit_rate: float  # samples/sec per core (CPU) or per GPU (GPU)
    overhead: float  # fixed seconds per iteration
    paper_model_mb: float  # wire size of the paper's model
    paper_horizon: float
    eval_subset: int

    @property
    def time_scale(self) -> float:
        return _SCALES[bench_scale()][self.platform]

    def horizon(self) -> float:
        """The scaled run length in simulated seconds."""
        return self.paper_horizon * self.time_scale

    def phase_duration(self) -> float:
        """Scaled length of one dynamic-environment phase."""
        return PAPER_PHASE * self.time_scale

    def dkt_period(self) -> int:
        """Scaled DKT period in iterations (platform-specific floor)."""
        # Scale the paper's 100-iteration period with the time axis, but
        # keep it large enough that weight snapshots do not flood the
        # links (the too-frequent-DKT congestion of Fig. 9a): GPU runs
        # have much shorter iterations, so their floor is higher.
        floor = 50 if self.platform == "gpu" else 10
        return max(floor, int(round(PAPER_DKT_PERIOD * self.time_scale)))

    def model_bytes(self) -> int:
        """Wire size (bytes) of this workload's model."""
        return _model_bytes(self.model, tuple(sorted(self.model_kwargs.items())))

    def wire_scale(self) -> float:
        """Bandwidth multiplier preserving the comm/compute balance."""
        return self.model_bytes() / (self.paper_model_mb * 1e6)


@lru_cache(maxsize=8)
def _model_bytes(model: str, kwargs_items: tuple) -> int:
    probe = build_model(model, np.random.default_rng(0), **dict(kwargs_items))
    return probe.nbytes()


def cpu_workload() -> Workload:
    """The CPU-cluster workload: Cipher-class model on CIFAR-like data.

    ``fast`` mode substitutes an MLP of the same distributed behaviour
    (DLion's techniques act on named gradient variables, not layer
    types) at ~50× the step speed; ``full`` mode trains the actual
    Cipher CNN.
    """
    full = bench_scale() == "full"
    return Workload(
        platform="cpu",
        model="cipher" if full else "mlp",
        model_kwargs={} if full else {"in_dim": 576, "hidden": (128, 64)},
        dataset="cifar_like",
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        initial_lbs=32,
        per_unit_rate=8.0,
        overhead=0.05,
        paper_model_mb=5.0,
        paper_horizon=PAPER_CPU_HORIZON,
        eval_subset=400,
    )


def gpu_workload() -> Workload:
    """The GPU-cluster workload: MobileNet-class model on ImageNet-like data.

    GPUs produce gradients far faster than the network can ship them —
    the severe network-bottleneck regime of §5.2.2. ``fast`` mode uses a
    wide MLP with a comparable wire footprint; ``full`` trains the
    depthwise-separable MobileNet.
    """
    full = bench_scale() == "full"
    return Workload(
        platform="gpu",
        model="mobilenet" if full else "mlp",
        model_kwargs={"width": 2.0} if full else {"in_dim": 3072, "hidden": (64,), "num_classes": 100},
        dataset="imagenet_like",
        dataset_kwargs={"noise": 1.5},
        train_size=8000,
        test_size=800,
        lr=0.05,
        initial_lbs=32,
        per_unit_rate=1000.0,
        overhead=0.01,
        paper_model_mb=17.0,
        paper_horizon=PAPER_GPU_HORIZON,
        eval_subset=300,
    )


def stress_workload() -> Workload:
    """The 1,000-worker scaling workload: a deliberately tiny model.

    The stress presets measure *dispatch* scaling, not learning, so the
    substrate model is shrunk until per-event Python work is negligible
    and the event loop dominates. The DLion control planes (GBS/LBS,
    Max N, DKT) still run — at this scale their traffic is exactly what
    the calendar queue and overlay routing must absorb.
    """
    return Workload(
        platform="cpu",
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (32,)},
        dataset="cifar_like",
        dataset_kwargs={"noise": 1.8},
        train_size=6000,
        test_size=500,
        lr=0.03,
        initial_lbs=8,
        per_unit_rate=8.0,
        overhead=0.05,
        paper_model_mb=5.0,
        paper_horizon=PAPER_CPU_HORIZON,
        eval_subset=100,
    )


def workload_for(env: EnvSpec) -> Workload:
    """The platform workload matching an environment's cpu/gpu tag."""
    if env.name.startswith("Stress"):
        return stress_workload()
    return gpu_workload() if env.platform == "gpu" else cpu_workload()


# ----------------------------------------------------------------------
# System variants (the five systems + DLion's ablations)
# ----------------------------------------------------------------------
SYSTEM_VARIANTS = (
    "dlion",
    "baseline",
    "ako",
    "gaia",
    "hop",
    "dlion-no-wu",     # weighted dynamic batching without weighted update
    "dlion-no-dbwu",   # neither dynamic batching nor weighted update
    "dlion-no-dkt",    # DLion without direct knowledge transfer
    "dlion-max10",     # Max N (N=10) alone, no other DLion techniques
)

_OFF = dict(
    gbs=GbsConfig(enabled=False),
    lbs=LbsConfig(enabled=False),
    maxn=MaxNConfig(enabled=False),
    dkt=DktConfig(enabled=False),
    weighted_update=False,
)


def build_config(variant: str, workload: Workload, **overrides) -> TrainConfig:
    """The :class:`TrainConfig` for one system variant on one workload."""
    if variant not in SYSTEM_VARIANTS:
        raise ValueError(f"unknown system variant {variant!r}")
    ts = workload.time_scale
    base = TrainConfig(
        model=workload.model,
        model_kwargs=dict(workload.model_kwargs),
        dataset=workload.dataset,
        dataset_kwargs=dict(workload.dataset_kwargs),
        train_size=workload.train_size,
        test_size=workload.test_size,
        lr=workload.lr,
        initial_lbs=workload.initial_lbs,
        eval_subset=workload.eval_subset,
        gbs=GbsConfig(update_period_s=max(5.0, 60.0 * ts)),
        dkt=DktConfig(period_iters=workload.dkt_period()),
        system="dlion",
    )
    if variant == "dlion":
        cfg = base
    elif variant == "dlion-no-wu":
        cfg = base.with_(weighted_update=False)
    elif variant == "dlion-no-dbwu":
        cfg = base.with_(
            weighted_update=False,
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
        )
    elif variant == "dlion-no-dkt":
        cfg = base.with_(dkt=DktConfig(enabled=False))
    elif variant == "dlion-max10":
        # Max N alone, stripped of every other technique; asynchronous
        # like the partial-exchange systems it is compared against.
        cfg = base.with_(
            maxn=MaxNConfig(fixed_n=10.0),
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
            sync_mode="async",
        )
    else:  # baseline / ako / gaia / hop
        cfg = base.with_(system=variant, **_OFF)
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


# ----------------------------------------------------------------------
# Topology construction
# ----------------------------------------------------------------------
def build_topology(
    env: EnvSpec, workload: Workload, n_workers: int | None = None
) -> ClusterTopology:
    """The simulated cluster for one environment, wire-scaled.

    ``n_workers`` truncates the environment to its first N workers
    (N >= 2) — used by the live backend's smoke runs, where spawning
    all six Table 3 processes would be needlessly heavy.
    """
    max_n = len(env.cores) if env.cores else 6
    if n_workers is not None and not 2 <= n_workers <= max_n:
        raise ValueError(f"n_workers must be in [2, {max_n}], got {n_workers}")
    ws = workload.wire_scale()
    if not env.dynamic:
        cores = list(env.cores[:n_workers])
        bw = [b * ws for b in env.bandwidth[:n_workers]]
        return ClusterTopology.build(
            cores=cores,
            bandwidth=bw,
            per_core_rate=workload.per_unit_rate,
            overhead=workload.overhead,
        )

    # Dynamic environment: piecewise traces over the three phases.
    phases = [get_environment(p) for p in env.phases]
    dur = workload.phase_duration()
    starts = [k * dur for k in range(len(phases))]
    n = n_workers if n_workers is not None else 6
    cores = [
        PiecewiseTrace([(s, p.cores[i]) for s, p in zip(starts, phases)])
        for i in range(n)
    ]
    # Per ordered pair: min of the two endpoints' capacities per phase.
    from repro.cluster.compute import ComputeProfile
    from repro.cluster.network import BandwidthMatrix

    spec = []
    for i in range(n):
        row = []
        for j in range(n):
            if i == j:
                row.append(1.0)  # unused diagonal
            else:
                row.append(
                    PiecewiseTrace(
                        [
                            (s, min(p.bandwidth[i], p.bandwidth[j]) * ws)
                            for s, p in zip(starts, phases)
                        ]
                    )
                )
        spec.append(row)
    matrix = BandwidthMatrix(spec)
    profiles = [
        ComputeProfile(
            c, per_core_rate=workload.per_unit_rate, overhead=workload.overhead
        )
        for c in cores
    ]
    return ClusterTopology(compute=profiles, network=matrix)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """A fully-specified run request."""

    environment: str
    system: str
    seed: int = 0
    horizon: float | None = None  # defaults to the workload's scaled horizon
    config_overrides: dict = field(default_factory=dict)
    # Threads for the engine's parallel compute stage. Results are
    # byte-identical for any value, so sweeps may raise this freely.
    compute_threads: int = 1
    # Truncate the environment to its first N workers (None = all).
    n_workers: int | None = None
    # Sparse exchange overlay spec (see PeerGraph.from_spec); None = the
    # paper's full mesh.
    overlay: str | None = None


def run_experiment(
    spec: RunSpec,
    *,
    tracer=None,
    metrics=None,
    profiler=None,
) -> RunResult:
    """Run one (environment, system, seed) experiment to its horizon.

    ``tracer`` / ``metrics`` / ``profiler`` are optional observability
    sinks threaded into the engine (see :mod:`repro.obs`); by default
    the run is untraced and unprofiled.
    """
    env = get_environment(spec.environment)
    workload = workload_for(env)
    config = build_config(spec.system, workload, **spec.config_overrides)
    topo = build_topology(env, workload, n_workers=spec.n_workers)
    peer_graph = None
    if spec.overlay is not None:
        from repro.cluster.peergraph import PeerGraph

        peer_graph = PeerGraph.from_spec(spec.overlay, topo.n_workers)
    engine = TrainingEngine(
        config, topo, seed=spec.seed,
        tracer=tracer, metrics=metrics, profiler=profiler,
        compute_threads=spec.compute_threads,
        peer_graph=peer_graph,
    )
    horizon = spec.horizon if spec.horizon is not None else workload.horizon()
    return engine.run(horizon)


def run_seeds(
    environment: str,
    system: str,
    *,
    seeds: tuple[int, ...] | None = None,
    horizon: float | None = None,
    config_overrides: dict | None = None,
) -> list[RunResult]:
    """The paper's multi-run protocol (3 runs in full mode, 1 in fast)."""
    if seeds is None:
        seeds = bench_seeds()
    return [
        run_experiment(
            RunSpec(
                environment=environment,
                system=system,
                seed=s,
                horizon=horizon,
                config_overrides=dict(config_overrides or {}),
            )
        )
        for s in seeds
    ]
