"""Generic parameter sweeps over (environment × system × config).

The figure drivers each hand-roll a small sweep; this module exposes
the same machinery as a public API so downstream users can run their
own studies::

    from repro.experiments.sweep import grid_sweep

    points = grid_sweep(
        "Hetero NET A", "dlion",
        {"lr": [0.01, 0.03, 0.1], "initial_lbs": [16, 32]},
        seeds=(0, 1), horizon=200.0,
    )
    print(render_sweep(points).render())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.engine import RunResult
from repro.experiments.reporting import FigureResult
from repro.experiments.runner import RunSpec, run_experiment
from repro.utils.metrics import mean_and_ci95

__all__ = ["SweepPoint", "grid_sweep", "render_sweep"]


@dataclass
class SweepPoint:
    """One grid cell: the parameter assignment and its per-seed results."""

    params: dict
    results: list[RunResult] = field(default_factory=list)

    def accuracies(self) -> list[float]:
        """Final cluster-mean accuracy of each seed's run."""
        return [r.final_mean_accuracy() for r in self.results]

    def mean_accuracy(self) -> float:
        """Mean final accuracy across seeds."""
        return mean_and_ci95(self.accuracies())[0]

    def ci95(self) -> float:
        """95% confidence half-width across seeds."""
        return mean_and_ci95(self.accuracies())[1]


def grid_sweep(
    environment: str,
    system: str,
    param_grid: dict[str, list],
    *,
    seeds: tuple[int, ...] = (0,),
    horizon: float | None = None,
    base_overrides: dict | None = None,
) -> list[SweepPoint]:
    """Run the full cartesian grid; returns one point per combination.

    Grid keys are :class:`~repro.core.config.TrainConfig` field names;
    values are applied as config overrides on top of ``base_overrides``.
    """
    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    if not seeds:
        raise ValueError("need at least one seed")
    keys = list(param_grid.keys())
    points: list[SweepPoint] = []
    for combo in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        overrides = dict(base_overrides or {})
        overrides.update(params)
        point = SweepPoint(params=params)
        for seed in seeds:
            point.results.append(
                run_experiment(
                    RunSpec(
                        environment=environment,
                        system=system,
                        seed=seed,
                        horizon=horizon,
                        config_overrides=overrides,
                    )
                )
            )
        points.append(point)
    return points


def render_sweep(
    points: list[SweepPoint], *, title: str = "parameter sweep"
) -> FigureResult:
    """Format sweep points as a result table, best accuracy first."""
    if not points:
        raise ValueError("no sweep points")
    keys = list(points[0].params.keys())
    res = FigureResult(
        figure="Sweep",
        title=title,
        header=[*keys, "accuracy", "ci95"],
    )
    for point in sorted(points, key=lambda p: -p.mean_accuracy()):
        res.rows.append(
            [*(str(point.params[k]) for k in keys), point.mean_accuracy(), point.ci95()]
        )
    return res
