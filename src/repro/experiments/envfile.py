"""Custom environments from JSON files.

Downstream users rarely have the paper's exact clusters; this module
lets them describe their own micro-clouds declaratively and run any
system against them (``repro-dlion run --env-file my-cluster.json``).

Schema (all bandwidths in Mbps, compute in cores/GPU-equivalents)::

    {
      "name": "my-cluster",
      "platform": "cpu",
      "workers": [
        {"cores": 24, "bandwidth": 50},
        {"cores": [[0, 24], [300, 12]],          // piecewise trace
         "bandwidth": [[0, 50], [300, 20]]},
        ...
      ]
    }

A scalar is a constant resource; a list of ``[start_time, value]``
pairs is a :class:`~repro.cluster.traces.PiecewiseTrace` (first start
must be 0). Link bandwidth between two workers is the slower endpoint,
matching :meth:`BandwidthMatrix.from_worker_capacity`.
"""

from __future__ import annotations

import json
import pathlib

from repro.cluster.traces import ConstantTrace, PiecewiseTrace
from repro.experiments.environments import EnvSpec

__all__ = ["load_environment", "parse_environment", "trace_from_spec"]


def trace_from_spec(spec):
    """A scalar → ConstantTrace; ``[[t, v], ...]`` → PiecewiseTrace."""
    if isinstance(spec, (int, float)):
        return ConstantTrace(float(spec))
    if isinstance(spec, list):
        segments = []
        for pair in spec:
            if not (isinstance(pair, list) and len(pair) == 2):
                raise ValueError(f"trace segment must be [time, value], got {pair!r}")
            segments.append((float(pair[0]), float(pair[1])))
        return PiecewiseTrace(segments)
    raise ValueError(f"cannot interpret resource spec {spec!r}")


def _static_value(spec) -> float | None:
    """The scalar value if the spec is constant, else None."""
    return float(spec) if isinstance(spec, (int, float)) else None


def parse_environment(doc: dict) -> tuple[EnvSpec, list, list]:
    """Validate a JSON document; returns (spec, cores, bandwidths).

    ``cores`` / ``bandwidths`` are per-worker scalars or traces, ready
    for :meth:`ClusterTopology.build`. The returned :class:`EnvSpec`
    carries static placeholder values for trace-typed resources (it is
    only used for naming/reporting).
    """
    if not isinstance(doc, dict):
        raise ValueError("environment document must be a JSON object")
    name = doc.get("name")
    if not name or not isinstance(name, str):
        raise ValueError("environment needs a string 'name'")
    platform = doc.get("platform", "cpu")
    workers = doc.get("workers")
    if not isinstance(workers, list) or len(workers) < 2:
        raise ValueError("environment needs a 'workers' list with >= 2 entries")

    cores, bandwidths = [], []
    for i, w in enumerate(workers):
        if not isinstance(w, dict) or "cores" not in w or "bandwidth" not in w:
            raise ValueError(f"worker {i} needs 'cores' and 'bandwidth'")
        c, b = w["cores"], w["bandwidth"]
        trace_from_spec(c)  # validate
        trace_from_spec(b)
        cores.append(c if _static_value(c) is None else float(c))
        bandwidths.append(b if _static_value(b) is None else float(b))

    # EnvSpec requires exactly 6 workers for the paper presets; custom
    # files may use any count, so build the spec loosely via __new__-
    # style construction is avoided: report static placeholders.
    static_cores = tuple(
        _static_value(w["cores"]) or trace_from_spec(w["cores"]).value_at(0.0)
        for w in workers
    )
    static_bw = tuple(
        _static_value(w["bandwidth"]) or trace_from_spec(w["bandwidth"]).value_at(0.0)
        for w in workers
    )
    spec = EnvSpec.__new__(EnvSpec)
    object.__setattr__(spec, "name", name)
    object.__setattr__(spec, "platform", platform)
    object.__setattr__(spec, "cores", static_cores)
    object.__setattr__(spec, "bandwidth", static_bw)
    object.__setattr__(spec, "phases", ())
    object.__setattr__(spec, "phase_duration", 500.0)
    object.__setattr__(spec, "description", f"custom environment from file ({name})")
    if platform not in ("cpu", "gpu"):
        raise ValueError("platform must be cpu or gpu")

    # Normalize trace-typed entries into trace objects for the topology.
    cores_out = [
        trace_from_spec(w["cores"]) if _static_value(w["cores"]) is None else float(w["cores"])
        for w in workers
    ]
    bw_out = [
        trace_from_spec(w["bandwidth"]) if _static_value(w["bandwidth"]) is None else float(w["bandwidth"])
        for w in workers
    ]
    return spec, cores_out, bw_out


def load_environment(path: str | pathlib.Path) -> tuple[EnvSpec, list, list]:
    """Read and validate an environment JSON file."""
    text = pathlib.Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    return parse_environment(doc)
