"""Summarize a Chrome-trace file produced by ``--trace``.

``repro-dlion report <trace.json>`` turns a trace back into the
paper-style diagnostic tables: per-worker compute/wait breakdown
(who spent the horizon training vs. blocked on the sync gate),
per-link utilization (which links carried the bytes and how busy they
were), the GBS/LBS timelines, and DKT protocol activity. Everything is
derived from the trace alone, so traces archived from old runs stay
analyzable.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict

from repro.experiments.reporting import format_table
from repro.obs.metrics import percentile_from_sample

__all__ = [
    "load_trace",
    "summarize_trace",
    "render_report",
    "load_metrics",
    "render_metrics_report",
]


def load_trace(path: str | pathlib.Path) -> list[dict]:
    """Read a Chrome-trace JSON file and return its event list."""
    doc = json.loads(pathlib.Path(path).read_text())
    if isinstance(doc, list):  # bare-array variant of the format
        return doc
    try:
        return doc["traceEvents"]
    except (TypeError, KeyError):
        raise ValueError(f"{path}: not a Chrome-trace JSON document")


def _process_names(events: list[dict]) -> dict[int, str]:
    return {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }


def summarize_trace(events: list[dict]) -> dict:
    """Aggregate a trace into plain data (used by :func:`render_report`).

    Returns a dict with ``horizon_s``, ``workers`` (per-pid compute/wait
    totals and iteration counts), ``links`` (per src->dst byte and busy
    totals), ``gbs`` / ``lbs`` counter timelines, and ``dkt`` instant
    counts.
    """
    names = _process_names(events)
    worker_pids = sorted(
        pid for pid, name in names.items() if name.startswith("worker ")
    )
    workers = {
        pid: {"iterations": 0, "compute_s": 0.0, "wait_s": 0.0, "lbs_changes": 0,
              "lbs_final": None}
        for pid in worker_pids
    }
    links: dict[tuple[int, int], dict] = defaultdict(
        lambda: {"transfers": 0, "bytes": 0, "busy_s": 0.0}
    )
    gbs: list[tuple[float, float]] = []
    lbs: dict[int, list[tuple[float, float]]] = defaultdict(list)
    dkt: dict[str, int] = defaultdict(int)
    horizon_us = 0.0

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = float(ev.get("ts", 0.0))
        dur = float(ev.get("dur", 0.0)) if ph == "X" else 0.0
        horizon_us = max(horizon_us, ts + dur)
        cat = ev.get("cat", "")
        pid = ev.get("pid")
        if ph == "X" and cat == "iter" and pid in workers:
            workers[pid]["iterations"] += 1
            workers[pid]["compute_s"] += dur / 1e6
        elif ph == "X" and cat == "sync" and pid in workers:
            workers[pid]["wait_s"] += dur / 1e6
        elif ph == "X" and cat == "net":
            args = ev.get("args", {})
            dst = args.get("dst")
            if dst is None:  # fall back to the "kind->dst" span name
                try:
                    dst = int(str(ev.get("name", "")).rsplit("->", 1)[1])
                except (IndexError, ValueError):
                    continue
            link = links[(pid, int(dst))]
            link["transfers"] += 1
            link["bytes"] += int(args.get("bytes", 0))
            link["busy_s"] += dur / 1e6
        elif ph == "C":
            name = ev.get("name", "")
            values = ev.get("args", {})
            if name == "gbs":
                gbs.append((ts / 1e6, float(values.get("gbs", 0.0))))
            elif name == "lbs" and pid in workers:
                lbs[pid].append((ts / 1e6, float(values.get("lbs", 0.0))))
        elif ph == "i" and cat == "dkt":
            dkt[ev.get("name", "dkt")] += 1

    for pid, series in lbs.items():
        workers[pid]["lbs_changes"] = len(series)
        workers[pid]["lbs_final"] = series[-1][1] if series else None

    return {
        "horizon_s": horizon_us / 1e6,
        "workers": workers,
        "links": dict(links),
        "gbs": gbs,
        "lbs": dict(lbs),
        "dkt": dict(dkt),
    }


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"


def render_report(events: list[dict]) -> str:
    """The full plain-text report for one trace."""
    summary = summarize_trace(events)
    horizon = summary["horizon_s"]
    sections = [f"trace horizon : {horizon:.1f} simulated seconds"]

    rows = []
    for pid, w in sorted(summary["workers"].items()):
        rows.append(
            [
                f"worker {pid}",
                w["iterations"],
                round(w["compute_s"], 2),
                _pct(w["compute_s"], horizon),
                round(w["wait_s"], 2),
                _pct(w["wait_s"], horizon),
                w["lbs_changes"],
                "-" if w["lbs_final"] is None else int(w["lbs_final"]),
            ]
        )
    if rows:
        sections.append("\nper-worker compute/wait breakdown:")
        sections.append(
            format_table(
                ["worker", "iters", "compute s", "compute %",
                 "wait s", "wait %", "lbs changes", "lbs final"],
                rows,
            )
        )

    rows = []
    for (src, dst), link in sorted(summary["links"].items()):
        rows.append(
            [
                f"{src}->{dst}",
                link["transfers"],
                round(link["bytes"] / 1e6, 2),
                round(link["busy_s"], 2),
                _pct(link["busy_s"], horizon),
            ]
        )
    if rows:
        sections.append("\nper-link utilization:")
        sections.append(
            format_table(["link", "transfers", "MB", "busy s", "util %"], rows)
        )

    if summary["gbs"]:
        steps = ", ".join(f"{t:.0f}s->{int(v)}" for t, v in summary["gbs"])
        sections.append(f"\nGBS timeline   : {steps}")

    if summary["dkt"]:
        counts = ", ".join(
            f"{name}={n}" for name, n in sorted(summary["dkt"].items())
        )
        sections.append(f"DKT activity   : {counts}")

    return "\n".join(sections)


def load_metrics(path: str | pathlib.Path) -> dict:
    """Read a ``--metrics-out`` registry dump (name -> family record)."""
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or any(
        not isinstance(v, dict) or "kind" not in v for v in doc.values()
    ):
        raise ValueError(f"{path}: not a metrics registry dump")
    return doc


def _series_label(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in labels.items())


def render_metrics_report(dump: dict) -> str:
    """Latency/size distribution tables from a ``--metrics-out`` dump.

    One table per histogram family, one row per label series with the
    count, mean, and p50/p95/p99 estimated from the cumulative buckets
    (re-derived via :func:`percentile_from_sample` when a dump predates
    the exported percentile keys).
    """
    sections = []
    for name, fam in sorted(dump.items()):
        if fam.get("kind") != "histogram" or not fam.get("samples"):
            continue
        rows = []
        for rec in fam["samples"]:
            count = rec.get("count", 0)
            if not count:
                continue
            mean = rec.get("sum", 0.0) / count

            def pick(key, q, rec=rec):
                if key in rec:
                    return rec[key]
                return percentile_from_sample(rec, q)

            def fmt(v):
                return "-" if v is None else f"{v:.6g}"

            rows.append(
                [
                    _series_label(rec.get("labels", {})),
                    count,
                    f"{mean:.6g}",
                    fmt(pick("p50", 0.50)),
                    fmt(pick("p95", 0.95)),
                    fmt(pick("p99", 0.99)),
                    fmt(rec.get("max")),
                ]
            )
        if not rows:
            continue
        sections.append(f"\n{name} ({fam.get('help', '')}):")
        sections.append(
            format_table(
                ["series", "count", "mean", "p50", "p95", "p99", "max"], rows
            )
        )
    if not sections:
        return "no histogram samples in this metrics dump"
    return "\n".join(sections).lstrip("\n")
