"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["FigureResult", "format_table"]


@dataclass
class FigureResult:
    """One reproduced table/figure: an id, headers, rows, and notes."""

    figure: str
    title: str
    header: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The figure as a titled ASCII table with its notes."""
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_table(self.header, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    if cell is None:
        return "-"
    return str(cell)


def format_table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(header, widths)), sep]
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
