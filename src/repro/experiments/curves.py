"""Curve utilities: resampling, smoothing, and aligning accuracy series.

Run recordings are event-timed (samples land wherever evaluations
happened), which is awkward for comparison plots and aggregation across
seeds. These helpers put curves on a common clock:

* :func:`resample` — last-observation-carried-forward onto a uniform
  grid;
* :func:`ema` — exponential smoothing for noisy accuracy traces;
* :func:`align_and_average` — mean ± std across runs on a shared grid;
* :func:`auc` — area under the accuracy curve, a budget-free scalar for
  "how fast and how high" comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.utils.metrics import TimeSeries

__all__ = ["resample", "ema", "align_and_average", "auc"]


def resample(series: TimeSeries, grid: np.ndarray) -> np.ndarray:
    """LOCF-resample a series onto ``grid`` (monotone increasing).

    Grid points before the first sample take the first value.
    """
    if not series:
        raise ValueError("cannot resample an empty series")
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("grid must be a non-empty 1-D array")
    if np.any(np.diff(grid) < 0):
        raise ValueError("grid must be non-decreasing")
    times, values = series.as_arrays()
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(values) - 1)
    return values[idx]


def ema(values: np.ndarray, *, alpha: float = 0.3) -> np.ndarray:
    """Exponential moving average, seeded at the first value."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.copy()
    out = np.empty_like(arr)
    out[0] = arr[0]
    for i in range(1, arr.size):
        out[i] = alpha * arr[i] + (1 - alpha) * out[i - 1]
    return out


def align_and_average(
    series_list: list[TimeSeries], *, points: int = 100
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean and std of several runs on a shared uniform grid.

    The grid spans ``[0, min(last sample time)]`` so every run covers
    every grid point. Returns ``(grid, mean, std)``.
    """
    if not series_list:
        raise ValueError("no series")
    if points < 2:
        raise ValueError("need at least two grid points")
    horizon = min(s.times[-1] for s in series_list)
    grid = np.linspace(0.0, horizon, points)
    stacked = np.vstack([resample(s, grid) for s in series_list])
    return grid, stacked.mean(axis=0), stacked.std(axis=0)


def auc(series: TimeSeries, *, horizon: float | None = None) -> float:
    """Normalized area under the curve over ``[0, horizon]``.

    Computed on the LOCF step function, divided by the horizon, so the
    result lives in the value's own units (an accuracy AUC of 0.6 means
    "0.6 average accuracy over the budget").
    """
    if not series:
        raise ValueError("empty series")
    times, values = series.as_arrays()
    end = horizon if horizon is not None else times[-1]
    if end <= 0:
        raise ValueError("horizon must be positive")
    # step integral: each sample holds until the next (or the horizon)
    total = 0.0
    for i in range(len(times)):
        t0 = times[i]
        if t0 >= end:
            break
        t1 = min(times[i + 1] if i + 1 < len(times) else end, end)
        total += values[i] * max(0.0, t1 - t0)
    # the stretch before the first sample counts as the first value
    total += values[0] * min(times[0], end)
    return total / end
