"""One driver per paper table/figure.

Each ``fig*/table*`` function runs the experiment behind that figure and
returns a :class:`~repro.experiments.reporting.FigureResult` whose rows
mirror the paper's reported series. The benchmark files under
``benchmarks/`` are thin wrappers that call these and print the result;
EXPERIMENTS.md records paper-vs-measured from the same rows.

All runs respect ``REPRO_BENCH_SCALE`` (fast/full) through the runner.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.compute import ComputeProfile
from repro.cluster.network import AWS_REGION_BANDWIDTH, AWS_REGIONS, BandwidthMatrix
from repro.cluster.topology import ClusterTopology
from repro.cluster.traces import PiecewiseTrace
from repro.core.config import DktConfig, GbsConfig, LbsConfig, MaxNConfig
from repro.core.engine import TrainingEngine
from repro.experiments.environments import ENVIRONMENTS, get_environment
from repro.experiments.reporting import FigureResult
from repro.experiments.runner import (
    bench_seeds,
    build_config,
    build_topology,
    cpu_workload,
    run_seeds,
)
from repro.utils.metrics import detect_convergence, mean_and_ci95, time_to_accuracy

__all__ = [
    "table1", "table2", "table3",
    "fig05", "fig06", "fig07", "fig08",
    "fig09a", "fig09b", "fig09c",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21",
]

SYSTEMS = ("dlion", "baseline", "ako", "gaia", "hop")
TARGET_ACCURACY = 0.70  # the paper's time-to-accuracy target


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _system_comparison(
    figure: str,
    title: str,
    environments: tuple[str, ...],
    *,
    systems: tuple[str, ...] = SYSTEMS,
    metric: str = "accuracy",
) -> FigureResult:
    """Run ``systems × environments``; one row per pair.

    ``metric``: "accuracy" (mean cluster accuracy at the horizon, the
    paper's within-budget accuracy), or "deviation" (std of per-worker
    accuracy — Fig. 17).
    """
    header = ["environment", "system", metric, "ci95", "vs dlion"]
    result = FigureResult(figure=figure, title=title, header=header)
    for env in environments:
        dlion_mean = None
        for system in systems:
            runs = run_seeds(env, system)
            if metric == "accuracy":
                vals = [r.final_mean_accuracy() for r in runs]
            elif metric == "deviation":
                vals = [r.accuracy_deviation_at(r.horizon) for r in runs]
            else:
                raise ValueError(metric)
            mean, ci = mean_and_ci95(vals)
            if system == systems[0]:
                dlion_mean = mean
            ratio = None if dlion_mean in (None, 0) else dlion_mean / max(mean, 1e-9)
            result.rows.append([env, system, mean, ci, ratio])
    result.notes.append(
        "'vs dlion' = dlion metric / system metric (>1 means dlion wins on accuracy)"
    )
    return result


def _homo_topology(workload) -> ClusterTopology:
    return build_topology(get_environment("Homo A"), workload)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1() -> FigureResult:
    """Table 1: lines of plugin code to express each system."""
    from repro.baselines.loc import table1_rows

    paper = {
        "baseline": {"generate_partial_gradients": 1, "synch_training": 0},
        "hop": {"generate_partial_gradients": 1, "synch_training": 20},
        "gaia": {"generate_partial_gradients": 1, "synch_training": 0},
        "ako": {"generate_partial_gradients": 23, "synch_training": 0},
    }
    res = FigureResult(
        figure="Table 1",
        title="Lines of code to emulate systems in the DLion framework",
        header=["system", "API", "ours (LoC)", "paper (LoC)"],
    )
    for system, apis in table1_rows().items():
        for api, loc in apis.items():
            res.rows.append([system, api, loc, paper.get(system, {}).get(api)])
    res.notes.append(
        "paper counts the *changed* lines against its TF prototype; we count "
        "executable lines of the plugin method bodies — same order of magnitude"
    )
    return res


def table2() -> FigureResult:
    """Table 2: measured WAN bandwidth between six Amazon regions."""
    res = FigureResult(
        figure="Table 2",
        title="Inter-region bandwidth (Mbps) used for WAN emulation",
        header=["from \\ to"] + [r[:3] for r in AWS_REGIONS],
    )
    for i, region in enumerate(AWS_REGIONS):
        res.rows.append(
            [region] + [int(AWS_REGION_BANDWIDTH[i][j]) if i != j else "-" for j in range(6)]
        )
    return res


def table3() -> FigureResult:
    """Table 3: the emulated micro-cloud environments."""
    res = FigureResult(
        figure="Table 3",
        title="Emulation details for micro-cloud environments",
        header=["environment", "platform", "computation", "network (Mbps)"],
    )
    for env in ENVIRONMENTS.values():
        if env.dynamic:
            res.rows.append([env.name, env.platform, " -> ".join(env.phases), "(phased)"])
        else:
            res.rows.append(
                [
                    env.name,
                    env.platform,
                    "/".join(str(int(c)) for c in env.cores),
                    "/".join(str(int(b)) for b in env.bandwidth),
                ]
            )
    return res


# ----------------------------------------------------------------------
# Exploratory figures (§3)
# ----------------------------------------------------------------------
def fig05() -> FigureResult:
    """Fig. 5: accuracy after 30 epochs vs. the epoch GBS doubling starts."""
    workload = cpu_workload()
    epochs = 30.0  # the paper's fixed 30-epoch budget
    res = FigureResult(
        figure="Fig. 5",
        title="Final accuracy vs. GBS-doubling start epoch (early doubling hurts)",
        header=["doubling start epoch", "accuracy", "final GBS"],
    )
    sweep: list[float | None] = [0.0, 1.0, 2.0, 4.0, 8.0, None]
    for start in sweep:
        if start is None:
            gbs = GbsConfig(enabled=False)
        else:
            gbs = GbsConfig(
                warmup_cap_frac=1e-6,  # skip warm-up: pure doubling
                speedup_factor=2.0,
                start_epoch=start,
                min_epochs_between_updates=1.0,
                update_period_s=2.0,
            )
        overrides = dict(
            gbs=gbs,
            lbs=LbsConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            maxn=MaxNConfig(fixed_n=100.0),
            weighted_update=False,
            # An easier task than the system-comparison runs: the paper's
            # Fig. 5 curves have plateaued by 30 epochs, so the model must
            # be able to converge within the epoch budget — otherwise
            # every GBS increase just means fewer updates and the sweep
            # conflates convergence speed with the early-doubling penalty.
            dataset_kwargs={"noise": 1.2},
            lr=0.05,
        )
        accs, final_gbs = [], None
        for seed in bench_seeds():
            cfg = build_config("dlion", workload, **overrides)
            engine = TrainingEngine(cfg, _homo_topology(workload), seed=seed)
            r = engine.run_epochs(epochs, max_time=20_000.0)
            accs.append(r.final_mean_accuracy())
            final_gbs = int(r.gbs.values[-1])
        mean, _ = mean_and_ci95(accs)
        res.rows.append(["never" if start is None else start, mean, final_gbs])
    res.notes.append("paper finding: doubling at epoch 0/1 loses accuracy; >=2 is safe")
    return res


def fig06() -> FigureResult:
    """Fig. 6: LBS per worker as GBS grows, hetero cores 24/24/12/12/4/4."""
    workload = cpu_workload()
    topo = ClusterTopology.build(
        cores=[24, 24, 12, 12, 4, 4],
        bandwidth=[workload.wire_scale() * 1000.0] * 6,
        per_core_rate=workload.per_unit_rate,
        overhead=workload.overhead,
    )
    cfg = build_config("dlion", workload)
    horizon = 1000.0 * workload.time_scale
    r = TrainingEngine(cfg, topo, seed=0).run(horizon)
    res = FigureResult(
        figure="Fig. 6",
        title="LBS adaptation under GBS growth (cores 24/24/12/12/4/4)",
        header=["time (s)"] + [f"LBS w{i}" for i in range(6)] + ["GBS"],
    )
    for frac in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        t = horizon * frac
        lbs = [int(s.value_at(t)) for s in r.lbs]
        res.rows.append([round(t, 1)] + lbs + [int(r.gbs.value_at(t))])
    res.notes.append("powerful workers hold proportionally larger LBS; sum tracks GBS")
    return res


def fig07() -> FigureResult:
    """Fig. 7: converged accuracy of Max N for different N."""
    res = FigureResult(
        figure="Fig. 7",
        title="Model accuracy vs. Max N's N (larger N = more gradient data)",
        header=["N", "accuracy", "ci95"],
    )
    for n in (0.1, 1.0, 10.0, 50.0, 100.0):
        overrides = dict(maxn=MaxNConfig(fixed_n=n), dkt=DktConfig(enabled=False))
        runs = run_seeds("Homo A", "dlion", config_overrides=overrides)
        mean, ci = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        res.rows.append([n, mean, ci])
    res.notes.append("paper finding: accuracy increases with N")
    return res


def fig08() -> FigureResult:
    """Fig. 8: per-link partial-gradient sizes under different bandwidths."""
    runs = run_seeds("Hetero NET A", "dlion")
    r = runs[0]
    env = get_environment("Hetero NET A")
    res = FigureResult(
        figure="Fig. 8",
        title="Partial gradient size per link (worker 0 to fast vs slow peers)",
        header=["link", "bandwidth (paper Mbps)", "mean entries/msg", "mean chosen N"],
    )
    for dst in (1, 2, 4):
        entries = r.link_entries.get((0, dst))
        chosen = r.link_chosen_n.get((0, dst))
        res.rows.append(
            [
                f"0->{dst}",
                int(min(env.bandwidth[0], env.bandwidth[dst])),
                float(np.mean(entries.values)) if entries else None,
                float(np.mean(chosen.values)) if chosen else None,
            ]
        )
    res.notes.append("slower links carry fewer gradient entries (smaller fitted N)")
    return res


def _scaled_period(paper_iters: int, workload) -> int:
    return max(2, int(round(paper_iters * workload.time_scale)))


def fig09a() -> FigureResult:
    """Fig. 9a: time to 70% accuracy vs. DKT period."""
    workload = cpu_workload()
    res = FigureResult(
        figure="Fig. 9a",
        title="Training time to 70% accuracy vs. weight-exchange period",
        header=["DKT period (iters)", "time to 70% (s)", "accuracy at horizon"],
    )
    variants: list[tuple[str, DktConfig]] = []
    for paper_period in (10, 100, 1000):
        p = _scaled_period(paper_period, workload)
        variants.append((str(paper_period), DktConfig(period_iters=p)))
    # "frequent at the early learning phase": short period early, then 100.
    variants.append(
        (
            "early-frequent",
            DktConfig(
                period_iters=_scaled_period(100, workload),
                early_period_iters=_scaled_period(10, workload),
                early_until_iter=_scaled_period(400, workload),
            ),
        )
    )
    for label, dkt in variants:
        runs = run_seeds("Homo B", "dlion", config_overrides={"dkt": dkt})
        times = [r.time_to_accuracy(TARGET_ACCURACY) for r in runs]
        times = [t for t in times if t is not None]
        t_mean = float(np.mean(times)) if times else None
        acc, _ = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        res.rows.append([label, t_mean, acc])
    res.notes.append("paper finding: moderate period (100) fastest; early-frequent comparable")
    return res


def fig09b() -> FigureResult:
    """Fig. 9b: whom to send — No_DKT vs Best2worst vs Best2all."""
    res = FigureResult(
        figure="Fig. 9b",
        title="DKT whom-to-send variants (accuracy at the horizon)",
        header=["variant", "accuracy", "ci95"],
    )
    cases = [
        ("No_DKT", {"dkt": DktConfig(enabled=False)}),
        ("DKT_Best2worst", {"dkt": DktConfig(period_iters=_scaled_period(100, cpu_workload()), whom="worst")}),
        ("DKT_Best2all", {"dkt": DktConfig(period_iters=_scaled_period(100, cpu_workload()), whom="all")}),
    ]
    for label, ov in cases:
        runs = run_seeds("Homo B", "dlion", config_overrides=ov)
        mean, ci = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        res.rows.append([label, mean, ci])
    res.notes.append("paper finding: Best2all highest, No_DKT lowest")
    return res


def fig09c() -> FigureResult:
    """Fig. 9c: merge ratio λ sweep."""
    workload = cpu_workload()
    res = FigureResult(
        figure="Fig. 9c",
        title="DKT merge ratio lambda (accuracy at the horizon)",
        header=["lambda", "accuracy", "ci95"],
    )
    for lam in (0.0, 0.25, 0.5, 0.75, 1.0):
        if lam == 0.0:
            ov = {"dkt": DktConfig(enabled=False)}
        else:
            ov = {"dkt": DktConfig(period_iters=_scaled_period(100, workload), merge_lambda=lam)}
        runs = run_seeds("Homo B", "dlion", config_overrides=ov)
        mean, ci = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        res.rows.append([lam, mean, ci])
    res.notes.append("lambda=0 is No_DKT; intermediate lambda best at the end")
    return res


# ----------------------------------------------------------------------
# Evaluation figures (§5)
# ----------------------------------------------------------------------
def fig11() -> FigureResult:
    """Fig. 11: system heterogeneity on the CPU cluster (5 systems x 3 envs)."""
    return _system_comparison(
        "Fig. 11",
        "System heterogeneity, CPU cluster (accuracy within the time budget)",
        ("Homo A", "Hetero SYS A", "Hetero SYS B"),
    )


def fig12() -> FigureResult:
    """Fig. 12: GPU-cluster robustness in the severe network-bottleneck regime."""
    return _system_comparison(
        "Fig. 12",
        "GPU cluster robustness (MobileNet-class workload, network-bound)",
        ("Homo C", "Hetero SYS C"),
    )


def fig13() -> FigureResult:
    """Fig. 13: compute-only heterogeneity (network homogeneous)."""
    return _system_comparison(
        "Fig. 13",
        "Heterogeneous compute resources (network homogeneous)",
        ("Homo A", "Hetero CPU A", "Hetero CPU B"),
    )


def fig14() -> FigureResult:
    """Fig. 14: dynamic batching / weighted update ablation (time to 70%)."""
    res = FigureResult(
        figure="Fig. 14",
        title="Ablation: DLion-no-DBWU vs DLion-no-WU vs DLion (time to 70%)",
        header=["environment", "variant", "time to 70% (s)", "accuracy at horizon"],
    )
    for env in ("Homo A", "Hetero CPU A", "Hetero CPU B"):
        for variant in ("dlion-no-dbwu", "dlion-no-wu", "dlion"):
            runs = run_seeds(env, variant)
            times = [r.time_to_accuracy(TARGET_ACCURACY) for r in runs]
            times = [t for t in times if t is not None]
            t_mean = float(np.mean(times)) if times else None
            acc, _ = mean_and_ci95([r.final_mean_accuracy() for r in runs])
            res.rows.append([env, variant, t_mean, acc])
    res.notes.append("paper: DB speeds up everywhere; WU adds ~12-13% in hetero envs")
    return res


def fig15() -> FigureResult:
    """Fig. 15: network-only heterogeneity (compute homogeneous)."""
    return _system_comparison(
        "Fig. 15",
        "Heterogeneous network resources (compute homogeneous)",
        ("Homo A", "Homo B", "Hetero NET A"),
    )


def fig16() -> FigureResult:
    """Fig. 16: the Max-10 algorithm alone vs the four existing systems."""
    return _system_comparison(
        "Fig. 16",
        "Max10 alone (no other DLion techniques) vs existing systems",
        ("Homo A", "Hetero SYS A"),
        systems=("dlion-max10", "baseline", "ako", "gaia", "hop"),
    )


def fig17() -> FigureResult:
    """Fig. 17: per-worker accuracy deviation in straggler environments."""
    res = _system_comparison(
        "Fig. 17",
        "Deviation of model accuracy among workers (std-dev, lower is better)",
        ("Hetero SYS B", "Hetero NET B", "Hetero CPU B"),
        metric="deviation",
    )
    res.notes.append("paper: DLion smallest deviation (DKT synchronizes replicas)")
    return res


def fig18() -> FigureResult:
    """Fig. 18: dynamically changing resources (Dynamic SYS A/B)."""
    res = _system_comparison(
        "Fig. 18",
        "Dynamically changing resources (highest accuracy)",
        ("Dynamic SYS A", "Dynamic SYS B"),
    )
    res.notes.append("three 500 s phases (scaled); A front-loads resources, B back-loads")
    return res


def fig19() -> FigureResult:
    """Fig. 19: LBS trajectories under changing compute, GBS fixed at 192."""
    workload = cpu_workload()
    ts = workload.time_scale
    schedule = [
        (0.0, (24, 24, 24, 24, 24, 24)),
        (100.0 * ts, (24, 24, 12, 12, 4, 4)),
        (300.0 * ts, (12, 12, 12, 12, 12, 12)),
        (500.0 * ts, (4, 4, 12, 12, 24, 24)),
    ]
    cores = [
        PiecewiseTrace([(t, row[i]) for t, row in schedule]) for i in range(6)
    ]
    topo = ClusterTopology(
        compute=[
            ComputeProfile(c, per_core_rate=workload.per_unit_rate, overhead=workload.overhead)
            for c in cores
        ],
        network=BandwidthMatrix.from_worker_capacity(
            [workload.wire_scale() * 1000.0] * 6
        ),
    )
    cfg = build_config(
        "dlion",
        workload,
        gbs=GbsConfig(enabled=False),  # GBS pinned to 192 like the paper
        lbs=LbsConfig(profile_period_iters=10),
        dkt=DktConfig(enabled=False),
    )
    horizon = 800.0 * ts
    r = TrainingEngine(cfg, topo, seed=0).run(horizon)
    res = FigureResult(
        figure="Fig. 19",
        title="LBS adaptation to changing cores (GBS fixed at 192)",
        header=["time (s)", "cores"] + [f"LBS w{i}" for i in range(6)],
    )
    probes = [50, 200, 400, 600, 780]
    for paper_t in probes:
        t = paper_t * ts
        row_cores = "/".join(
            str(int(c.value_at(t))) for c in cores
        )
        res.rows.append([round(t, 1), row_cores] + [int(s.value_at(t)) for s in r.lbs])
    res.notes.append("LBS follows each worker's available cores at that moment")
    return res


def fig20() -> FigureResult:
    """Fig. 20: partial gradient size tracking a bandwidth square wave."""
    workload = cpu_workload()
    ts = workload.time_scale
    ws = workload.wire_scale()
    horizon = 1000.0 * ts
    # 30 Mbps for 0-100 s and 600-1000 s, 100 Mbps in between (paper timing).
    trace = PiecewiseTrace(
        [(0.0, 30.0 * ws), (100.0 * ts, 100.0 * ws), (600.0 * ts, 30.0 * ws)]
    )
    spec = [[trace for _ in range(6)] for _ in range(6)]
    topo = ClusterTopology(
        compute=[
            ComputeProfile(24, per_core_rate=workload.per_unit_rate, overhead=workload.overhead)
            for _ in range(6)
        ],
        network=BandwidthMatrix(spec),
    )
    # GBS pinned: otherwise growing batches lengthen iterations and raise
    # the per-iteration byte budget, confounding the bandwidth effect.
    cfg = build_config(
        "dlion", workload, dkt=DktConfig(enabled=False), gbs=GbsConfig(enabled=False)
    )
    r = TrainingEngine(cfg, topo, seed=0).run(horizon)
    entries = r.link_entries[(0, 1)]
    res = FigureResult(
        figure="Fig. 20",
        title="Partial gradient entries per message vs. bandwidth square wave",
        header=["window (s)", "bandwidth (paper Mbps)", "mean entries/msg"],
    )
    windows = [(0, 100), (100, 600), (600, 1000)]
    times, values = entries.as_arrays()
    for a, b in windows:
        lo, hi = a * ts, b * ts
        mask = (times >= lo) & (times < hi)
        mean_e = float(values[mask].mean()) if mask.any() else None
        res.rows.append([f"{a}-{b}", 30 if a in (0, 600) else 100, mean_e])
    res.notes.append("entry count rises and falls with the available bandwidth")
    return res


def fig21() -> FigureResult:
    """Fig. 21: converged accuracy and time to convergence, Homo A."""
    workload = cpu_workload()
    res = FigureResult(
        figure="Fig. 21",
        title="Highest accuracy and training time until full convergence (Homo A)",
        header=["system", "converged accuracy", "time to converge (s)"],
    )
    max_horizon = workload.horizon() * 2.0
    env = get_environment("Homo A")
    for system in SYSTEMS:
        accs, times = [], []
        for seed in bench_seeds():
            cfg = build_config(system, workload)
            engine = TrainingEngine(cfg, build_topology(env, workload), seed=seed)
            engine.advance_to(workload.horizon() * 0.25)
            conv = None
            while engine.clock.now < max_horizon:
                conv = detect_convergence(
                    _mean_series(engine), window=8, tolerance=0.004
                )
                if conv is not None:
                    break
                engine.advance_to(engine.clock.now + workload.horizon() * 0.1)
            r = engine.finalize()
            if conv is None:
                conv = (r.horizon, r.final_mean_accuracy())
            times.append(conv[0])
            accs.append(max(conv[1], r.final_mean_accuracy()))
        res.rows.append([system, float(np.mean(accs)), float(np.mean(times))])
    res.notes.append("paper: DLion reaches the highest converged accuracy (via DKT)")
    return res


def _mean_series(engine: TrainingEngine):
    return engine.result.mean_accuracy_series()
