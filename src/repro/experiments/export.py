"""Export run results to JSON / CSV.

``result_to_dict`` flattens a :class:`~repro.core.engine.RunResult`
into plain JSON-serializable structures; ``write_json`` and
``write_accuracy_csv`` persist them. Used by the CLI's ``--output``
flag and available programmatically.
"""

from __future__ import annotations

import csv
import json
import pathlib

from repro.core.engine import RunResult
from repro.utils.metrics import TimeSeries

__all__ = ["result_to_dict", "write_json", "write_accuracy_csv"]


def _series(series: TimeSeries) -> dict:
    return {"times": list(series.times), "values": list(series.values)}


def result_to_dict(result: RunResult) -> dict:
    """A JSON-serializable snapshot of everything the run recorded."""
    return {
        "n_workers": result.n_workers,
        "horizon": result.horizon,
        "epochs": result.epochs,
        "events": result.events,
        "iterations": list(result.iterations),
        "dkt_merges": result.dkt_merges,
        "final_mean_accuracy": result.final_mean_accuracy(),
        "accuracy_deviation": result.accuracy_deviation_at(result.horizon),
        "time_to_70": result.time_to_accuracy(0.70),
        "accuracy": [_series(s) for s in result.accuracy],
        "loss": [_series(s) for s in result.loss],
        "lbs": [_series(s) for s in result.lbs],
        "gbs": _series(result.gbs),
        "active_workers": _series(result.active_workers),
        "compute_time": list(result.compute_time),
        "wait_time": list(result.wait_time),
        "link_bytes": {
            f"{src}->{dst}": nbytes
            for (src, dst), nbytes in sorted(result.link_bytes.items())
        },
    }


def write_json(result: RunResult, path: str | pathlib.Path) -> None:
    """Dump the full result snapshot as JSON."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def write_accuracy_csv(result: RunResult, path: str | pathlib.Path) -> None:
    """Per-worker accuracy samples as long-format CSV
    (columns: worker, time_s, accuracy)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["worker", "time_s", "accuracy"])
        for worker, series in enumerate(result.accuracy):
            for t, v in zip(series.times, series.values):
                writer.writerow([worker, f"{t:.3f}", f"{v:.4f}"])
