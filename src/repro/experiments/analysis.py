"""Run analysis: summaries and statistical comparisons.

``summarize`` condenses a :class:`~repro.core.engine.RunResult` into the
quantities the paper discusses (throughput, communication volume,
accuracy metrics); ``welch_comparison`` applies Welch's t-test across
seeds to say whether one system's accuracy advantage over another is
statistically meaningful — the honest version of eyeballing overlapping
error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.core.engine import RunResult

__all__ = ["RunSummary", "summarize", "welch_comparison", "link_utilization"]


@dataclass(frozen=True)
class RunSummary:
    """Headline numbers for one run."""

    horizon: float
    final_accuracy: float
    accuracy_deviation: float
    time_to_70: float | None
    total_iterations: int
    iterations_per_second: float
    epochs: float
    total_megabytes: float
    megabytes_per_second: float
    dkt_merges: int

    def rows(self) -> list[list]:
        """The summary as printable (label, value) rows."""
        return [
            ["final accuracy", self.final_accuracy],
            ["worker accuracy std", self.accuracy_deviation],
            ["time to 70% (s)", self.time_to_70],
            ["iterations (total)", self.total_iterations],
            ["iterations / s", self.iterations_per_second],
            ["epochs", self.epochs],
            ["wire volume (MB)", self.total_megabytes],
            ["wire rate (MB/s)", self.megabytes_per_second],
            ["DKT merges", self.dkt_merges],
        ]


def summarize(result: RunResult, *, target: float = 0.70) -> RunSummary:
    """Condense a run into its headline numbers."""
    horizon = max(result.horizon, 1e-9)
    total_iters = int(sum(result.iterations))
    total_mb = sum(result.link_bytes.values()) / 1e6
    return RunSummary(
        horizon=result.horizon,
        final_accuracy=result.final_mean_accuracy(),
        accuracy_deviation=result.accuracy_deviation_at(result.horizon),
        time_to_70=result.time_to_accuracy(target),
        total_iterations=total_iters,
        iterations_per_second=total_iters / horizon,
        epochs=result.epochs,
        total_megabytes=total_mb,
        megabytes_per_second=total_mb / horizon,
        dkt_merges=result.dkt_merges,
    )


def link_utilization(result: RunResult) -> dict[tuple[int, int], float]:
    """Average MB/s carried per directed link over the run."""
    horizon = max(result.horizon, 1e-9)
    return {
        link: nbytes / 1e6 / horizon for link, nbytes in result.link_bytes.items()
    }


@dataclass(frozen=True)
class WelchComparison:
    """Result of a two-sample accuracy comparison."""

    mean_a: float
    mean_b: float
    t_statistic: float
    p_value: float

    @property
    def significant_at_05(self) -> bool:
        return self.p_value < 0.05


def welch_comparison(
    accuracies_a, accuracies_b
) -> WelchComparison:
    """Welch's unequal-variance t-test on per-seed final accuracies.

    Degenerate inputs (single seeds or zero variance in both samples)
    yield ``p = 1.0`` when the means coincide and ``p = 0.0`` when they
    cannot (both-zero-variance, different means) — the limits of the
    test, stated rather than crashed on.
    """
    a = np.asarray(list(accuracies_a), dtype=float)
    b = np.asarray(list(accuracies_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("need at least one sample on each side")
    if a.size == 1 and b.size == 1:
        same = math.isclose(float(a[0]), float(b[0]))
        return WelchComparison(float(a[0]), float(b[0]), 0.0 if same else math.inf,
                               1.0 if same else 0.0)
    if a.std() == 0.0 and b.std() == 0.0:
        same = math.isclose(float(a.mean()), float(b.mean()))
        return WelchComparison(float(a.mean()), float(b.mean()),
                               0.0 if same else math.inf, 1.0 if same else 0.0)
    t, p = scipy_stats.ttest_ind(a, b, equal_var=False)
    return WelchComparison(float(a.mean()), float(b.mean()), float(t), float(p))
