"""Extension studies beyond the paper's figures.

The paper calls out two natural extensions that this reproduction
implements and measures:

* **selector ablation** — §6 notes that gradient-compression algorithms
  "can be placed in the data quality assurance module"; we swap Max N
  for top-k, random-k, and absolute-threshold selection and rerun the
  heterogeneous-network experiment.
* **technique ablation** — each of DLion's three techniques removed one
  at a time (weighted dynamic batching is already ablated by Fig. 14;
  this adds the DKT and Max-N axes) in one heterogeneous environment.
"""

from __future__ import annotations

from repro.cluster.membership import MembershipSchedule
from repro.core.config import DktConfig, MaxNConfig
from repro.core.engine import TrainingEngine
from repro.experiments.environments import get_environment
from repro.experiments.reporting import FigureResult
from repro.experiments.runner import (
    bench_seeds,
    build_config,
    build_topology,
    cpu_workload,
    run_seeds,
)
from repro.utils.metrics import mean_and_ci95

__all__ = [
    "ablation_selectors",
    "ablation_techniques",
    "ablation_churn",
    "ablation_network_model",
    "ablation_overlay",
]


def ablation_selectors(environment: str = "Hetero NET A") -> FigureResult:
    """Max N vs top-k vs random-k vs threshold in a constrained WAN."""
    res = FigureResult(
        figure="Ablation A",
        title=f"Data-quality-assurance selector ablation ({environment})",
        header=["selector", "accuracy", "ci95"],
    )
    for selector in ("maxn", "topk", "randomk", "threshold"):
        overrides = {"maxn": MaxNConfig(selector=selector)}
        runs = run_seeds(environment, "dlion", config_overrides=overrides)
        mean, ci = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        res.rows.append([selector, mean, ci])
    res.notes.append(
        "magnitude-aware rules (maxn/topk) should beat randomk; threshold "
        "is calibration-sensitive"
    )
    return res


def ablation_techniques(environment: str = "Hetero SYS A") -> FigureResult:
    """Remove each DLion technique in turn."""
    res = FigureResult(
        figure="Ablation B",
        title=f"DLion technique ablation ({environment})",
        header=["variant", "accuracy", "ci95", "MB on wire"],
    )
    cases = [
        ("dlion (full)", "dlion", {}),
        ("no weighted update", "dlion-no-wu", {}),
        ("no dynamic batching", "dlion-no-dbwu", {}),
        ("no DKT", "dlion-no-dkt", {}),
        ("no Max-N (send all)", "dlion", {"maxn": MaxNConfig(fixed_n=100.0)}),
        ("frequent DKT (period 10)", "dlion", {"dkt": DktConfig(period_iters=10)}),
    ]
    for label, variant, overrides in cases:
        runs = run_seeds(environment, variant, config_overrides=overrides)
        mean, ci = mean_and_ci95([r.final_mean_accuracy() for r in runs])
        mb = sum(sum(r.link_bytes.values()) for r in runs) / len(runs) / 1e6
        res.rows.append([label, mean, ci, round(mb, 1)])
    res.notes.append("every removed technique should cost accuracy or bandwidth")
    return res


def ablation_churn(environment: str = "Hetero SYS A") -> FigureResult:
    """Elastic-membership extension: training under worker churn.

    The two strongest workers leave for the middle third of the run and
    rejoin (bootstrapping weights via a DKT pull). Compared against the
    same systems with a stable membership.
    """
    workload = cpu_workload()
    horizon = workload.horizon()
    env = get_environment(environment)
    schedule = MembershipSchedule(
        [
            (horizon / 3, 0, "leave"),
            (2 * horizon / 3, 0, "join"),
            (horizon / 3, 1, "leave"),
            (2 * horizon / 3, 1, "join"),
        ],
        n_workers=6,
    )
    res = FigureResult(
        figure="Ablation C",
        title="Worker churn: two strongest workers offline for the middle third "
        f"({environment})",
        header=["system", "membership", "accuracy", "ci95"],
    )
    for system in ("dlion", "baseline", "ako"):
        for label, member in (("stable", None), ("churn", schedule)):
            accs = []
            for seed in bench_seeds():
                cfg = build_config(system, workload)
                engine = TrainingEngine(
                    cfg, build_topology(env, workload), seed=seed, membership=member
                )
                accs.append(engine.run(horizon).final_mean_accuracy())
            mean, ci = mean_and_ci95(accs)
            res.rows.append([system, label, mean, ci])
    res.notes.append(
        "DLion's LBS reallocation + DKT join bootstrap should shrink the "
        "churn penalty relative to the static systems"
    )
    return res


def ablation_network_model(environment: str = "Hetero NET A") -> FigureResult:
    """Per-link vs shared-egress (NIC contention) network models.

    The paper's ``tc`` emulation shapes per-worker interfaces, which the
    default per-link model approximates with independent pipes. The
    shared-egress model serializes each worker's outgoing transfers
    through one NIC queue — a harsher but arguably more physical
    assumption. Whole-gradient systems (which broadcast n−1 full copies
    per iteration) should suffer most under it; DLion's budget fit sees
    only the per-link estimate, so its payloads overshoot under
    contention yet the Max-N floor keeps it training.
    """
    from repro.cluster.topology import ClusterTopology
    from repro.core.engine import TrainingEngine

    workload = cpu_workload()
    env = get_environment(environment)
    res = FigureResult(
        figure="Ablation D",
        title=f"Network model: per-link vs shared NIC egress ({environment})",
        header=["system", "link model", "accuracy", "ci95"],
    )
    cases = [
        ("dlion", "per-link", False, {}),
        ("dlion", "shared-egress", True, {}),
        # DLion told about the sharing: each link claims 1/5 of the NIC.
        ("dlion", "shared-egress (budget/5)", True,
         {"maxn": MaxNConfig(budget_fraction=0.2)}),
        ("baseline", "per-link", False, {}),
        ("baseline", "shared-egress", True, {}),
        ("ako", "per-link", False, {}),
        ("ako", "shared-egress", True, {}),
    ]
    for system, label, shared, overrides in cases:
        accs = []
        for seed in bench_seeds():
            topo = ClusterTopology.build(
                cores=list(env.cores),
                bandwidth=[b * workload.wire_scale() for b in env.bandwidth],
                per_core_rate=workload.per_unit_rate,
                overhead=workload.overhead,
                shared_egress=shared,
            )
            cfg = build_config(system, workload, **overrides)
            accs.append(
                TrainingEngine(cfg, topo, seed=seed).run(workload.horizon())
                .final_mean_accuracy()
            )
        mean, ci = mean_and_ci95(accs)
        res.rows.append([system, label, mean, ci])
    res.notes.append(
        "NIC contention penalizes whole-gradient broadcast hardest; DLion "
        "recovers once its budget fit accounts for the sharing"
    )
    return res


def ablation_overlay(environment: str = "Homo B") -> FigureResult:
    """Partial exchange overlays: full mesh vs ring vs 3-regular vs star.

    Sparse overlays cut per-worker traffic (a ring sends to 2 peers, the
    mesh to 5) at the cost of slower information spread (graph diameter).
    In a bandwidth-constrained WAN the trade can go either way — the
    gossip-SGD question, asked inside DLion.
    """
    from repro.cluster.peergraph import PeerGraph
    from repro.cluster.topology import ClusterTopology
    from repro.core.engine import TrainingEngine

    workload = cpu_workload()
    env = get_environment(environment)
    overlays = [
        ("full mesh", PeerGraph.full_mesh(6)),
        ("3-regular", PeerGraph.k_regular(6, 3, seed=0)),
        ("ring", PeerGraph.ring(6)),
        ("star", PeerGraph.star(6)),
    ]
    res = FigureResult(
        figure="Ablation E",
        title=f"Exchange overlay for DLion ({environment})",
        header=["overlay", "edges", "diameter", "accuracy", "ci95", "MB on wire"],
    )
    for label, overlay in overlays:
        accs, mbs = [], []
        for seed in bench_seeds():
            topo = ClusterTopology.build(
                cores=list(env.cores),
                bandwidth=[b * workload.wire_scale() for b in env.bandwidth],
                per_core_rate=workload.per_unit_rate,
                overhead=workload.overhead,
            )
            cfg = build_config("dlion", workload)
            r = TrainingEngine(
                cfg, topo, seed=seed, peer_graph=overlay
            ).run(workload.horizon())
            accs.append(r.final_mean_accuracy())
            mbs.append(sum(r.link_bytes.values()) / 1e6)
        mean, ci = mean_and_ci95(accs)
        res.rows.append(
            [label, overlay.edges, overlay.diameter(), mean, ci,
             round(sum(mbs) / len(mbs), 1)]
        )
    res.notes.append("sparser overlays trade wire volume against mixing speed")
    return res
