"""Installation self-test: miniature versions of the headline claims.

``repro-dlion selftest`` runs in under a minute and checks that the
install behaves — substrate correctness (gradients, budget fit),
determinism, and the central systems result (DLion beats the lockstep
baseline on a heterogeneous cluster). Each check prints PASS/FAIL; the
command exits non-zero if any fail.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_selftest", "CHECKS"]


def _tiny_config(system: str):
    from repro.core.config import (
        DktConfig,
        GbsConfig,
        LbsConfig,
        MaxNConfig,
        TrainConfig,
    )

    base = dict(
        model="mlp",
        model_kwargs={"in_dim": 576, "hidden": (48,)},
        train_size=900,
        test_size=200,
        eval_subset=200,
        dataset_kwargs={"noise": 1.2},
        lr=0.08,
        initial_lbs=16,
        eval_period_iters=10,
        lbs=LbsConfig(probe_batches=(4, 8, 16), probe_repeats=1, profile_period_iters=20),
        dkt=DktConfig(period_iters=15),
        gbs=GbsConfig(update_period_s=10.0),
        system=system,
    )
    if system != "dlion":
        base.update(
            gbs=GbsConfig(enabled=False),
            lbs=LbsConfig(enabled=False),
            maxn=MaxNConfig(enabled=False),
            dkt=DktConfig(enabled=False),
            weighted_update=False,
        )
    return TrainConfig(**base)


def _hetero_topology():
    from repro.cluster.topology import ClusterTopology

    return ClusterTopology.build(
        cores=[24, 24, 12, 12, 6, 6],
        bandwidth=[5.0, 5.0, 3.5, 3.5, 2.0, 2.0],
        per_core_rate=8.0,
        overhead=0.05,
    )


def check_gradients() -> str | None:
    """Layer backprop vs numerical differentiation."""
    from repro.nn.gradcheck import max_relative_grad_error
    from repro.nn.models import cipher_cnn

    rng = np.random.default_rng(0)
    model = cipher_cnn(rng, image_size=8, kernels=(3, 4, 5), hidden=16)
    x = rng.normal(size=(3, 1, 8, 8))
    y = rng.integers(0, 10, size=3)
    err = max_relative_grad_error(model, x, y)
    if err > 2e-4:
        return f"gradient error {err:.2e} exceeds 2e-4"
    return None


def check_budget_fit() -> str | None:
    """Max-N budget fits never exceed the byte budget."""
    from repro.cluster.messages import sparse_payload_bytes
    from repro.core.maxn import select_payload
    from repro.core.transmission import fit_n_to_budget

    rng = np.random.default_rng(1)
    grads = {"a": rng.normal(size=5000), "b": rng.normal(size=333)}
    for budget in (500.0, 5_000.0, 40_000.0):
        n = fit_n_to_budget(grads, budget)
        if n > 0.85:
            size = sparse_payload_bytes(select_payload(grads, n))
            if size > budget:
                return f"payload {size} B exceeds budget {budget} B at N={n:.2f}"
    return None


def check_determinism() -> str | None:
    """Identical (config, topology, seed) => identical results."""
    from repro.core.engine import TrainingEngine

    runs = []
    for _ in range(2):
        engine = TrainingEngine(_tiny_config("dlion"), _hetero_topology(), seed=7)
        runs.append(engine.run(30.0))
    a, b = runs
    if a.iterations != b.iterations:
        return f"iteration counts differ: {a.iterations} vs {b.iterations}"
    if a.loss[0].values != b.loss[0].values:
        return "loss series differ between identical runs"
    return None


def check_lbs_proportionality() -> str | None:
    """The LBS controller gives powerful workers larger batches."""
    from repro.core.engine import TrainingEngine

    res = TrainingEngine(_tiny_config("dlion"), _hetero_topology(), seed=0).run(40.0)
    final = [s.values[-1] for s in res.lbs]
    if not (final[0] > final[2] > final[4]):
        return f"LBS not ordered by compute power: {final}"
    return None


def check_dlion_beats_baseline() -> str | None:
    """The headline: DLion out-trains the lockstep baseline on a
    heterogeneous cluster within the same budget."""
    from repro.core.engine import TrainingEngine

    dlion = TrainingEngine(_tiny_config("dlion"), _hetero_topology(), seed=0).run(90.0)
    base = TrainingEngine(_tiny_config("baseline"), _hetero_topology(), seed=0).run(90.0)
    if dlion.final_mean_accuracy() <= base.final_mean_accuracy():
        return (
            f"dlion {dlion.final_mean_accuracy():.3f} did not beat "
            f"baseline {base.final_mean_accuracy():.3f}"
        )
    return None


CHECKS = [
    ("gradients vs numerical diff", check_gradients),
    ("Max-N budget fit invariant", check_budget_fit),
    ("bit determinism", check_determinism),
    ("LBS proportional to compute", check_lbs_proportionality),
    ("DLion beats Baseline (hetero)", check_dlion_beats_baseline),
]


def run_selftest(*, verbose: bool = True) -> int:
    """Run all checks; returns the number of failures."""
    failures = 0
    for name, check in CHECKS:
        try:
            problem = check()
        except Exception as exc:  # a crash is a failure, not an abort
            problem = f"raised {type(exc).__name__}: {exc}"
        status = "PASS" if problem is None else f"FAIL ({problem})"
        if verbose:
            print(f"  [{'ok' if problem is None else '!!'}] {name}: {status}")
        if problem is not None:
            failures += 1
    if verbose:
        total = len(CHECKS)
        print(f"{total - failures}/{total} checks passed")
    return failures
