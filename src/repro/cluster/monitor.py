"""Network resource monitor.

Paper §4.1: "Network resource monitor returns available network
bandwidths of individual connections to neighbor workers upon the
request by the partial gradient generation module." Measurements carry
optional multiplicative noise so the transmission-speed-assurance module
is exercised with realistic imperfect estimates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.network import BandwidthMatrix

__all__ = ["NetworkResourceMonitor"]


class NetworkResourceMonitor:
    """Bandwidth estimates for one worker's outgoing links."""

    def __init__(
        self,
        worker: int,
        matrix: BandwidthMatrix,
        *,
        noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if noise > 0 and rng is None:
            # Silently returning noiseless estimates would defeat the
            # point of configuring noise; fail at construction instead.
            raise ValueError("noise > 0 requires an rng")
        self.worker = worker
        self.matrix = matrix
        self.noise = noise
        self.rng = rng

    def available_bandwidth(self, dst: int, t: float) -> float:
        """Estimated Mbps on the link ``worker -> dst`` at time ``t``."""
        bw = self.matrix.bandwidth_at(self.worker, dst, t)
        if self.noise > 0:
            bw *= math.exp(self.rng.normal(0.0, self.noise))
        return bw

    def snapshot(self, t: float) -> dict[int, float]:
        """Estimates for every neighbour at once."""
        return {
            link.dst: self.available_bandwidth(link.dst, t)
            for link in self.matrix.out_links(self.worker)
        }
