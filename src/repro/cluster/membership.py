"""Cluster membership schedules — the elastic-cluster extension.

The paper scopes itself to a fixed worker set ("we do not focus on
elastic cluster", §3.2); micro-clouds in practice lose and regain
workers. A :class:`MembershipSchedule` scripts that churn: a list of
``(time, worker, action)`` events with ``action`` either ``"leave"`` or
``"join"``. The engine replays the schedule, and the rest of the system
adapts through the same mechanisms the paper built for *resource*
dynamism: LBS reallocation over the surviving RCP table, sync policies
over the active peer set, and a DKT-style weight pull to bootstrap a
rejoining worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["MembershipEvent", "MembershipSchedule"]

_ACTIONS = ("leave", "join")


@dataclass(frozen=True)
class MembershipEvent:
    time: float
    worker: int
    action: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.worker < 0:
            raise ValueError("worker id must be non-negative")
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}")


class MembershipSchedule:
    """A validated, time-ordered churn script.

    Validation enforces a consistent narrative per worker: the first
    event must be a ``leave`` (everyone starts active), and events must
    alternate leave/join at strictly increasing times.
    """

    def __init__(self, events: Iterable[MembershipEvent | tuple], n_workers: int):
        if n_workers < 2:
            raise ValueError("need at least two workers")
        normalized: list[MembershipEvent] = []
        for ev in events:
            if not isinstance(ev, MembershipEvent):
                ev = MembershipEvent(*ev)
            normalized.append(ev)
        normalized.sort(key=lambda e: (e.time, e.worker))
        state: dict[int, bool] = {}
        last_time: dict[int, float] = {}
        for ev in normalized:
            if ev.worker >= n_workers:
                raise ValueError(f"worker {ev.worker} out of range")
            active = state.get(ev.worker, True)
            if ev.action == "leave" and not active:
                raise ValueError(f"worker {ev.worker} leaves twice")
            if ev.action == "join" and active:
                raise ValueError(f"worker {ev.worker} joins while active")
            if ev.worker in last_time and ev.time <= last_time[ev.worker]:
                raise ValueError(
                    f"events for worker {ev.worker} must have increasing times"
                )
            state[ev.worker] = ev.action == "join"
            last_time[ev.worker] = ev.time
        self.events = normalized
        self.n_workers = n_workers

    def active_at(self, t: float) -> set[int]:
        """The set of active workers at time ``t`` (events are inclusive)."""
        state = {w: True for w in range(self.n_workers)}
        for ev in self.events:
            if ev.time > t:
                break
            state[ev.worker] = ev.action == "join"
        return {w for w, a in state.items() if a}

    def min_active(self) -> int:
        """The smallest concurrent active count over the whole schedule."""
        lowest = self.n_workers
        for ev in self.events:
            lowest = min(lowest, len(self.active_at(ev.time)))
        return lowest

    def __len__(self) -> int:
        return len(self.events)
