"""Partial peer topologies — gossip-style exchange graphs.

The paper's workers exchange with *all* peers. Decentralized-SGD
practice often restricts exchange to a sparse overlay (ring, k-regular,
star) to cap per-worker communication. A :class:`PeerGraph` is that
overlay: the engine only routes gradients, loss shares, and RCP shares
along its edges, so DKT and the controllers automatically operate on
each worker's neighbourhood.

Built on :mod:`networkx` so arbitrary graphs plug in; constructors for
the common overlays are provided.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["PeerGraph"]


class PeerGraph:
    """An undirected, connected exchange overlay over the workers."""

    def __init__(self, graph: nx.Graph, n_workers: int):
        if n_workers < 2:
            raise ValueError("need at least two workers")
        if set(graph.nodes) != set(range(n_workers)):
            raise ValueError(
                f"graph nodes must be exactly 0..{n_workers - 1}, "
                f"got {sorted(graph.nodes)}"
            )
        if not nx.is_connected(graph):
            raise ValueError("peer graph must be connected (updates must be able "
                             "to reach every worker)")
        if any(graph.has_edge(v, v) for v in graph.nodes):
            raise ValueError("self-loops are not allowed")
        self.graph = graph
        self.n_workers = n_workers
        self._neighbors = {v: frozenset(graph.neighbors(v)) for v in graph.nodes}

    def neighbors(self, worker: int) -> frozenset[int]:
        """The workers adjacent to ``worker`` in the overlay."""
        return self._neighbors[worker]

    def degree(self, worker: int) -> int:
        """Number of overlay neighbours of ``worker``."""
        return len(self._neighbors[worker])

    @property
    def edges(self) -> int:
        return self.graph.number_of_edges()

    def diameter(self) -> int:
        """Longest shortest path in the overlay (mixing-speed proxy)."""
        return int(nx.diameter(self.graph))

    # ------------------------------------------------------------------
    # Common overlays
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, n_workers: int) -> "PeerGraph":
        """Build an overlay from a compact CLI spec string.

        Accepted forms: ``full``, ``ring``, ``star``, ``kregular:K``,
        ``hier:G`` (ring-connected gateways) and ``hier:G:full``
        (fully-connected gateways), where K is the regular degree and G
        the LAN group size.
        """
        parts = spec.strip().lower().split(":")
        kind, args = parts[0], parts[1:]
        try:
            if kind == "full" and not args:
                return cls.full_mesh(n_workers)
            if kind == "ring" and not args:
                return cls.ring(n_workers)
            if kind == "star" and not args:
                return cls.star(n_workers)
            if kind == "kregular" and len(args) == 1:
                return cls.k_regular(n_workers, int(args[0]))
            if kind == "hier" and args and len(args) <= 2:
                wan = args[1] if len(args) == 2 else "ring"
                return cls.hierarchical(n_workers, int(args[0]), wan=wan)
        except ValueError as exc:
            raise ValueError(f"overlay {spec!r}: {exc}") from None
        raise ValueError(
            f"unknown overlay spec {spec!r}; expected full, ring, star, "
            "kregular:K, hier:G, or hier:G:full"
        )

    @classmethod
    def full_mesh(cls, n_workers: int) -> "PeerGraph":
        """The paper's all-to-all exchange."""
        return cls(nx.complete_graph(n_workers), n_workers)

    @classmethod
    def ring(cls, n_workers: int) -> "PeerGraph":
        """Each worker exchanges with its two ring neighbours."""
        return cls(nx.cycle_graph(n_workers), n_workers)

    @classmethod
    def k_regular(cls, n_workers: int, k: int, *, seed: int = 0) -> "PeerGraph":
        """A random connected k-regular overlay (gossip-SGD style)."""
        if k < 2 or k >= n_workers:
            raise ValueError("need 2 <= k < n_workers")
        if (k * n_workers) % 2:
            raise ValueError("k * n_workers must be even for a k-regular graph")
        for attempt in range(64):
            g = nx.random_regular_graph(k, n_workers, seed=seed + attempt)
            if nx.is_connected(g):
                return cls(g, n_workers)
        raise RuntimeError("could not sample a connected k-regular graph")

    @classmethod
    def hierarchical(
        cls, n_workers: int, group_size: int, *, wan: str = "ring"
    ) -> "PeerGraph":
        """Micro-cloud-of-micro-clouds: LAN cliques bridged over the WAN.

        Workers are grouped into consecutive micro-clouds of
        ``group_size`` (the last group absorbs any remainder). Inside a
        group everyone exchanges with everyone — LAN aggregation before
        WAN egress, the natural DLion deployment. The first worker of
        each group is its WAN gateway; gateways are connected to each
        other in a ring (``wan="ring"``) or all-to-all (``wan="full"``).
        Per-worker degree is therefore bounded by the group size plus
        the gateway fan-out, independent of the cluster size.
        """
        if group_size < 2:
            raise ValueError("group_size must be >= 2")
        if group_size > n_workers:
            raise ValueError("group_size cannot exceed n_workers")
        if wan not in ("ring", "full"):
            raise ValueError(f"unknown wan topology {wan!r}")
        n_groups = n_workers // group_size
        g = nx.Graph()
        g.add_nodes_from(range(n_workers))
        starts = [k * group_size for k in range(n_groups)]
        for k, start in enumerate(starts):
            end = n_workers if k == n_groups - 1 else start + group_size
            members = range(start, end)
            g.add_edges_from(
                (a, b) for a in members for b in members if a < b
            )
        gateways = starts
        if len(gateways) > 1:
            if wan == "full":
                g.add_edges_from(
                    (a, b) for a in gateways for b in gateways if a < b
                )
            else:
                g.add_edges_from(
                    (gateways[i], gateways[(i + 1) % len(gateways)])
                    for i in range(len(gateways))
                    if gateways[i] != gateways[(i + 1) % len(gateways)]
                )
        return cls(g, n_workers)

    @classmethod
    def star(cls, n_workers: int, *, hub: int = 0) -> "PeerGraph":
        """Everyone exchanges with one hub (a PS-like degenerate overlay)."""
        g = nx.Graph()
        g.add_nodes_from(range(n_workers))
        g.add_edges_from((hub, v) for v in range(n_workers) if v != hub)
        return cls(g, n_workers)
