"""Partial peer topologies — gossip-style exchange graphs.

The paper's workers exchange with *all* peers. Decentralized-SGD
practice often restricts exchange to a sparse overlay (ring, k-regular,
star) to cap per-worker communication. A :class:`PeerGraph` is that
overlay: the engine only routes gradients, loss shares, and RCP shares
along its edges, so DKT and the controllers automatically operate on
each worker's neighbourhood.

Built on :mod:`networkx` so arbitrary graphs plug in; constructors for
the common overlays are provided.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["PeerGraph"]


class PeerGraph:
    """An undirected, connected exchange overlay over the workers."""

    def __init__(self, graph: nx.Graph, n_workers: int):
        if n_workers < 2:
            raise ValueError("need at least two workers")
        if set(graph.nodes) != set(range(n_workers)):
            raise ValueError(
                f"graph nodes must be exactly 0..{n_workers - 1}, "
                f"got {sorted(graph.nodes)}"
            )
        if not nx.is_connected(graph):
            raise ValueError("peer graph must be connected (updates must be able "
                             "to reach every worker)")
        if any(graph.has_edge(v, v) for v in graph.nodes):
            raise ValueError("self-loops are not allowed")
        self.graph = graph
        self.n_workers = n_workers
        self._neighbors = {v: frozenset(graph.neighbors(v)) for v in graph.nodes}

    def neighbors(self, worker: int) -> frozenset[int]:
        """The workers adjacent to ``worker`` in the overlay."""
        return self._neighbors[worker]

    def degree(self, worker: int) -> int:
        """Number of overlay neighbours of ``worker``."""
        return len(self._neighbors[worker])

    @property
    def edges(self) -> int:
        return self.graph.number_of_edges()

    def diameter(self) -> int:
        """Longest shortest path in the overlay (mixing-speed proxy)."""
        return int(nx.diameter(self.graph))

    # ------------------------------------------------------------------
    # Common overlays
    # ------------------------------------------------------------------
    @classmethod
    def full_mesh(cls, n_workers: int) -> "PeerGraph":
        """The paper's all-to-all exchange."""
        return cls(nx.complete_graph(n_workers), n_workers)

    @classmethod
    def ring(cls, n_workers: int) -> "PeerGraph":
        """Each worker exchanges with its two ring neighbours."""
        return cls(nx.cycle_graph(n_workers), n_workers)

    @classmethod
    def k_regular(cls, n_workers: int, k: int, *, seed: int = 0) -> "PeerGraph":
        """A random connected k-regular overlay (gossip-SGD style)."""
        if k < 2 or k >= n_workers:
            raise ValueError("need 2 <= k < n_workers")
        if (k * n_workers) % 2:
            raise ValueError("k * n_workers must be even for a k-regular graph")
        for attempt in range(64):
            g = nx.random_regular_graph(k, n_workers, seed=seed + attempt)
            if nx.is_connected(g):
                return cls(g, n_workers)
        raise RuntimeError("could not sample a connected k-regular graph")

    @classmethod
    def star(cls, n_workers: int, *, hub: int = 0) -> "PeerGraph":
        """Everyone exchanges with one hub (a PS-like degenerate overlay)."""
        g = nx.Graph()
        g.add_nodes_from(range(n_workers))
        g.add_edges_from((hub, v) for v in range(n_workers) if v != hub)
        return cls(g, n_workers)
