"""Time-varying resource schedules.

These play the role of the paper's ``stress`` (CPU) and ``tc`` (network)
emulation: a resource's capacity is a piecewise-constant function of
simulated time. Dynamic SYS A/B chain three 500-second phases; Fig. 20
uses a bandwidth square wave — both are expressible here.
"""

from __future__ import annotations

import bisect
from typing import Sequence

__all__ = ["ConstantTrace", "PiecewiseTrace", "square_wave"]


class ConstantTrace:
    """A resource level that never changes."""

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError("resource level must be positive")
        self.value = float(value)

    def value_at(self, t: float) -> float:
        """The (constant) resource level at time ``t``."""
        return self.value

    def next_change_after(self, t: float) -> float | None:
        """Constant resources never change; always None."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantTrace({self.value})"


class PiecewiseTrace:
    """Piecewise-constant schedule from ``[(start_time, value), ...]``.

    The first segment must start at t=0; times must be strictly
    increasing. Values hold until the next breakpoint and the final
    value holds forever.
    """

    def __init__(self, segments: Sequence[tuple[float, float]]):
        if not segments:
            raise ValueError("need at least one segment")
        times = [float(t) for t, _ in segments]
        values = [float(v) for _, v in segments]
        if times[0] != 0.0:
            raise ValueError("first segment must start at t=0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("segment times must be strictly increasing")
        if any(v <= 0 for v in values):
            raise ValueError("resource levels must be positive")
        self._times = times
        self._values = values

    def value_at(self, t: float) -> float:
        """The resource level active at time ``t``."""
        if t < 0:
            raise ValueError("negative time")
        idx = bisect.bisect_right(self._times, t) - 1
        return self._values[idx]

    def next_change_after(self, t: float) -> float | None:
        """The next breakpoint strictly after ``t`` (None if none left)."""
        idx = bisect.bisect_right(self._times, t)
        if idx >= len(self._times):
            return None
        return self._times[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = list(zip(self._times, self._values))
        return f"PiecewiseTrace({pairs})"


def square_wave(
    low: float, high: float, period: float, *, start_high: bool = False, horizon: float = 1e5
) -> PiecewiseTrace:
    """A square wave alternating every ``period`` seconds up to ``horizon``.

    Fig. 20's bandwidth schedule (30 ↔ 100 Mbps) is one of these.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    segments: list[tuple[float, float]] = []
    t = 0.0
    hi = start_high
    while t < horizon:
        segments.append((t, high if hi else low))
        hi = not hi
        t += period
    return PiecewiseTrace(segments)
