"""Cluster topology: workers, their compute profiles, and the link mesh.

A :class:`ClusterTopology` bundles everything the training engine needs
to know about the physical substrate: per-worker :class:`ComputeProfile`
objects and the full directed :class:`BandwidthMatrix`. Construction
helpers cover the paper's Table 3 patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.compute import ComputeProfile
from repro.cluster.network import BandwidthMatrix

__all__ = ["ClusterTopology"]


@dataclass
class ClusterTopology:
    """The physical cluster handed to the engine."""

    compute: list[ComputeProfile]
    network: BandwidthMatrix

    def __post_init__(self) -> None:
        if len(self.compute) != self.network.n:
            raise ValueError(
                f"compute profiles ({len(self.compute)}) and network size "
                f"({self.network.n}) disagree"
            )
        if len(self.compute) < 2:
            raise ValueError("a cluster needs at least two workers")

    @property
    def n_workers(self) -> int:
        return len(self.compute)

    def peers(self, worker: int) -> list[int]:
        """Every other worker id in the cluster."""
        return [i for i in range(self.n_workers) if i != worker]

    @classmethod
    def build(
        cls,
        *,
        cores,
        bandwidth,
        per_core_rate: float = 8.0,
        overhead: float = 0.05,
        jitter: float = 0.03,
        latency: float = 0.002,
        shared_egress: bool = False,
    ) -> "ClusterTopology":
        """Build a fully-connected cluster from Table 3-style specs.

        ``cores`` is a per-worker list of core counts or traces;
        ``bandwidth`` is a per-worker list of link capacities (Mbps,
        scalars or traces) applied as in
        :meth:`BandwidthMatrix.from_worker_capacity`.
        ``shared_egress`` switches to the NIC-contention link model.
        """
        profiles = [
            ComputeProfile(
                c, per_core_rate=per_core_rate, overhead=overhead, jitter=jitter
            )
            for c in cores
        ]
        matrix = BandwidthMatrix.from_worker_capacity(
            bandwidth, latency=latency, shared_egress=shared_egress
        )
        return cls(compute=profiles, network=matrix)
