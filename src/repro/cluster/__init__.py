"""Micro-cloud emulation substrate.

The paper evaluates on real clusters with heterogeneity *emulated* by
``stress`` (compute) and ``tc`` (network). This package emulates one
level further down: a deterministic discrete-event simulator whose knobs
are the same ones Table 3 uses — CPU cores per worker and Mbps per link,
both allowed to change over time. Training remains real (actual models,
actual data); only elapsed time is simulated.

Components
----------
* :mod:`simclock` — the event heap (simulated seconds, deterministic
  tie-breaking).
* :mod:`traces` — piecewise-constant resource schedules (the
  ``stress``/``tc`` substitute).
* :mod:`compute` — per-worker iteration-time model.
* :mod:`network` — per-directed-link FIFO bandwidth model and the
  Table 2 AWS inter-region matrix.
* :mod:`messages` — typed control/data messages and their wire sizes.
* :mod:`queues` — per-worker control and data queues (the Redis
  substitute).
* :mod:`monitor` — the network resource monitor workers query.
* :mod:`topology` — cluster construction (workers, micro-clouds, links).
"""

from repro.cluster.simclock import SimClock
from repro.cluster.traces import ConstantTrace, PiecewiseTrace, square_wave
from repro.cluster.compute import ComputeProfile
from repro.cluster.network import (
    AWS_REGION_BANDWIDTH,
    AWS_REGIONS,
    BandwidthMatrix,
    Link,
)
from repro.cluster.messages import (
    ControlMessage,
    GradientMessage,
    LossShareMessage,
    DktRequestMessage,
    RcpShareMessage,
    WeightMessage,
)
from repro.cluster.queues import MessageQueues
from repro.cluster.faults import degraded_trace, flaky_capacities
from repro.cluster.membership import MembershipEvent, MembershipSchedule
from repro.cluster.monitor import NetworkResourceMonitor
from repro.cluster.peergraph import PeerGraph
from repro.cluster.topology import ClusterTopology

__all__ = [
    "SimClock",
    "ConstantTrace",
    "PiecewiseTrace",
    "square_wave",
    "ComputeProfile",
    "AWS_REGION_BANDWIDTH",
    "AWS_REGIONS",
    "BandwidthMatrix",
    "Link",
    "ControlMessage",
    "GradientMessage",
    "LossShareMessage",
    "DktRequestMessage",
    "RcpShareMessage",
    "WeightMessage",
    "MessageQueues",
    "MembershipEvent",
    "MembershipSchedule",
    "NetworkResourceMonitor",
    "PeerGraph",
    "ClusterTopology",
    "degraded_trace",
    "flaky_capacities",
]
