"""Per-worker control and data queues — the Redis substitute.

The prototype uses Redis PUB/SUB and Lists: a *control queue* for
signalling and a *data queue* for gradients and weights (paper §4.2).
Here each worker owns one of each; the engine delivers messages into
them at the simulated arrival time and notifies the worker's handler.

Queues may be bounded (``capacity`` messages per queue, mirroring a
Redis ``LTRIM`` retention policy or a broker's max queue length): a
push into a full queue is rejected and counted in ``dropped_control`` /
``dropped_data``, so both the sim and the live backend surface
backpressure instead of buffering without limit. The engine exports the
depths and drop counts through the ``queue_depth{worker,kind}`` gauge
and ``queue_dropped_total{worker,kind}`` counter.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["MessageQueues"]


class MessageQueues:
    """Control + data FIFO queues for one worker.

    ``capacity`` bounds each queue individually (``None`` = unbounded,
    the historical behaviour). ``push_*`` return ``False`` when the
    message was rejected by a full queue.
    """

    def __init__(self, owner: int, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.owner = owner
        self.capacity = capacity
        self.control: deque[Any] = deque()
        self.data: deque[Any] = deque()
        self.delivered_control = 0
        self.delivered_data = 0
        self.dropped_control = 0
        self.dropped_data = 0

    def push_control(self, msg: Any) -> bool:
        """Deliver a control message; False if the queue was full."""
        if self.capacity is not None and len(self.control) >= self.capacity:
            self.dropped_control += 1
            return False
        self.control.append(msg)
        self.delivered_control += 1
        return True

    def push_data(self, msg: Any) -> bool:
        """Deliver a data message; False if the queue was full."""
        if self.capacity is not None and len(self.data) >= self.capacity:
            self.dropped_data += 1
            return False
        self.data.append(msg)
        self.delivered_data += 1
        return True

    def pop_control(self) -> Any | None:
        """Dequeue the oldest control message (None if empty)."""
        return self.control.popleft() if self.control else None

    def pop_data(self) -> Any | None:
        """Dequeue the oldest data message (None if empty)."""
        return self.data.popleft() if self.data else None

    def drain_data(self) -> list[Any]:
        """Remove and return every queued data message, oldest first."""
        out = list(self.data)
        self.data.clear()
        return out

    def drain_control(self) -> list[Any]:
        """Remove and return every queued control message, oldest first."""
        out = list(self.control)
        self.control.clear()
        return out

    @property
    def control_depth(self) -> int:
        """Pending messages in the control queue."""
        return len(self.control)

    @property
    def data_depth(self) -> int:
        """Pending messages in the data queue."""
        return len(self.data)

    def __len__(self) -> int:
        return len(self.control) + len(self.data)
