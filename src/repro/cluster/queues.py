"""Per-worker control and data queues — the Redis substitute.

The prototype uses Redis PUB/SUB and Lists: a *control queue* for
signalling and a *data queue* for gradients and weights (paper §4.2).
Here each worker owns one of each; the engine delivers messages into
them at the simulated arrival time and notifies the worker's handler.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["MessageQueues"]


class MessageQueues:
    """Control + data FIFO queues for one worker."""

    def __init__(self, owner: int):
        self.owner = owner
        self.control: deque[Any] = deque()
        self.data: deque[Any] = deque()
        self.delivered_control = 0
        self.delivered_data = 0

    def push_control(self, msg: Any) -> None:
        """Deliver a control message into the control queue."""
        self.control.append(msg)
        self.delivered_control += 1

    def push_data(self, msg: Any) -> None:
        """Deliver a data message into the data queue."""
        self.data.append(msg)
        self.delivered_data += 1

    def pop_control(self) -> Any | None:
        """Dequeue the oldest control message (None if empty)."""
        return self.control.popleft() if self.control else None

    def pop_data(self) -> Any | None:
        """Dequeue the oldest data message (None if empty)."""
        return self.data.popleft() if self.data else None

    def drain_data(self) -> list[Any]:
        """Remove and return every queued data message, oldest first."""
        out = list(self.data)
        self.data.clear()
        return out

    def drain_control(self) -> list[Any]:
        """Remove and return every queued control message, oldest first."""
        out = list(self.control)
        self.control.clear()
        return out

    def __len__(self) -> int:
        return len(self.control) + len(self.data)
