"""Network model: per-directed-link bandwidth with FIFO serialization.

Each ordered worker pair has a :class:`Link` whose bandwidth follows a
trace (the ``tc`` substitute). Transfers on a link are serialized: a
transfer enqueued while another is in flight waits its turn. That
queueing is what produces the congestion effects behind Fig. 9a (a DKT
period that is too short floods the links and *slows* training).

:class:`BandwidthMatrix` has two storage modes with one observable
behaviour:

- **Legacy mode** (any traced bandwidth, or shared egress): one
  :class:`Link` object per ordered pair, built eagerly.
- **Vector mode** (every bandwidth a scalar constant, no egress): link
  state lives in flat NumPy arrays (bandwidth, busy-until, bytes,
  transfer counts) and ``links`` is a lazy mapping that materialises
  lightweight :class:`LinkView` proxies on access. This is what makes
  1,000-worker clusters feasible — no O(n²) object graph — and enables
  :meth:`BandwidthMatrix.enqueue_transfers`, the vectorized batch used
  for same-instant gradient fan-out. The arithmetic mirrors
  :meth:`Link.enqueue_transfer` operation for operation, so both modes
  (and the batch and scalar paths) are IEEE-754 bit-identical.

The module also ships the paper's Table 2: measured inter-region
bandwidth (Mbps) between six Amazon regions, used to emulate WAN
micro-cloud environments.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.cluster.traces import ConstantTrace

__all__ = ["Link", "LinkView", "BandwidthMatrix", "AWS_REGIONS", "AWS_REGION_BANDWIDTH"]


# Paper Table 2: available bandwidth (Mbps) between Amazon regions.
# Row = source, column = destination, order matches AWS_REGIONS.
AWS_REGIONS = ("Virginia", "Oregon", "Ireland", "Mumbai", "Seoul", "Sydney")

AWS_REGION_BANDWIDTH = np.array(
    [
        #  V    O    I    M   S1   S2
        [  0, 190, 181,  53,  58,  56],   # Virginia
        [187,   0,  91,  41,  93,  84],   # Oregon
        [171,  92,   0,  73,  30,  41],   # Ireland
        [ 53,  41,  73,   0,  85,  79],   # Mumbai
        [ 58,  88,  40,  85,   0,  79],   # Seoul
        [ 56,  84,  36,  79,  72,   0],   # Sydney
    ],
    dtype=float,
)


class Link:
    """A directed communication link with FIFO transfer serialization.

    ``enqueue_transfer(nbytes, t)`` returns the delivery completion time
    assuming the transfer joins the tail of the link's queue at ``t``.
    Bandwidth changes mid-transfer are approximated by the bandwidth at
    transfer start — adequate for piecewise schedules whose phases are
    long relative to individual transfers (the Table 3 regimes).
    """

    def __init__(self, src: int, dst: int, bandwidth_mbps, *, latency: float = 0.002):
        if src == dst:
            raise ValueError("no self-links")
        if isinstance(bandwidth_mbps, (int, float)):
            bandwidth_mbps = ConstantTrace(float(bandwidth_mbps))
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth_mbps
        self.latency = latency
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.transfers = 0

    def bandwidth_at(self, t: float) -> float:
        """Available bandwidth in Mbps at time ``t``."""
        return self.bandwidth.value_at(t)

    def transfer_duration(self, nbytes: int, t: float) -> float:
        """Serialization time for ``nbytes`` at the bandwidth active at ``t``."""
        if nbytes < 0:
            raise ValueError("negative payload")
        mbps = self.bandwidth_at(t)
        return (nbytes * 8.0) / (mbps * 1e6)

    def enqueue_transfer(self, nbytes: int, t: float) -> float:
        """Queue a transfer at time ``t``; returns its delivery time."""
        start = max(t, self.busy_until)
        duration = self.transfer_duration(nbytes, start)
        self.busy_until = start + duration
        self.bytes_sent += int(nbytes)
        self.transfers += 1
        return self.busy_until + self.latency

    def queue_delay(self, t: float) -> float:
        """How long a transfer enqueued now would wait before starting."""
        return max(0.0, self.busy_until - t)


class LinkView:
    """A lightweight proxy onto one directed link of a vector-mode
    :class:`BandwidthMatrix`.

    Presents the :class:`Link` interface (``bandwidth_at``,
    ``enqueue_transfer``, ``busy_until``, ``bytes_sent`` …) but reads
    and writes the matrix's shared NumPy state, so views are cheap,
    interchangeable, and never stale.
    """

    __slots__ = ("_m", "src", "dst")

    def __init__(self, matrix: "BandwidthMatrix", src: int, dst: int):
        self._m = matrix
        self.src = src
        self.dst = dst

    @property
    def latency(self) -> float:
        return self._m._latency

    @property
    def busy_until(self) -> float:
        return float(self._m._busy[self.src, self.dst])

    @busy_until.setter
    def busy_until(self, value: float) -> None:
        self._m._busy[self.src, self.dst] = value

    @property
    def bytes_sent(self) -> int:
        return int(self._m._bytes[self.src, self.dst])

    @property
    def transfers(self) -> int:
        return int(self._m._xfers[self.src, self.dst])

    @property
    def bandwidth(self) -> ConstantTrace:
        return ConstantTrace(float(self._m._bw[self.src, self.dst]))

    def bandwidth_at(self, t: float) -> float:
        """Available bandwidth in Mbps at time ``t``."""
        return float(self._m._bw[self.src, self.dst])

    def transfer_duration(self, nbytes: int, t: float) -> float:
        """Serialization time for ``nbytes`` at the bandwidth active at ``t``."""
        if nbytes < 0:
            raise ValueError("negative payload")
        mbps = self.bandwidth_at(t)
        return (nbytes * 8.0) / (mbps * 1e6)

    def enqueue_transfer(self, nbytes: int, t: float) -> float:
        """Queue a transfer at time ``t``; returns its delivery time."""
        return self._m.enqueue_transfer(self.src, self.dst, nbytes, t)

    def queue_delay(self, t: float) -> float:
        """How long a transfer enqueued now would wait before starting."""
        return max(0.0, self.busy_until - t)


class _LinkMap(Mapping):
    """Lazy ``{(src, dst): LinkView}`` mapping for vector mode.

    Behaves like the legacy eager dict (membership, length, iteration
    over all ordered pairs) without materialising n² objects.
    """

    __slots__ = ("_m",)

    def __init__(self, matrix: "BandwidthMatrix"):
        self._m = matrix

    def __getitem__(self, key) -> LinkView:
        if key not in self:
            raise KeyError(key)
        return LinkView(self._m, key[0], key[1])

    def __contains__(self, key) -> bool:
        if not (isinstance(key, tuple) and len(key) == 2):
            return False
        i, j = key
        n = self._m.n
        return 0 <= i < n and 0 <= j < n and i != j

    def __iter__(self):
        n = self._m.n
        return ((i, j) for i in range(n) for j in range(n) if i != j)

    def __len__(self) -> int:
        n = self._m.n
        return n * (n - 1)


class EgressQueue:
    """A per-worker NIC egress serializer (shared-egress link model).

    With the default per-link model, a worker's five outgoing transfers
    proceed in parallel, each at its link's full rate — the behaviour of
    per-destination ``tc`` classes. Real NICs often bottleneck at the
    interface: every outgoing transfer shares one egress pipe. This
    queue models that: transfers from one worker serialize through a
    single FIFO whose rate is the worker's egress capacity.
    """

    def __init__(self, worker: int, capacity_mbps):
        if isinstance(capacity_mbps, (int, float)):
            capacity_mbps = ConstantTrace(float(capacity_mbps))
        self.worker = worker
        self.capacity = capacity_mbps
        self.busy_until = 0.0
        self.bytes_sent = 0

    def enqueue(self, nbytes: int, t: float) -> float:
        """Serialize ``nbytes`` through the NIC; returns the time the
        last byte leaves the interface."""
        if nbytes < 0:
            raise ValueError("negative payload")
        start = max(t, self.busy_until)
        rate = self.capacity.value_at(start)
        self.busy_until = start + (nbytes * 8.0) / (rate * 1e6)
        self.bytes_sent += int(nbytes)
        return self.busy_until


class BandwidthMatrix:
    """Constructs the full set of directed links for a cluster.

    ``spec[i][j]`` gives the bandwidth (Mbps, scalar or trace) from
    worker i to worker j. ``from_worker_capacity`` builds the common
    Table 3 pattern where each worker has a single capacity applied to
    all of its links (e.g. "50/50/35/35/20/20" means worker 0's links
    run at 50 Mbps, worker 4's at 20).

    All-scalar specs without egress store link state in NumPy arrays
    (vector mode, see module docstring); traced bandwidths or shared
    egress fall back to eager per-pair :class:`Link` objects. Both
    modes expose the identical API and produce bit-identical times.
    """

    def __init__(self, spec, *, latency: float = 0.002, egress=None):
        self.n = len(spec)
        if any(len(row) != self.n for row in spec):
            raise ValueError("bandwidth spec must be square")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._latency = float(latency)
        scalar = egress is None and (
            isinstance(spec, np.ndarray)
            or all(
                isinstance(v, (int, float)) for row in spec for v in row
            )
        )
        self._vector = scalar
        if scalar:
            self._bw = np.asarray(spec, dtype=float).copy()
            self._busy = np.zeros((self.n, self.n), dtype=float)
            self._bytes = np.zeros((self.n, self.n), dtype=np.int64)
            self._xfers = np.zeros((self.n, self.n), dtype=np.int64)
            self.links: Mapping[tuple[int, int], Link] = _LinkMap(self)
            self.egress: dict[int, EgressQueue] | None = None
            return
        self.links = {}
        for i in range(self.n):
            for j in range(self.n):
                if i == j:
                    continue
                self.links[(i, j)] = Link(i, j, spec[i][j], latency=latency)
        # Optional shared-egress model: per-worker NIC queues in front
        # of the per-link pipes.
        self.egress = None
        if egress is not None:
            if len(egress) != self.n:
                raise ValueError("need one egress capacity per worker")
            self.egress = {
                i: EgressQueue(i, cap) for i, cap in enumerate(egress)
            }

    @property
    def vectorized(self) -> bool:
        """True when link state is array-backed (batch path available)."""
        return self._vector

    def enqueue_transfer(self, src: int, dst: int, nbytes: int, t: float) -> float:
        """Route a transfer through the NIC (if modelled) then the link."""
        if self._vector:
            if src == dst:
                raise KeyError((src, dst))
            if nbytes < 0:
                raise ValueError("negative payload")
            busy = self._busy
            b = busy[src, dst]
            start = b if b > t else t
            duration = (nbytes * 8.0) / (self._bw[src, dst] * 1e6)
            end = start + duration
            busy[src, dst] = end
            self._bytes[src, dst] += int(nbytes)
            self._xfers[src, dst] += 1
            return float(end + self._latency)
        start = t
        if self.egress is not None:
            start = self.egress[src].enqueue(nbytes, t)
        return self.link(src, dst).enqueue_transfer(nbytes, start)

    def enqueue_transfers(self, src: int, dsts, nbytes, t: float) -> np.ndarray:
        """Vectorized same-instant batch: queue one transfer from
        ``src`` to each of ``dsts`` (distinct destinations) at time
        ``t``; returns the per-destination delivery times.

        Element-for-element this performs the same IEEE-754 operations
        as calling :meth:`enqueue_transfer` per destination — distinct
        links are independent, so the batch is bit-identical to the
        sequential loop. Vector mode only.
        """
        if not self._vector:
            raise RuntimeError("batch transfers require a vector-mode matrix")
        dsts = np.asarray(dsts, dtype=np.intp)
        if dsts.size and bool((dsts == src).any()):
            raise KeyError(f"no self-link for worker {src}")
        sizes = np.asarray(nbytes, dtype=np.int64)
        if sizes.size and int(sizes.min()) < 0:
            raise ValueError("negative payload")
        busy = self._busy[src, dsts]
        starts = np.maximum(busy, t)
        durations = (sizes * 8.0) / (self._bw[src, dsts] * 1e6)
        ends = starts + durations
        self._busy[src, dsts] = ends
        self._bytes[src, dsts] += sizes
        self._xfers[src, dsts] += 1
        return ends + self._latency

    @classmethod
    def from_worker_capacity(
        cls,
        capacities,
        *,
        latency: float = 0.002,
        shared_egress: bool = False,
    ) -> "BandwidthMatrix":
        """Each worker's outgoing links share its capacity value/trace.

        The paper's per-worker Mbps lists (Table 3) describe the
        capacity of each worker's connections; a transfer i→j is limited
        by the slower endpoint, so the link gets min(cap_i, cap_j) for
        scalar capacities and the source's trace otherwise.

        ``shared_egress=True`` additionally serializes each worker's
        outgoing transfers through a NIC queue at its own capacity —
        the interface-level contention model (see ``EgressQueue``).
        """
        n = len(capacities)
        if not shared_egress and all(
            isinstance(c, (int, float)) for c in capacities
        ):
            caps = np.asarray([float(c) for c in capacities])
            return cls(np.minimum.outer(caps, caps), latency=latency)
        spec = []
        for i in range(n):
            row = []
            for j in range(n):
                ci, cj = capacities[i], capacities[j]
                if isinstance(ci, (int, float)) and isinstance(cj, (int, float)):
                    row.append(min(float(ci), float(cj)))
                else:
                    row.append(ci)
            spec.append(row)
        return cls(
            spec,
            latency=latency,
            egress=list(capacities) if shared_egress else None,
        )

    @classmethod
    def from_regions(
        cls,
        region_ids,
        *,
        lan_mbps: float = 1000.0,
        matrix: np.ndarray = AWS_REGION_BANDWIDTH,
        latency: float = 0.002,
    ) -> "BandwidthMatrix":
        """Workers placed in regions; same-region pairs get LAN speed.

        ``region_ids[i]`` is the region index of worker i; cross-region
        links use the Table 2 measurement for that ordered pair.
        """
        n = len(region_ids)
        spec = []
        for i in range(n):
            row = []
            for j in range(n):
                ri, rj = region_ids[i], region_ids[j]
                if i == j:
                    row.append(lan_mbps)
                elif ri == rj:
                    row.append(lan_mbps)
                else:
                    row.append(float(matrix[ri][rj]))
            spec.append(row)
        return cls(spec, latency=latency)

    def bandwidth_at(self, src: int, dst: int, t: float) -> float:
        """Available Mbps on ``src -> dst`` at ``t`` (no proxy object)."""
        if self._vector:
            if src == dst:
                raise KeyError((src, dst))
            return float(self._bw[src, dst])
        return self.link(src, dst).bandwidth_at(t)

    def link(self, src: int, dst: int) -> Link:
        """The directed link ``src -> dst``."""
        return self.links[(src, dst)]

    def out_links(self, src: int) -> list[Link]:
        """All links leaving worker ``src``."""
        if self._vector:
            return [
                LinkView(self, src, j) for j in range(self.n) if j != src
            ]
        return [l for (i, _j), l in self.links.items() if i == src]

    def total_bytes(self) -> int:
        """Total bytes carried by every link so far."""
        if self._vector:
            return int(self._bytes.sum())
        return sum(l.bytes_sent for l in self.links.values())
