"""Declarative fault plans shared by both backends (chaos engineering).

A :class:`ChaosPlan` scripts *what goes wrong and when* in one place:

* **crash events** — a worker dies at a modelled time and (optionally)
  comes back ``restart_after`` modelled seconds later;
* **link faults** — a directed (or bidirectional) link suffers a
  *blackout* (every message sent inside the window is lost), random
  *drop* (each message lost with ``probability``), or added *delay*
  (``delay_s`` modelled seconds of extra latency) for a window.

The simulator lowers crash/restart events onto the existing
:class:`~repro.cluster.membership.MembershipSchedule` machinery (leave +
join with the DKT bootstrap pull) and consults a
:class:`LinkFaultInjector` on every simulated delivery, so a plan is
seed-deterministic. The live backend schedules the same plan on the
wall clock: the supervisor SIGKILLs and respawns worker processes, and
each worker's mesh consults the injector at send time.

All times are **modelled seconds** on both backends (the live backend
divides by ``--speedup`` to place them on the wall clock), so one plan
file drives sim and proc runs identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["CrashEvent", "LinkFault", "ChaosPlan", "LinkFaultInjector"]

_FAULT_KINDS = ("blackout", "drop", "delay")


@dataclass(frozen=True)
class CrashEvent:
    """One worker crash, optionally followed by a supervised restart."""

    time: float
    worker: int
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"crash time must be >= 0, got {self.time}")
        if self.worker < 0:
            raise ValueError(f"crash worker id must be >= 0, got {self.worker}")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be > 0 (or omitted), got {self.restart_after}"
            )


@dataclass(frozen=True)
class LinkFault:
    """One fault window on a directed link (``bidirectional`` mirrors it)."""

    kind: str
    start: float
    duration: float
    src: int
    dst: int
    probability: float = 1.0
    delay_s: float = 0.0
    bidirectional: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"link fault kind must be one of {_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                "link fault needs start >= 0 and duration > 0, got "
                f"start={self.start} duration={self.duration}"
            )
        if self.src == self.dst:
            raise ValueError(f"link fault src == dst ({self.src})")
        if min(self.src, self.dst) < 0:
            raise ValueError("link endpoints must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got {self.probability}"
            )
        if self.kind == "delay" and self.delay_s <= 0:
            raise ValueError(f"delay fault needs delay_s > 0, got {self.delay_s}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, src: int, dst: int) -> bool:
        """Whether this fault applies to the directed link ``src -> dst``."""
        if (self.src, self.dst) == (src, dst):
            return True
        return self.bidirectional and (self.dst, self.src) == (src, dst)


@dataclass(frozen=True)
class ChaosPlan:
    """A validated set of crash events and link-fault windows."""

    crashes: tuple[CrashEvent, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        # Per-worker crash narratives must not overlap: a worker that is
        # down (no restart, or restart still pending) cannot crash again.
        by_worker: dict[int, list[CrashEvent]] = {}
        for c in self.crashes:
            by_worker.setdefault(c.worker, []).append(c)
        for worker, events in by_worker.items():
            events.sort(key=lambda c: c.time)
            for prev, nxt in zip(events, events[1:]):
                if prev.restart_after is None:
                    raise ValueError(
                        f"worker {worker} crashes again at t={nxt.time} but "
                        f"the crash at t={prev.time} has no restart"
                    )
                if nxt.time <= prev.time + prev.restart_after:
                    raise ValueError(
                        f"worker {worker} crashes at t={nxt.time} before its "
                        f"restart at t={prev.time + prev.restart_after} completes"
                    )

    def validate(self, n_workers: int) -> None:
        """Check every worker id / link endpoint against the cluster size.

        Mirrors the ``--churn`` validation: a plan written for a bigger
        cluster must fail loudly with an actionable message, not
        silently target nobody.
        """
        for c in self.crashes:
            if c.worker >= n_workers:
                raise ValueError(
                    f"chaos plan crashes worker {c.worker} but the cluster "
                    f"has only {n_workers} workers (ids 0..{n_workers - 1})"
                )
        for f in self.link_faults:
            for endpoint in (f.src, f.dst):
                if endpoint >= n_workers:
                    raise ValueError(
                        f"chaos plan faults link {f.src}->{f.dst} but the "
                        f"cluster has only {n_workers} workers "
                        f"(ids 0..{n_workers - 1})"
                    )

    # ------------------------------------------------------------------
    # Construction from JSON
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        if not isinstance(data, dict):
            raise ValueError("chaos plan must be a JSON object")
        unknown = set(data) - {"crashes", "link_faults"}
        if unknown:
            raise ValueError(
                f"unknown chaos plan keys {sorted(unknown)}; "
                "expected 'crashes' and/or 'link_faults'"
            )
        crashes = []
        for i, entry in enumerate(data.get("crashes", [])):
            try:
                crashes.append(CrashEvent(**entry))
            except TypeError as exc:
                raise ValueError(f"bad crash entry #{i}: {exc}") from None
        faults = []
        for i, entry in enumerate(data.get("link_faults", [])):
            try:
                faults.append(LinkFault(**entry))
            except TypeError as exc:
                raise ValueError(f"bad link_fault entry #{i}: {exc}") from None
        return cls(crashes=tuple(crashes), link_faults=tuple(faults))

    @classmethod
    def from_file(cls, path: str) -> "ChaosPlan":
        with open(path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Lowering onto the membership machinery (simulator)
    # ------------------------------------------------------------------
    def membership_events(self) -> list[tuple[float, int, str]]:
        """Crash/restart events as ``(time, worker, action)`` tuples,
        mergeable with a ``--churn`` schedule's events."""
        events: list[tuple[float, int, str]] = []
        for c in self.crashes:
            events.append((c.time, c.worker, "leave"))
            if c.restart_after is not None:
                events.append((c.time + c.restart_after, c.worker, "join"))
        return events

    def blackout_windows(self) -> list[LinkFault]:
        """The blackout faults (for partition-gauge bookkeeping)."""
        return [f for f in self.link_faults if f.kind == "blackout"]

    def has_restarts(self) -> bool:
        """Whether any crash event schedules a supervised restart."""
        return any(c.restart_after is not None for c in self.crashes)


class LinkFaultInjector:
    """Deterministic per-message verdicts for a plan's link faults.

    ``on_send(src, dst, t)`` returns ``None`` when the message must be
    dropped (blackout window, or a drop window's coin flip) and the
    extra modelled delay (``>= 0.0``) otherwise. The rng is consumed
    *only* inside drop windows, so attaching an injector to a run whose
    plan has no drop faults perturbs no other random stream.
    """

    def __init__(self, plan: ChaosPlan, rng):
        self._faults = plan.link_faults
        self._rng = rng

    def on_send(self, src: int, dst: int, t: float) -> float | None:
        """Verdict for one message: ``None`` = drop, else extra delay."""
        delay = 0.0
        for f in self._faults:
            if not (f.start <= t < f.end) or not f.covers(src, dst):
                continue
            if f.kind == "blackout":
                return None
            if f.kind == "drop":
                if float(self._rng.random()) < f.probability:
                    return None
            elif f.kind == "delay":
                delay += f.delay_s
        return delay

    def blackout_active(self, src: int, dst: int, t: float) -> bool:
        """Whether a blackout window covers ``src -> dst`` at time ``t``."""
        return any(
            f.kind == "blackout" and f.start <= t < f.end and f.covers(src, dst)
            for f in self._faults
        )
