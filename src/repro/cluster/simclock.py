"""Discrete-event simulation clock.

A calendar-queue (bucketed) event scheduler over simulated seconds.
Near-future events land in an array of fixed-width time buckets covering
one calendar "year"; far-future events wait in an overflow heap and are
pulled into buckets when their year starts. Only the bucket currently
being drained is heap-ordered — later buckets are unsorted append-only
lists — so scheduling is O(1) for most events instead of O(log n), and
all events sharing one timestamp are popped as a single batch.

Determinism contract: events fire in exact ``(time, seq)`` order, where
``seq`` is a monotonically increasing sequence number assigned at
``schedule`` time. The bucket index ``int((t - base) / width)`` is a
monotone non-decreasing function of ``t`` (subtraction, division by a
positive constant, truncation, and clamping are all monotone under
IEEE-754), so an earlier event can never land in a later bucket than a
later event; within a bucket, the heap restores ``(time, seq)`` order.
Bucket width and count therefore affect performance only — never the
observable firing order — and every run stays bit-deterministic, a
prerequisite for the seeded experiment sweeps. :class:`HeapSimClock`
preserves the original single-binary-heap scheduler as a frozen
reference for the property/parity suites and benchmark baselines.
"""

from __future__ import annotations

import heapq
import os
from heapq import heappush as _heappush
from typing import Any, Callable, Iterator

from repro.obs import profile as _profile

__all__ = ["SimClock", "HeapSimClock", "Event", "make_clock"]


class Event:
    """A scheduled callback. ``cancel()`` turns it into a no-op."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_clock")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        clock: "SimClock | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Backref so cancel() can keep the owning clock's live-event
        # counter exact; cleared when the event fires.
        self._clock = clock

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            clock = self._clock
            if clock is not None:
                self._clock = None
                clock._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimClock:
    """The simulation driver (calendar-queue scheduler).

    ``schedule`` registers a callback at an absolute simulated time (or
    ``schedule_in`` relative to now); ``run_until`` pumps events in
    timestamp order until the horizon. Callbacks may schedule further
    events. The clock never reads wall time.

    ``bucket_width`` / ``n_buckets`` tune the calendar geometry (one
    year spans ``bucket_width * n_buckets`` simulated seconds); per the
    determinism contract above they cannot change the firing order.
    """

    def __init__(self, *, bucket_width: float = 0.02, n_buckets: int = 512) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width}")
        if n_buckets < 2:
            raise ValueError(f"n_buckets must be >= 2: {n_buckets}")
        self._width = float(bucket_width)
        self._nbuckets = int(n_buckets)
        self._span = self._width * self._nbuckets
        # Containers hold (time, seq, Event) entries: (time, seq) is
        # unique, so heap/sort comparisons stay on C-level float/int
        # tuples and never fall back to Python-level Event comparison.
        self._buckets: list[list[tuple]] = [[] for _ in range(self._nbuckets)]
        self._base = 0.0  # simulated time at the start of bucket 0
        self._year_end = self._span
        self._cursor = 0  # index of the bucket currently being drained
        self._cur: list[tuple] = self._buckets[0]  # heap-ordered alias
        self._overflow: list[tuple] = []  # events with time >= _year_end
        self._in_year = 0  # queued entries (incl. cancelled) in buckets
        self._live = 0  # live (non-cancelled, unfired) events
        self._seq = 0
        self._now = 0.0
        self.events_processed = 0
        # High-water marks for BENCH_dispatch occupancy reporting.
        self.peak_pending = 0
        self.peak_bucket = 0
        self.peak_overflow = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire at absolute simulated ``time``."""
        now = self._now
        if time < now:
            if time < now - 1e-12:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
            time = now
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args, self)
        entry = (time, seq, ev)
        if time < self._year_end:
            idx = int((time - self._base) / self._width)
            if idx > self._cursor:
                if idx >= self._nbuckets:  # float-rounding guard
                    idx = self._nbuckets - 1
                container = self._buckets[idx]
                container.append(entry)
            else:
                # Active (or already-passed) bucket: heap order matters.
                container = self._cur
                _heappush(container, entry)
            self._in_year += 1
            size = len(container)
            if size > self.peak_bucket:
                self.peak_bucket = size
        else:
            container = self._overflow
            _heappush(container, entry)
            size = len(container)
            if size > self.peak_overflow:
                self.peak_overflow = size
        live = self._live + 1
        self._live = live
        if live > self.peak_pending:
            self.peak_pending = live
        return ev

    def schedule_in(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn, *args)

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None if empty."""
        cur = self._cur
        while cur and cur[0][2].cancelled:
            heapq.heappop(cur)
            self._in_year -= 1
        if cur:
            return cur[0][0]
        # Later buckets hold strictly later times than the active one,
        # and strictly earlier than any overflow event, so the first
        # bucket containing a live event yields the global minimum.
        for bucket in self._buckets[self._cursor + 1 :]:
            if bucket:
                best: float | None = None
                for t, _seq, ev in bucket:
                    if not ev.cancelled and (best is None or t < best):
                        best = t
                if best is not None:
                    return best
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            heapq.heappop(overflow)
        return overflow[0][0] if overflow else None

    def _advance(self) -> bool:
        """Move the cursor to the next populated bucket, rolling into a
        new calendar year (and draining the overflow heap) as needed.
        Returns False when no events remain anywhere."""
        buckets = self._buckets
        n = self._nbuckets
        if self._in_year:
            cursor = self._cursor
            while cursor + 1 < n:
                cursor += 1
                bucket = buckets[cursor]
                if bucket:
                    self._cursor = cursor
                    self._cur = bucket
                    heapq.heapify(bucket)
                    return True
            raise RuntimeError("calendar queue corrupted: in-year events missing")
        overflow = self._overflow
        if not overflow:
            return False
        # Roll forward to the year containing the overflow head; whole
        # empty years are skipped in one arithmetic step, so a sparse
        # far-future queue costs O(1) per roll, not O(gap / span).
        span = self._span
        head_t = overflow[0][0]
        base = self._base
        years = int((head_t - base) / span)
        if years < 1:
            years = 1
        base += years * span
        while head_t < base:  # float-rounding guards
            base -= span
        while head_t >= base + span:
            base += span
        self._base = base
        self._year_end = base + span
        width = self._width
        nmax = n - 1
        pulled = 0
        year_end = self._year_end
        while overflow and overflow[0][0] < year_end:
            entry = heapq.heappop(overflow)
            idx = int((entry[0] - base) / width)
            if idx > nmax:
                idx = nmax
            elif idx < 0:
                idx = 0
            buckets[idx].append(entry)
            pulled += 1
        self._in_year += pulled
        for cursor in range(n):
            bucket = buckets[cursor]
            if bucket:
                self._cursor = cursor
                self._cur = bucket
                heapq.heapify(bucket)
                return True
        raise RuntimeError("calendar queue corrupted: overflow pull lost events")

    def _pump(self, horizon: float, max_events: int | None, settle: bool) -> int:
        prof = _profile.active_profiler()
        frame = prof.begin("simclock/dispatch") if prof is not None else None
        heappop = heapq.heappop
        heappush = heapq.heappush
        processed = 0
        capped = False
        try:
            while True:
                cur = self._cur
                if not cur:
                    advanced = True
                    while not cur and (advanced := self._advance()):
                        cur = self._cur
                    if not advanced:
                        break
                t = cur[0][0]
                if t > horizon:
                    break
                entry = heappop(cur)
                self._in_year -= 1
                if not (cur and cur[0][0] == t):
                    # Singleton fast path: no batch list needed.
                    ev = entry[2]
                    if ev.cancelled:
                        continue
                    self._now = t
                    ev._clock = None
                    self._live -= 1
                    ev.fn(*ev.args)
                    processed += 1
                    self.events_processed += 1
                    if max_events is not None and processed >= max_events:
                        capped = True
                        break
                    continue
                # Same-timestamp events cannot exist outside the active
                # bucket (later buckets and the overflow heap hold
                # strictly later times), so the whole batch pops here
                # and is delivered in one pass.
                batch = [entry]
                while cur and cur[0][0] == t:
                    batch.append(heappop(cur))
                    self._in_year -= 1
                i = 0
                n_batch = len(batch)
                while i < n_batch:
                    ev = batch[i][2]
                    i += 1
                    if ev.cancelled:
                        continue
                    self._now = t
                    ev._clock = None
                    self._live -= 1
                    ev.fn(*ev.args)
                    processed += 1
                    self.events_processed += 1
                    if max_events is not None and processed >= max_events:
                        # Cap hit mid-batch: the unfired remainder goes
                        # back, restoring exact (time, seq) order.
                        while i < n_batch:
                            heappush(cur, batch[i])
                            self._in_year += 1
                            i += 1
                        capped = True
                        break
                if capped:
                    break
            if settle and not capped:
                self._now = max(self._now, horizon)
            return processed
        finally:
            if frame is not None:
                prof.end(frame, calls=processed)

    def run_until(self, horizon: float, *, max_events: int | None = None) -> int:
        """Process events with ``time <= horizon``; returns the count.

        The clock is left at ``horizon`` (or at the last event if
        ``max_events`` stopped the pump early).
        """
        return self._pump(horizon, max_events, settle=True)

    def run(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        if max_events <= 0:
            # The reference heap checks its cap before firing, so a
            # non-positive cap processes nothing.
            return 0
        return self._pump(float("inf"), max_events, settle=False)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    def iter_pending(self) -> Iterator[Event]:
        """Queued events (including cancelled ones) in firing order.

        Buckets are strictly time-ordered relative to each other and to
        the overflow heap, so sorting each container independently and
        concatenating yields the exact global ``(time, seq)`` order.
        """
        for entry in sorted(self._cur):
            yield entry[2]
        for bucket in self._buckets[self._cursor + 1 :]:
            if bucket:
                for entry in sorted(bucket):
                    yield entry[2]
        for entry in sorted(self._overflow):
            yield entry[2]

    def occupancy(self) -> dict[str, int]:
        """Queue-occupancy snapshot and high-water marks (for benches)."""
        return {
            "pending": self._live,
            "in_year": self._in_year,
            "overflow": len(self._overflow),
            "peak_pending": self.peak_pending,
            "peak_bucket": self.peak_bucket,
            "peak_overflow": self.peak_overflow,
        }


class HeapSimClock:
    """The original single-binary-heap scheduler, kept frozen.

    This is the reference implementation for the scheduler property and
    golden-parity suites, and the baseline for ``bench_dispatch``. Its
    observable behaviour (firing order, ``now`` trajectory, counters,
    error cases) defines the contract :class:`SimClock` must match
    exactly. ``pending()`` intentionally keeps the historical O(n)
    sweep. Do not optimise this class.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self.events_processed = 0
        self.peak_pending = 0
        self.peak_bucket = 0  # a heap is one big bucket
        self.peak_overflow = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule event in the past: {time} < {self._now}")
        ev = Event(max(time, self._now), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        size = len(self._heap)
        if size > self.peak_pending:
            self.peak_pending = size
            self.peak_bucket = size
        return ev

    def schedule_in(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn, *args)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until(self, horizon: float, *, max_events: int | None = None) -> int:
        """Process events with ``time <= horizon``; returns the count."""
        prof = _profile.active_profiler()
        frame = prof.begin("simclock/dispatch") if prof is not None else None
        processed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.time > horizon:
                    break
                heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    return processed
            self._now = max(self._now, horizon)
            return processed
        finally:
            if frame is not None:
                prof.end(frame, calls=processed)

    def run(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        prof = _profile.active_profiler()
        frame = prof.begin("simclock/dispatch") if prof is not None else None
        processed = 0
        try:
            while self._heap and processed < max_events:
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
            return processed
        finally:
            if frame is not None:
                prof.end(frame, calls=processed)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued (O(n))."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def iter_pending(self) -> Iterator[Event]:
        """Queued events (including cancelled ones) in firing order."""
        yield from sorted(self._heap)

    def occupancy(self) -> dict[str, int]:
        """Queue-occupancy snapshot and high-water marks (for benches)."""
        return {
            "pending": self.pending(),
            "in_year": len(self._heap),
            "overflow": 0,
            "peak_pending": self.peak_pending,
            "peak_bucket": self.peak_bucket,
            "peak_overflow": 0,
        }


def make_clock(kind: str | None = None) -> "SimClock | HeapSimClock":
    """Build a simulation clock.

    ``kind`` is ``"calendar"`` (default) or ``"heap"`` (the frozen
    reference). When None, the ``REPRO_SIMCLOCK`` environment variable
    chooses — the hook the golden heap-vs-calendar parity suite and
    ``bench_dispatch`` use to swap schedulers under an otherwise
    identical engine.
    """
    if kind is None:
        kind = os.environ.get("REPRO_SIMCLOCK", "calendar") or "calendar"
    if kind == "calendar":
        return SimClock()
    if kind == "heap":
        return HeapSimClock()
    raise ValueError(f"unknown clock kind: {kind!r} (expected 'calendar' or 'heap')")
