"""Discrete-event simulation clock.

A binary-heap event queue over simulated seconds. Events scheduled for
the same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties), which makes every run bit-deterministic —
a prerequisite for the seeded experiment sweeps.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable

from repro.obs import profile as _profile

__all__ = ["SimClock", "Event"]


class Event:
    """A scheduled callback. ``cancel()`` turns it into a no-op."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimClock:
    """The simulation driver.

    ``schedule`` registers a callback at an absolute simulated time (or
    ``schedule_in`` relative to now); ``run_until`` pumps events in
    timestamp order until the horizon. Callbacks may schedule further
    events. The clock never reads wall time.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule event in the past: {time} < {self._now}")
        ev = Event(max(time, self._now), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Register ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, fn, *args)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until(self, horizon: float, *, max_events: int | None = None) -> int:
        """Process events with ``time <= horizon``; returns the count.

        The clock is left at ``horizon`` (or at the last event if
        ``max_events`` stopped the pump early).
        """
        # Wall-clock attribution for --profile runs; one check per pump,
        # not per event, so the untraced hot loop is unchanged.
        prof = _profile.active_profiler()
        t0 = perf_counter() if prof is not None else 0.0
        processed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.time > horizon:
                    break
                heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    return processed
            self._now = max(self._now, horizon)
            return processed
        finally:
            if prof is not None:
                prof.add("simclock/dispatch", perf_counter() - t0, processed)

    def run(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        prof = _profile.active_profiler()
        t0 = perf_counter() if prof is not None else 0.0
        processed = 0
        try:
            while self._heap and processed < max_events:
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
            return processed
        finally:
            if prof is not None:
                prof.add("simclock/dispatch", perf_counter() - t0, processed)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)
