"""Random resource-degradation traces (fault injection).

Table 3's dynamic environments script *planned* phase changes; real
micro-clouds also suffer unplanned interference — a co-located job
stealing cores, a congested uplink. This module generates seeded random
degradation schedules as :class:`PiecewiseTrace` objects:

* events arrive as a Poisson process (``rate`` per simulated second);
* each event multiplies the resource by ``severity`` (drawn uniformly
  from a range) for an exponentially-distributed duration;
* overlapping events compound multiplicatively.

Used by the flaky-cluster example and the robustness tests.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.traces import PiecewiseTrace

__all__ = ["degraded_trace", "flaky_capacities"]


def degraded_trace(
    base: float,
    rng: np.random.Generator,
    *,
    horizon: float,
    rate: float = 0.01,
    severity: tuple[float, float] = (0.2, 0.7),
    mean_duration: float = 40.0,
    floor: float = 1e-3,
) -> PiecewiseTrace:
    """A piecewise trace of ``base`` under random degradation events.

    Parameters
    ----------
    rate:
        Expected events per simulated second (Poisson).
    severity:
        Each event multiplies capacity by a factor drawn uniformly from
        this range (lower = harsher).
    mean_duration:
        Mean of the exponential event duration.
    floor:
        Compounded capacity never drops below ``floor * base``.
    """
    if base <= 0 or horizon <= 0:
        raise ValueError("base and horizon must be positive")
    if rate < 0 or mean_duration <= 0:
        raise ValueError("rate must be >= 0 and mean_duration > 0")
    lo, hi = severity
    if not 0 < lo <= hi <= 1:
        raise ValueError("severity range must satisfy 0 < lo <= hi <= 1")

    # Sample events.
    events: list[tuple[float, float, float]] = []  # (start, end, factor)
    t = 0.0
    while True:
        if rate == 0:
            break
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            break
        duration = float(rng.exponential(mean_duration))
        factor = float(rng.uniform(lo, hi))
        events.append((t, min(horizon, t + duration), factor))

    if not events:
        return PiecewiseTrace([(0.0, base)])

    # Sweep the breakpoints, compounding active events.
    points = sorted({0.0, *[e[0] for e in events], *[e[1] for e in events]})
    segments: list[tuple[float, float]] = []
    for start in points:
        level = base
        for ev_start, ev_end, factor in events:
            if ev_start <= start < ev_end:
                level *= factor
        level = max(level, floor * base)
        if not segments or abs(segments[-1][1] - level) > 1e-12:
            segments.append((start, level))
    if segments[0][0] != 0.0:
        segments.insert(0, (0.0, base))
    return PiecewiseTrace(segments)


def flaky_capacities(
    base_values,
    rng: np.random.Generator,
    *,
    horizon: float,
    rate: float = 0.01,
    severity: tuple[float, float] = (0.2, 0.7),
    mean_duration: float = 40.0,
    floor: float = 1e-3,
) -> list[PiecewiseTrace]:
    """Independent degradation traces for a whole worker list.

    ``floor`` bounds every worker's compounded degradation, exactly as
    in :func:`degraded_trace` (capacity never drops below
    ``floor * base``).
    """
    return [
        degraded_trace(
            float(v), rng, horizon=horizon, rate=rate,
            severity=severity, mean_duration=mean_duration, floor=floor,
        )
        for v in base_values
    ]
