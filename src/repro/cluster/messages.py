"""Typed messages and their wire sizes.

DLion sends gradients "divided into indices and data ... with unique
keys" at per-weight-variable granularity (paper §4.2). We model the same
format: sparse payloads cost 4 B/index + 4 B/value, dense payloads
4 B/value, with a small per-variable key/header overhead. Control
messages (loss shares, DKT requests, go-signals) are small fixed-size
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "VARIABLE_HEADER_BYTES",
    "CONTROL_MESSAGE_BYTES",
    "sparse_payload_bytes",
    "dense_payload_bytes",
    "GradientMessage",
    "WeightMessage",
    "LossShareMessage",
    "DktRequestMessage",
    "RcpShareMessage",
    "ControlMessage",
]

VARIABLE_HEADER_BYTES = 24  # key + shape + dtype framing per weight variable
CONTROL_MESSAGE_BYTES = 64

SparseDict = Mapping[str, tuple[np.ndarray, np.ndarray]]
DenseDict = Mapping[str, np.ndarray]


def sparse_payload_bytes(payload: SparseDict) -> int:
    """Wire size of an index/value sparse gradient dict."""
    total = 0
    for idx, vals in payload.values():
        if idx.shape != vals.shape:
            raise ValueError("index/value arrays must align")
        total += VARIABLE_HEADER_BYTES + 8 * int(idx.size)
    return total


def dense_payload_bytes(payload: DenseDict) -> int:
    """Wire size of a dense per-variable dict (gradients or weights)."""
    return sum(VARIABLE_HEADER_BYTES + 4 * int(v.size) for v in payload.values())


@dataclass
class GradientMessage:
    """Partial (sparse) or full (dense) gradients from one iteration.

    Exactly one of ``sparse``/``dense`` is set. ``lbs`` is the local
    batch size the gradients were computed over — the receiver needs it
    for the dynamic-batching weight of Eq. 7.
    """

    sender: int
    iteration: int
    lbs: int
    sparse: dict[str, tuple[np.ndarray, np.ndarray]] | None = None
    dense: dict[str, np.ndarray] | None = None

    def __post_init__(self) -> None:
        if (self.sparse is None) == (self.dense is None):
            raise ValueError("exactly one of sparse/dense must be provided")
        if self.lbs < 1:
            raise ValueError("lbs must be >= 1")

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        if self.sparse is not None:
            return sparse_payload_bytes(self.sparse)
        return dense_payload_bytes(self.dense)  # type: ignore[arg-type]

    def num_entries(self) -> int:
        """Number of gradient entries carried."""
        if self.sparse is not None:
            return sum(int(i.size) for i, _ in self.sparse.values())
        return sum(int(v.size) for v in self.dense.values())  # type: ignore[union-attr]


@dataclass
class WeightMessage:
    """A full model-weight snapshot (direct knowledge transfer payload)."""

    sender: int
    iteration: int
    weights: dict[str, np.ndarray] = field(default_factory=dict)

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return dense_payload_bytes(self.weights)


@dataclass
class LossShareMessage:
    """Average of the sender's last ``l`` training losses (DKT §3.4)."""

    sender: int
    iteration: int
    avg_loss: float

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return CONTROL_MESSAGE_BYTES


@dataclass
class DktRequestMessage:
    """Request to pull the best worker's weights."""

    sender: int
    iteration: int

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return CONTROL_MESSAGE_BYTES


@dataclass
class RcpShareMessage:
    """A worker's measured relative compute power (LBS controller §3.2)."""

    sender: int
    rcp: float

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return CONTROL_MESSAGE_BYTES


@dataclass
class ControlMessage:
    """Generic control signal (go-signals for synchronous training)."""

    sender: int
    kind: str
    payload: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return CONTROL_MESSAGE_BYTES
