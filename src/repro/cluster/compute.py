"""Per-worker compute model.

A worker's gradient iteration over batch ``b`` at simulated time ``t``
takes::

    iter_time = overhead + b / (cores(t) * per_core_rate)      [seconds]

multiplied by lognormal jitter modelling OS noise. ``cores(t)`` follows
the environment's trace (the ``stress`` substitute). The LBS controller
never reads this model directly — it *measures* it through timed probe
iterations, exactly like the paper's profiling, so measurement error is
part of the reproduction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.traces import ConstantTrace

__all__ = ["ComputeProfile"]


class ComputeProfile:
    """Compute capacity of one worker.

    Parameters
    ----------
    cores:
        A trace of available CPU cores (or GPU-equivalent units) over
        time; Table 3's per-worker core counts go here.
    per_core_rate:
        Training samples processed per second per core. This is the
        calibration knob that sets the compute/communication balance
        (see DESIGN.md §5).
    overhead:
        Fixed per-iteration cost (framework dispatch, gradient packing);
        makes iteration time affine in batch size, which is what the
        paper's linear-regression profiling assumes.
    jitter:
        Sigma of multiplicative lognormal noise. Zero disables noise.
    """

    def __init__(
        self,
        cores,
        *,
        per_core_rate: float = 8.0,
        overhead: float = 0.05,
        jitter: float = 0.03,
    ):
        if isinstance(cores, (int, float)):
            cores = ConstantTrace(float(cores))
        if per_core_rate <= 0:
            raise ValueError("per_core_rate must be positive")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.cores = cores
        self.per_core_rate = per_core_rate
        self.overhead = overhead
        self.jitter = jitter

    def rate_at(self, t: float) -> float:
        """Samples per second at time ``t`` (noise-free)."""
        return self.cores.value_at(t) * self.per_core_rate

    def iter_time(
        self, batch_size: int, t: float, rng: np.random.Generator | None = None
    ) -> float:
        """Simulated duration of one gradient iteration over ``batch_size``."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        base = self.overhead + batch_size / self.rate_at(t)
        if self.jitter > 0 and rng is not None:
            base *= math.exp(rng.normal(0.0, self.jitter))
        return base

    def max_batch_in(self, unit_time: float, t: float) -> float:
        """Largest batch processable within ``unit_time`` at time ``t``.

        The ground-truth analogue of the RCP the LBS controller estimates.
        """
        budget = unit_time - self.overhead
        if budget <= 0:
            return 0.0
        return budget * self.rate_at(t)
