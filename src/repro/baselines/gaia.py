"""Gaia (NSDI '17): significance-filtered gradient exchange.

Paper §5.1.4 system (3): "exchanging only a subset of gradients causing
more than S% change on model weights", S = 1%. Gaia accumulates local
updates and ships an entry once its *accumulated* effect on the weight
crosses the significance threshold; shipped entries reset their
accumulator. Synchronization is "a kind of bounded synchronous
strategy" (§5.2.5), modelled as a staleness-1 bound.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ExchangeStrategy, PartialGradients, WorkerContext
from repro.core.sync import BoundedPolicy

__all__ = ["GaiaStrategy"]


class GaiaStrategy(ExchangeStrategy):
    """Gaia: significance-filtered accumulated gradients (S% threshold)."""
    name = "gaia"

    def __init__(self, *, s_percent: float = 1.0, lr: float = 0.1, n_workers: int = 6,
                 staleness: int = 1):
        if s_percent <= 0:
            raise ValueError("significance threshold must be positive")
        super().__init__(BoundedPolicy(staleness, 0))
        self.s = s_percent / 100.0
        self.lr = lr
        self.n_workers = n_workers
        self._acc: dict[str, np.ndarray] | None = None

    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        if self._acc is None:
            self._acc = {k: np.zeros_like(g) for k, g in grads.items()}
        weights = ctx.model_variables()
        payload: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, g in grads.items():
            acc = self._acc[name]
            acc += g
            # Significance of the accumulated update relative to the
            # current weight magnitude (floored to avoid div-by-zero).
            scale = self.lr / self.n_workers
            denom = np.maximum(np.abs(weights[name].reshape(-1)), 1e-3)
            ratio = scale * np.abs(acc.reshape(-1)) / denom
            idx = np.nonzero(ratio >= self.s)[0]
            if idx.size:
                payload[name] = (idx.astype(np.int64), acc.reshape(-1)[idx].copy())
                acc.reshape(-1)[idx] = 0.0
        # The same significant set goes to every peer; empty payloads
        # still travel as progress beacons.
        return {dst: PartialGradients(kind="sparse", payload=payload) for dst in ctx.peers}
