"""Ako (SoCC '16): round-robin partial gradient exchange.

Paper §5.1.4 system (2): "partitioning gradients based on available
network capacity and computation power and sending a block of the
partitioned gradients in turn". Each variable's flat index range is
split into P partitions; iteration t ships partition ``t mod P`` of the
*accumulated* gradients (entries not shipped keep accumulating, Ako's
accumulated-partial-gradient rule). Training is asynchronous.

P is derived once, at the first iteration, from the ratio of the full
gradient size to what the worker's average link can carry during one
iteration — the "network capacity and computation power" rule — unless
pinned with the ``partitions`` argument.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.cluster.messages import VARIABLE_HEADER_BYTES
from repro.core.api import ExchangeStrategy, PartialGradients, WorkerContext
from repro.core.sync import AsyncPolicy

__all__ = ["AkoStrategy"]

_MAX_PARTITIONS = 64


class AkoStrategy(ExchangeStrategy):
    """Ako: round-robin accumulated partial gradient exchange, async."""
    name = "ako"

    def __init__(self, *, partitions: int | None = None):
        super().__init__(AsyncPolicy())
        if partitions is not None and partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.partitions = partitions
        self._acc: dict[str, np.ndarray] | None = None
        self._iter = 0

    def _derive_partitions(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> int:
        full_bytes = sum(VARIABLE_HEADER_BYTES + 8 * g.size for g in grads.values())
        bws = [ctx.bandwidth_to(dst) for dst in ctx.peers]
        avg_bytes_per_sec = (sum(bws) / len(bws)) * 1e6 / 8.0
        budget = avg_bytes_per_sec * ctx.iter_time_estimate() / max(1, len(ctx.peers))
        return int(min(_MAX_PARTITIONS, max(1, math.ceil(full_bytes / max(budget, 1.0)))))

    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        if self._acc is None:
            self._acc = {k: np.zeros_like(g) for k, g in grads.items()}
        if self.partitions is None:
            self.partitions = self._derive_partitions(ctx, grads)
        p = self._iter % self.partitions
        self._iter += 1
        payload: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, g in grads.items():
            acc = self._acc[name]
            acc += g
            flat = acc.reshape(-1)
            # Partition p of this variable's flat index range.
            bounds = np.linspace(0, flat.size, self.partitions + 1).astype(int)
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            if hi > lo:
                idx = np.arange(lo, hi, dtype=np.int64)
                payload[name] = (idx, flat[lo:hi].copy())
                flat[lo:hi] = 0.0
        return {dst: PartialGradients(kind="sparse", payload=payload) for dst in ctx.peers}
