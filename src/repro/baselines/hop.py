"""Hop (ASPLOS '19): heterogeneity-aware decentralized training.

Paper §5.1.4 system (4): "exchanging whole gradients but advancing
iterations by not receiving gradients of stragglers called backup
workers", with backup = 1 and staleness bound = 5 in the evaluation.
The gradient payload is the Baseline's one-liner; Hop's substance lives
in its bounded-synchronous ``synch_training`` policy.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ExchangeStrategy, PartialGradients, WorkerContext
from repro.core.sync import BoundedPolicy, SyncState

__all__ = ["HopStrategy"]


class HopStrategy(ExchangeStrategy):
    """Hop: whole gradients under bounded staleness with backup workers."""
    name = "hop"

    def __init__(self, *, staleness: int = 5, backup: int = 1):
        super().__init__(BoundedPolicy(staleness, backup))

    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        return {dst: PartialGradients(kind="dense", payload=dict(grads)) for dst in ctx.peers}

    def synch_training(self, ctx: WorkerContext, state: SyncState) -> bool:
        # Bounded synchronous with backup workers: tolerate up to
        # `backup` stragglers lagging more than `staleness` iterations.
        return self.sync_policy.can_proceed(state)
