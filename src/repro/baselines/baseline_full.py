"""Baseline: whole gradients to every worker, fully synchronous.

Paper §5.1.4 system (1): "exchanging whole gradients with all workers
every iteration". The plugin body is a single line — the Table 1 claim.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.api import ExchangeStrategy, PartialGradients, WorkerContext

__all__ = ["BaselineStrategy"]


class BaselineStrategy(ExchangeStrategy):
    """Baseline: whole gradients to every peer, lockstep synchronous."""
    name = "baseline"

    def generate_partial_gradients(
        self, ctx: WorkerContext, grads: Mapping[str, np.ndarray]
    ) -> dict[int, PartialGradients]:
        return {dst: PartialGradients(kind="dense", payload=dict(grads)) for dst in ctx.peers}
