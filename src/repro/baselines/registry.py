"""System registry: name → strategy factory.

``create_strategy(config, worker_id)`` builds the exchange strategy for
one worker from ``TrainConfig.system`` / ``TrainConfig.system_kwargs``.
The five systems of the evaluation (§5.1.4):

=========  ==========================================  ==================
name       gradient exchange                           synchronization
=========  ==========================================  ==================
dlion      per-link Max-N with transmission budgets    configurable
baseline   whole gradients to all                      synchronous
ako        round-robin accumulated partitions          asynchronous
gaia       significance-filtered accumulation (S=1%)   bounded (τ=1)
hop        whole gradients                             bounded (τ=5, b=1)
=========  ==========================================  ==================
"""

from __future__ import annotations

from repro.baselines.ako import AkoStrategy
from repro.baselines.baseline_full import BaselineStrategy
from repro.baselines.gaia import GaiaStrategy
from repro.baselines.hop import HopStrategy
from repro.core.api import ExchangeStrategy
from repro.core.config import TrainConfig
from repro.core.strategy import DLionStrategy
from repro.core.sync import LockstepPolicy, make_sync_policy

__all__ = ["SYSTEMS", "create_strategy"]

SYSTEMS = ("dlion", "baseline", "ako", "gaia", "hop")


def create_strategy(config: TrainConfig, worker_id: int) -> ExchangeStrategy:
    """One strategy instance per worker (strategies hold worker state)."""
    name = config.system
    kw = dict(config.system_kwargs)
    if name == "dlion":
        policy = make_sync_policy(
            config.sync_mode,
            staleness=config.staleness_bound,
            backup=config.backup_workers,
        )
        return DLionStrategy(policy, config.maxn)
    if name == "baseline":
        return BaselineStrategy(LockstepPolicy())
    if name == "ako":
        return AkoStrategy(**kw)
    if name == "gaia":
        kw.setdefault("lr", config.lr)
        return GaiaStrategy(**kw)
    if name == "hop":
        return HopStrategy(**kw)
    raise ValueError(f"unknown system {name!r}; available: {SYSTEMS}")
