"""Lines-of-code accounting for Table 1.

The paper argues DLion is a generic framework by counting the lines
needed to express each comparison system through the two plugin APIs
(``generate_partial_gradients`` and ``synch_training``): at most 23 per
system. This module measures the same quantity on this reproduction —
executable source lines of each strategy's overridden plugin methods
(docstrings, comments, and blank lines excluded).
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.baselines.ako import AkoStrategy
from repro.baselines.baseline_full import BaselineStrategy
from repro.baselines.gaia import GaiaStrategy
from repro.baselines.hop import HopStrategy
from repro.core.strategy import DLionStrategy

__all__ = ["plugin_loc", "table1_rows"]

_STRATEGIES = {
    "baseline": BaselineStrategy,
    "hop": HopStrategy,
    "gaia": GaiaStrategy,
    "ako": AkoStrategy,
    "dlion": DLionStrategy,
}

_APIS = ("generate_partial_gradients", "synch_training")


def _method_loc(cls: type, method: str) -> int:
    """Executable lines in ``cls.method``'s body, if overridden.

    Returns 0 when the class inherits the framework default (the paper
    counts only the code a system author had to write).
    """
    if method not in cls.__dict__:
        return 0
    src = textwrap.dedent(inspect.getsource(getattr(cls, method)))
    tree = ast.parse(src)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    body = fn.body
    # Skip a leading docstring.
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    lines: set[int] = set()
    for node in body:
        for sub in ast.walk(node):
            if hasattr(sub, "lineno"):
                lines.add(sub.lineno)
    return len(lines)


def plugin_loc(system: str) -> dict[str, int]:
    """LoC per plugin API for one system."""
    cls = _STRATEGIES[system]
    return {api: _method_loc(cls, api) for api in _APIS}


def table1_rows() -> dict[str, dict[str, int]]:
    """All systems' plugin LoC, keyed like the paper's Table 1."""
    return {name: plugin_loc(name) for name in _STRATEGIES}
