"""The four comparison systems, expressed as DLion framework plugins.

Paper §4.2 / Table 1: Baseline, Hop, Gaia, and Ako are all implemented
inside the DLion framework by overriding ``generate_partial_gradients``
and (for Hop) configuring ``synch_training`` — a handful of lines each.
This package reproduces that: every system is an
:class:`~repro.core.api.ExchangeStrategy` subclass, and
:mod:`repro.baselines.loc` counts the plugin lines for Table 1.
"""

from repro.baselines.baseline_full import BaselineStrategy
from repro.baselines.ako import AkoStrategy
from repro.baselines.gaia import GaiaStrategy
from repro.baselines.hop import HopStrategy
from repro.baselines.registry import SYSTEMS, create_strategy

__all__ = [
    "BaselineStrategy",
    "AkoStrategy",
    "GaiaStrategy",
    "HopStrategy",
    "SYSTEMS",
    "create_strategy",
]
