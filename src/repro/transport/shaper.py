"""Per-link token-bucket bandwidth shaping for the live backend.

The simulator enforces Table 3's link capacities arithmetically
(:class:`repro.cluster.network.Link`); on real sockets a loopback
transfer would otherwise run at memory speed and erase the WAN/LAN
asymmetry that DLion's ``BW_net_j / Iter_com_i`` budget (§3.3) reacts
to. A :class:`TokenBucket` paces each link's outgoing bytes at the
link's modelled rate (times the run's wall-clock speedup), with a small
burst allowance so framing overhead does not distort short messages.

The arithmetic is factored into :meth:`TokenBucket.reserve`, a pure
function of an injected clock, so pacing is unit-testable without
sleeping; :meth:`TokenBucket.throttle` is the asyncio wrapper the mesh
awaits before each write.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

__all__ = ["TokenBucket"]

# Never let the burst drop below one typical frame, or tiny rates would
# stall even control traffic behind rounding.
_MIN_BURST_BYTES = 8192.0


class TokenBucket:
    """Classic token bucket in bytes, with a debt-based reserve.

    ``reserve(n)`` debits ``n`` tokens immediately and returns how long
    the caller must wait before the bytes may be considered sent; debt
    (negative balance) models a transfer larger than the burst without
    chunking loops. Average throughput converges to ``rate`` with
    excursions bounded by ``burst``.
    """

    def __init__(
        self,
        rate_bytes_per_s: float,
        burst_bytes: float | None = None,
        *,
        time_fn: Callable[[], float] | None = None,
    ):
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self._time = time_fn if time_fn is not None else time.monotonic
        self.rate = float(rate_bytes_per_s)
        if burst_bytes is None:
            burst_bytes = max(_MIN_BURST_BYTES, self.rate * 0.1)
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.burst = float(burst_bytes)
        self._tokens = self.burst
        self._last = self._time()

    def set_rate(self, rate_bytes_per_s: float) -> None:
        """Adopt a new refill rate (dynamic bandwidth traces)."""
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self._refill()
        self.rate = float(rate_bytes_per_s)

    def _refill(self) -> None:
        now = self._time()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def reserve(self, nbytes: int) -> float:
        """Debit ``nbytes``; returns the seconds to wait before sending."""
        if nbytes < 0:
            raise ValueError("negative payload")
        self._refill()
        self._tokens -= float(nbytes)
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    async def throttle(self, nbytes: int) -> float:
        """Pace one send of ``nbytes``; returns the delay actually slept."""
        delay = self.reserve(nbytes)
        if delay > 0:
            await asyncio.sleep(delay)
        return delay
