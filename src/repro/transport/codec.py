"""Wire codec: length-prefixed, versioned frames for cluster messages.

Serializes the :mod:`repro.cluster.messages` dataclasses for real
sockets, mirroring the paper's Redis value format (§4.2): gradients
travel "divided into indices and data" at per-weight-variable
granularity. The layout:

* **frame header** (8 bytes): ``magic "DL" | version u8 | type u8 |
  body_len u32`` — big-endian, so a corrupt or foreign stream is
  rejected on the first 8 bytes;
* **sparse payloads**: per variable, a length-prefixed name, an entry
  count, then the flat indices as little-endian ``uint32`` and the
  values as little-endian ``float32`` — 8 bytes per entry, exactly the
  accounting :func:`repro.cluster.messages.sparse_payload_bytes` uses;
* **dense payloads**: per variable, a length-prefixed name, the shape,
  then the raw little-endian ``float32`` buffer — 4 bytes per value;
* **control messages** (loss shares, DKT requests, RCP shares,
  go-signals, plus the transport-internal hello/heartbeat/bye): their
  natural encodings are tiny, so frames are zero-padded up to
  ``CONTROL_MESSAGE_BYTES`` — the estimate the simulator charges is the
  size that actually crosses the wire.

Size parity with the simulator's estimates is a documented invariant:
for any message ``m``, ``len(encode_message(m))`` differs from
``m.wire_bytes()`` by at most ``SIZE_SLACK_FIXED + n_vars *
SIZE_SLACK_PER_VAR`` (and control-type frames match exactly). The
tier-1 property tests enforce the bound, so Max-N link budgets computed
from the estimates stay honest on real sockets.

Allocation discipline (mirrors the workspace buffers PR 5 brought to
``nn/``): :func:`encode_into` computes the exact frame size first, then
writes header, prefixes, names, and ndarray payloads straight into a
reusable :class:`FrameBuffer` with ``struct.pack_into`` and
``np.copyto`` into ``np.frombuffer`` views — no ``tobytes()`` copies,
no ``b"".join``, zero steady-state allocations per frame. The wire
bytes are bit-identical to the historical list-of-parts encoder.
Decode hands back read-only ``np.frombuffer`` views into the received
body wherever the wire dtype allows (little-endian hosts), instead of
``.astype`` copies; all consumers treat received arrays as immutable.
"""

from __future__ import annotations

import json
import struct
import sys
from dataclasses import dataclass

import numpy as np

from repro.cluster.messages import (
    CONTROL_MESSAGE_BYTES,
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)

__all__ = [
    "CodecError",
    "MAGIC",
    "VERSION",
    "FRAME_HEADER",
    "FRAME_HEADER_BYTES",
    "MAX_NAME_BYTES",
    "MAX_NDIM",
    "SIZE_SLACK_FIXED",
    "SIZE_SLACK_PER_VAR",
    "T_HELLO",
    "T_HEARTBEAT",
    "T_HEARTBEAT_ACK",
    "T_BYE",
    "T_GRADIENT",
    "T_WEIGHTS",
    "T_LOSS_SHARE",
    "T_DKT_REQUEST",
    "T_RCP_SHARE",
    "T_CONTROL",
    "Hello",
    "Heartbeat",
    "HeartbeatAck",
    "Bye",
    "FrameBuffer",
    "encode_into",
    "encode_message",
    "decode_message",
    "decode_body",
    "size_slack",
]

MAGIC = b"DL"
VERSION = 1

# Frame header: magic, version, message type, body length.
FRAME_HEADER = struct.Struct("!2sBBI")
FRAME_HEADER_BYTES = FRAME_HEADER.size  # 8

# Codec limits (enforced on encode, validated on decode).
MAX_NAME_BYTES = 64
MAX_NDIM = 16
MAX_BODY_BYTES = 1 << 30

# Message type ids. 1-15 are transport-internal, 16+ carry cluster
# messages.
T_HELLO = 1
T_HEARTBEAT = 2
T_BYE = 3
T_HEARTBEAT_ACK = 4
T_GRADIENT = 16
T_WEIGHTS = 17
T_LOSS_SHARE = 18
T_DKT_REQUEST = 19
T_RCP_SHARE = 20
T_CONTROL = 21

# Documented size-parity slack vs. the simulator's wire_bytes()
# estimates (see module docstring): the frame header plus the largest
# body prefix, and per variable the worst case of a maximal name plus a
# maximal shape against the flat VARIABLE_HEADER_BYTES estimate.
SIZE_SLACK_FIXED = FRAME_HEADER_BYTES + 13
SIZE_SLACK_PER_VAR = MAX_NAME_BYTES + 4 * MAX_NDIM

_GRAD_PREFIX = struct.Struct("<IIIBI")  # sender, iteration, lbs, kind, n_vars
_WEIGHT_PREFIX = struct.Struct("<III")  # sender, iteration, n_vars
_NAME_LEN = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")
_LOSS_SHARE = struct.Struct("<IId")  # sender, iteration, avg_loss
_DKT_REQUEST = struct.Struct("<II")  # sender, iteration
_RCP_SHARE = struct.Struct("<Id")  # sender, rcp
_CONTROL_PREFIX = struct.Struct("<IHI")  # sender, kind_len, payload_len
_HELLO = struct.Struct("<IB")  # sender, channel
_HEARTBEAT = struct.Struct("<IQdd")  # sender, samples_drawn, sim time, wall
_HEARTBEAT_ACK = struct.Struct("<Id")  # sender, echoed wall timestamp
_BYE = struct.Struct("<I")  # sender

# The view-returning decode path hands out arrays whose wire dtype
# ("<u4"/"<f4") is the host's native layout only on little-endian
# machines; big-endian hosts fall back to the historical astype copies.
_LITTLE_ENDIAN = sys.byteorder == "little"

_CONTROL_BODY_BYTES = CONTROL_MESSAGE_BYTES - FRAME_HEADER_BYTES
_ZERO_PAD = bytes(_CONTROL_BODY_BYTES)


class CodecError(ValueError):
    """Raised for malformed frames, unknown types, or limit violations."""


@dataclass(frozen=True)
class Hello:
    """Transport handshake: who is connecting, and on which channel."""

    sender: int
    channel: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness + progress beacon (control channel, periodic).

    ``wall`` is the sender's monotonic wall clock at send time; the
    receiver echoes it back verbatim in a :class:`HeartbeatAck` so the
    sender can compute a round-trip time against its own clock (no
    cross-process clock comparison is ever made).
    """

    sender: int
    samples_drawn: int
    time: float
    wall: float = 0.0


@dataclass(frozen=True)
class HeartbeatAck:
    """Echo of a heartbeat's wall timestamp, for RTT measurement."""

    sender: int
    echo_wall: float


@dataclass(frozen=True)
class Bye:
    """Graceful-shutdown notice: silence from me is not a failure."""

    sender: int


class FrameBuffer:
    """A reusable, growable byte buffer one frame is encoded into.

    ``encode_into`` computes the exact frame size, grows ``data`` if
    needed (by *replacing* the bytearray, so memoryviews handed out for
    a previous frame never block a resize), and records the frame
    length in ``nbytes``. Acquire/release pooling lives in the mesh;
    the codec only needs "a bytearray big enough".
    """

    __slots__ = ("data", "nbytes")

    def __init__(self, capacity: int = 8192):
        self.data = bytearray(capacity)
        self.nbytes = 0

    def reserve(self, nbytes: int) -> bytearray:
        """The backing bytearray, grown to hold at least ``nbytes``."""
        if len(self.data) < nbytes:
            self.data = bytearray(max(nbytes, 2 * len(self.data)))
        return self.data


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _plan_sparse(payload) -> tuple[int, list]:
    """Validate a sparse payload; returns (body bytes, write plan)."""
    size = 0
    plan = []
    for name, (idx, vals) in payload.items():
        raw = name.encode("utf-8")
        if len(raw) > MAX_NAME_BYTES:
            raise CodecError(
                f"variable name too long ({len(raw)} > {MAX_NAME_BYTES}): {name!r}"
            )
        idx = np.asarray(idx)
        vals = np.asarray(vals)
        if idx.shape != vals.shape or idx.ndim != 1:
            raise CodecError(
                f"sparse variable {name!r}: need aligned 1-D index/value arrays"
            )
        size += 2 + len(raw) + 4 + 8 * idx.size
        plan.append((raw, idx, vals))
    return size, plan


def _plan_dense(payload) -> tuple[int, list]:
    """Validate a dense payload; returns (body bytes, write plan)."""
    size = 0
    plan = []
    for name, arr in payload.items():
        raw = name.encode("utf-8")
        if len(raw) > MAX_NAME_BYTES:
            raise CodecError(
                f"variable name too long ({len(raw)} > {MAX_NAME_BYTES}): {name!r}"
            )
        arr = np.asarray(arr)
        if arr.ndim > MAX_NDIM:
            raise CodecError(f"dense variable {name!r}: ndim {arr.ndim} > {MAX_NDIM}")
        size += 2 + len(raw) + 1 + 4 * arr.ndim + 4 * arr.size
        plan.append((raw, arr))
    return size, plan


def _put_name(buf: bytearray, off: int, raw: bytes) -> int:
    _NAME_LEN.pack_into(buf, off, len(raw))
    off += 2
    end = off + len(raw)
    buf[off:end] = raw
    return end


def _put_array(buf: bytearray, off: int, arr: np.ndarray, dtype: str) -> int:
    """Write ``arr`` as little-endian ``dtype`` at ``off`` — an ndarray
    view into ``buf``, so conversion lands in place (no tobytes copy).
    ``casting="unsafe"`` matches ``np.ascontiguousarray(arr, dtype)``
    elementwise, keeping the wire bytes bit-identical to the historical
    encoder."""
    n = arr.size
    if n:
        dst = np.frombuffer(buf, dtype=dtype, count=n, offset=off)
        np.copyto(dst, arr.reshape(-1) if arr.ndim != 1 else arr, casting="unsafe")
    return off + 4 * n


def _put_sparse(buf: bytearray, off: int, plan: list) -> int:
    for raw, idx, vals in plan:
        off = _put_name(buf, off, raw)
        _U32.pack_into(buf, off, idx.size)
        off = _put_array(buf, off + 4, idx, "<u4")
        off = _put_array(buf, off, vals, "<f4")
    return off


def _put_dense(buf: bytearray, off: int, plan: list) -> int:
    for raw, arr in plan:
        off = _put_name(buf, off, raw)
        _U8.pack_into(buf, off, arr.ndim)
        off += 1
        for d in arr.shape:
            _U32.pack_into(buf, off, d)
            off += 4
        off = _put_array(buf, off, arr, "<f4")
    return off


def encode_into(msg, fbuf: FrameBuffer) -> memoryview:
    """Serialize ``msg`` into ``fbuf``; returns a view of the frame.

    The exact frame size is computed up front, so the only per-call
    allocations are tiny transients (encoded names, the validation
    plan) — the payload bytes are written once, in place. The returned
    memoryview aliases ``fbuf.data`` and is valid until the buffer is
    reused for another frame.
    """
    if isinstance(msg, GradientMessage):
        if msg.sparse is not None:
            var_bytes, plan = _plan_sparse(msg.sparse)
            kind, n_vars = 0, len(msg.sparse)
        else:
            var_bytes, plan = _plan_dense(msg.dense)
            kind, n_vars = 1, len(msg.dense)
        body_len = _GRAD_PREFIX.size + var_bytes
        buf = _begin(fbuf, T_GRADIENT, body_len)
        _GRAD_PREFIX.pack_into(
            buf, FRAME_HEADER_BYTES, msg.sender, msg.iteration, msg.lbs, kind, n_vars
        )
        off = FRAME_HEADER_BYTES + _GRAD_PREFIX.size
        putter = _put_sparse if kind == 0 else _put_dense
        putter(buf, off, plan)
        return _finish(fbuf, body_len)
    if isinstance(msg, WeightMessage):
        var_bytes, plan = _plan_dense(msg.weights)
        body_len = _WEIGHT_PREFIX.size + var_bytes
        buf = _begin(fbuf, T_WEIGHTS, body_len)
        _WEIGHT_PREFIX.pack_into(
            buf, FRAME_HEADER_BYTES, msg.sender, msg.iteration, len(msg.weights)
        )
        _put_dense(buf, FRAME_HEADER_BYTES + _WEIGHT_PREFIX.size, plan)
        return _finish(fbuf, body_len)
    if isinstance(msg, LossShareMessage):
        return _control_frame(
            fbuf, T_LOSS_SHARE, _LOSS_SHARE,
            (msg.sender, msg.iteration, msg.avg_loss),
        )
    if isinstance(msg, DktRequestMessage):
        return _control_frame(
            fbuf, T_DKT_REQUEST, _DKT_REQUEST, (msg.sender, msg.iteration)
        )
    if isinstance(msg, RcpShareMessage):
        return _control_frame(fbuf, T_RCP_SHARE, _RCP_SHARE, (msg.sender, msg.rcp))
    if isinstance(msg, ControlMessage):
        kind = msg.kind.encode("utf-8")
        payload = json.dumps(msg.payload, sort_keys=True).encode("utf-8")
        if len(kind) > 0xFFFF:
            raise CodecError("control kind too long")
        natural = _CONTROL_PREFIX.size + len(kind) + len(payload)
        body_len = max(natural, _CONTROL_BODY_BYTES)
        buf = _begin(fbuf, T_CONTROL, body_len)
        _CONTROL_PREFIX.pack_into(
            buf, FRAME_HEADER_BYTES, msg.sender, len(kind), len(payload)
        )
        off = FRAME_HEADER_BYTES + _CONTROL_PREFIX.size
        buf[off:off + len(kind)] = kind
        off += len(kind)
        buf[off:off + len(payload)] = payload
        _pad(buf, off + len(payload), FRAME_HEADER_BYTES + body_len)
        return _finish(fbuf, body_len)
    if isinstance(msg, Hello):
        return _control_frame(fbuf, T_HELLO, _HELLO, (msg.sender, msg.channel))
    if isinstance(msg, Heartbeat):
        return _control_frame(
            fbuf, T_HEARTBEAT, _HEARTBEAT,
            (msg.sender, msg.samples_drawn, msg.time, msg.wall),
        )
    if isinstance(msg, HeartbeatAck):
        return _control_frame(
            fbuf, T_HEARTBEAT_ACK, _HEARTBEAT_ACK, (msg.sender, msg.echo_wall)
        )
    if isinstance(msg, Bye):
        return _control_frame(fbuf, T_BYE, _BYE, (msg.sender,))
    raise CodecError(f"cannot encode {type(msg).__name__}")


def _begin(fbuf: FrameBuffer, msg_type: int, body_len: int) -> bytearray:
    if body_len > MAX_BODY_BYTES:
        raise CodecError(f"body too large: {body_len} bytes")
    buf = fbuf.reserve(FRAME_HEADER_BYTES + body_len)
    FRAME_HEADER.pack_into(buf, 0, MAGIC, VERSION, msg_type, body_len)
    return buf


def _finish(fbuf: FrameBuffer, body_len: int) -> memoryview:
    fbuf.nbytes = FRAME_HEADER_BYTES + body_len
    return memoryview(fbuf.data)[: fbuf.nbytes]


def _pad(buf: bytearray, off: int, end: int) -> None:
    # The buffer is reused across frames, so the zero padding must be
    # (re)written explicitly.
    if end > off:
        buf[off:end] = _ZERO_PAD[: end - off]


def _control_frame(fbuf: FrameBuffer, msg_type: int, st: struct.Struct, fields) -> memoryview:
    body_len = max(st.size, _CONTROL_BODY_BYTES)
    buf = _begin(fbuf, msg_type, body_len)
    st.pack_into(buf, FRAME_HEADER_BYTES, *fields)
    _pad(buf, FRAME_HEADER_BYTES + st.size, FRAME_HEADER_BYTES + body_len)
    return _finish(fbuf, body_len)


def encode_message(msg) -> bytes:
    """Serialize a cluster or transport message into one wire frame.

    Compatibility wrapper over :func:`encode_into`: allocates a fresh
    buffer and copies the frame out as ``bytes``. Hot paths (the mesh
    sender) use :func:`encode_into` with pooled buffers instead.
    """
    return bytes(encode_into(msg, FrameBuffer(256)))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _take(body: bytes, offset: int, n: int) -> tuple[bytes, int]:
    end = offset + n
    if end > len(body):
        raise CodecError(f"truncated body: wanted {n} bytes at offset {offset}")
    return body[offset:end], end


def _view(body: bytes, offset: int, count: int, dtype: str) -> tuple[np.ndarray, int]:
    """A read-only ndarray view of ``count`` little-endian 4-byte items
    at ``offset`` — no slice copy, no astype. Big-endian hosts get the
    historical native-dtype copy instead (the wire dtype would not be
    the native layout there)."""
    end = offset + 4 * count
    if end > len(body):
        raise CodecError(
            f"truncated body: wanted {4 * count} bytes at offset {offset}"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64 if dtype == "<u4" else np.float32), end
    if _LITTLE_ENDIAN:
        return np.frombuffer(body, dtype=dtype, count=count, offset=offset), end
    arr = np.frombuffer(body, dtype=dtype, count=count, offset=offset)
    native = np.int64 if dtype == "<u4" else np.float32
    return arr.astype(native), end


def _decode_name(body: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _take(body, offset, _NAME_LEN.size)
    (n,) = _NAME_LEN.unpack(raw)
    if n > MAX_NAME_BYTES:
        raise CodecError(f"variable name too long on wire: {n}")
    raw, offset = _take(body, offset, n)
    return raw.decode("utf-8"), offset


def _decode_sparse_vars(body: bytes, offset: int, n_vars: int) -> dict:
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for _ in range(n_vars):
        name, offset = _decode_name(body, offset)
        raw, offset = _take(body, offset, _U32.size)
        (count,) = _U32.unpack(raw)
        idx, offset = _view(body, offset, count, "<u4")
        vals, offset = _view(body, offset, count, "<f4")
        out[name] = (idx, vals)
    return out


def _decode_dense_vars(body: bytes, offset: int, n_vars: int) -> dict:
    out: dict[str, np.ndarray] = {}
    for _ in range(n_vars):
        name, offset = _decode_name(body, offset)
        raw, offset = _take(body, offset, 1)
        ndim = raw[0]
        if ndim > MAX_NDIM:
            raise CodecError(f"ndim too large on wire: {ndim}")
        raw, offset = _take(body, offset, 4 * ndim)
        shape = struct.unpack(f"<{ndim}I", raw)
        count = 1
        for d in shape:
            count *= d
        arr, offset = _view(body, offset, count, "<f4")
        out[name] = arr.reshape(shape)
    return out


def _decode_gradient(body: bytes):
    sender, iteration, lbs, kind, n_vars = _GRAD_PREFIX.unpack_from(body)
    offset = _GRAD_PREFIX.size
    if kind == 0:
        return GradientMessage(
            sender=sender, iteration=iteration, lbs=lbs,
            sparse=_decode_sparse_vars(body, offset, n_vars),
        )
    return GradientMessage(
        sender=sender, iteration=iteration, lbs=lbs,
        dense=_decode_dense_vars(body, offset, n_vars),
    )


def _decode_weights(body: bytes):
    sender, iteration, n_vars = _WEIGHT_PREFIX.unpack_from(body)
    return WeightMessage(
        sender=sender, iteration=iteration,
        weights=_decode_dense_vars(body, _WEIGHT_PREFIX.size, n_vars),
    )


def _decode_control(body: bytes):
    sender, kind_len, payload_len = _CONTROL_PREFIX.unpack_from(body)
    offset = _CONTROL_PREFIX.size
    raw, offset = _take(body, offset, kind_len)
    kind = raw.decode("utf-8")
    raw, offset = _take(body, offset, payload_len)
    return ControlMessage(sender=sender, kind=kind, payload=json.loads(raw))


_DECODERS = {
    T_GRADIENT: _decode_gradient,
    T_WEIGHTS: _decode_weights,
    T_LOSS_SHARE: lambda b: LossShareMessage(*_LOSS_SHARE.unpack_from(b)),
    T_DKT_REQUEST: lambda b: DktRequestMessage(*_DKT_REQUEST.unpack_from(b)),
    T_RCP_SHARE: lambda b: RcpShareMessage(*_RCP_SHARE.unpack_from(b)),
    T_CONTROL: _decode_control,
    T_HELLO: lambda b: Hello(*_HELLO.unpack_from(b)),
    T_HEARTBEAT: lambda b: Heartbeat(*_HEARTBEAT.unpack_from(b)),
    T_HEARTBEAT_ACK: lambda b: HeartbeatAck(*_HEARTBEAT_ACK.unpack_from(b)),
    T_BYE: lambda b: Bye(*_BYE.unpack_from(b)),
}


def decode_body(msg_type: int, body: bytes):
    """Decode one frame body given its header's message type."""
    decoder = _DECODERS.get(msg_type)
    if decoder is None:
        raise CodecError(f"unknown message type {msg_type}")
    try:
        return decoder(body)
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed body for type {msg_type}: {exc}") from exc


def decode_frame_header(header: bytes) -> tuple[int, int]:
    """Validate an 8-byte frame header; returns ``(msg_type, body_len)``."""
    if len(header) != FRAME_HEADER_BYTES:
        raise CodecError(f"short header: {len(header)} bytes")
    magic, version, msg_type, body_len = FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported codec version {version}")
    if body_len > MAX_BODY_BYTES:
        raise CodecError(f"body length {body_len} exceeds limit")
    return msg_type, body_len


def decode_message(frame: bytes):
    """Deserialize one complete wire frame back into its message."""
    msg_type, body_len = decode_frame_header(frame[:FRAME_HEADER_BYTES])
    body = frame[FRAME_HEADER_BYTES:]
    if len(body) != body_len:
        raise CodecError(f"frame length mismatch: header says {body_len}, got {len(body)}")
    return decode_body(msg_type, body)


def size_slack(n_vars: int) -> int:
    """The documented bound on ``|len(encode_message(m)) - m.wire_bytes()|``.

    ``n_vars`` is the number of weight variables the message carries
    (0 for control messages, whose frames match the estimate exactly).
    """
    return SIZE_SLACK_FIXED + n_vars * SIZE_SLACK_PER_VAR
