"""Wire codec: length-prefixed, versioned frames for cluster messages.

Serializes the :mod:`repro.cluster.messages` dataclasses for real
sockets, mirroring the paper's Redis value format (§4.2): gradients
travel "divided into indices and data" at per-weight-variable
granularity. The layout:

* **frame header** (8 bytes): ``magic "DL" | version u8 | type u8 |
  body_len u32`` — big-endian, so a corrupt or foreign stream is
  rejected on the first 8 bytes;
* **sparse payloads**: per variable, a length-prefixed name, an entry
  count, then the flat indices as little-endian ``uint32`` and the
  values as little-endian ``float32`` — 8 bytes per entry, exactly the
  accounting :func:`repro.cluster.messages.sparse_payload_bytes` uses;
* **dense payloads**: per variable, a length-prefixed name, the shape,
  then the raw little-endian ``float32`` buffer — 4 bytes per value;
* **control messages** (loss shares, DKT requests, RCP shares,
  go-signals, plus the transport-internal hello/heartbeat/bye): their
  natural encodings are tiny, so frames are zero-padded up to
  ``CONTROL_MESSAGE_BYTES`` — the estimate the simulator charges is the
  size that actually crosses the wire.

Size parity with the simulator's estimates is a documented invariant:
for any message ``m``, ``len(encode_message(m))`` differs from
``m.wire_bytes()`` by at most ``SIZE_SLACK_FIXED + n_vars *
SIZE_SLACK_PER_VAR`` (and control-type frames match exactly). The
tier-1 property tests enforce the bound, so Max-N link budgets computed
from the estimates stay honest on real sockets.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.cluster.messages import (
    CONTROL_MESSAGE_BYTES,
    ControlMessage,
    DktRequestMessage,
    GradientMessage,
    LossShareMessage,
    RcpShareMessage,
    WeightMessage,
)

__all__ = [
    "CodecError",
    "MAGIC",
    "VERSION",
    "FRAME_HEADER",
    "FRAME_HEADER_BYTES",
    "MAX_NAME_BYTES",
    "MAX_NDIM",
    "SIZE_SLACK_FIXED",
    "SIZE_SLACK_PER_VAR",
    "T_HELLO",
    "T_HEARTBEAT",
    "T_HEARTBEAT_ACK",
    "T_BYE",
    "T_GRADIENT",
    "T_WEIGHTS",
    "T_LOSS_SHARE",
    "T_DKT_REQUEST",
    "T_RCP_SHARE",
    "T_CONTROL",
    "Hello",
    "Heartbeat",
    "HeartbeatAck",
    "Bye",
    "encode_message",
    "decode_message",
    "decode_body",
    "size_slack",
]

MAGIC = b"DL"
VERSION = 1

# Frame header: magic, version, message type, body length.
FRAME_HEADER = struct.Struct("!2sBBI")
FRAME_HEADER_BYTES = FRAME_HEADER.size  # 8

# Codec limits (enforced on encode, validated on decode).
MAX_NAME_BYTES = 64
MAX_NDIM = 16
MAX_BODY_BYTES = 1 << 30

# Message type ids. 1-15 are transport-internal, 16+ carry cluster
# messages.
T_HELLO = 1
T_HEARTBEAT = 2
T_BYE = 3
T_HEARTBEAT_ACK = 4
T_GRADIENT = 16
T_WEIGHTS = 17
T_LOSS_SHARE = 18
T_DKT_REQUEST = 19
T_RCP_SHARE = 20
T_CONTROL = 21

# Documented size-parity slack vs. the simulator's wire_bytes()
# estimates (see module docstring): the frame header plus the largest
# body prefix, and per variable the worst case of a maximal name plus a
# maximal shape against the flat VARIABLE_HEADER_BYTES estimate.
SIZE_SLACK_FIXED = FRAME_HEADER_BYTES + 13
SIZE_SLACK_PER_VAR = MAX_NAME_BYTES + 4 * MAX_NDIM

_GRAD_PREFIX = struct.Struct("<IIIBI")  # sender, iteration, lbs, kind, n_vars
_WEIGHT_PREFIX = struct.Struct("<III")  # sender, iteration, n_vars
_NAME_LEN = struct.Struct("<H")
_U32 = struct.Struct("<I")
_LOSS_SHARE = struct.Struct("<IId")  # sender, iteration, avg_loss
_DKT_REQUEST = struct.Struct("<II")  # sender, iteration
_RCP_SHARE = struct.Struct("<Id")  # sender, rcp
_CONTROL_PREFIX = struct.Struct("<IHI")  # sender, kind_len, payload_len
_HELLO = struct.Struct("<IB")  # sender, channel
_HEARTBEAT = struct.Struct("<IQdd")  # sender, samples_drawn, sim time, wall
_HEARTBEAT_ACK = struct.Struct("<Id")  # sender, echoed wall timestamp
_BYE = struct.Struct("<I")  # sender


class CodecError(ValueError):
    """Raised for malformed frames, unknown types, or limit violations."""


@dataclass(frozen=True)
class Hello:
    """Transport handshake: who is connecting, and on which channel."""

    sender: int
    channel: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness + progress beacon (control channel, periodic).

    ``wall`` is the sender's monotonic wall clock at send time; the
    receiver echoes it back verbatim in a :class:`HeartbeatAck` so the
    sender can compute a round-trip time against its own clock (no
    cross-process clock comparison is ever made).
    """

    sender: int
    samples_drawn: int
    time: float
    wall: float = 0.0


@dataclass(frozen=True)
class HeartbeatAck:
    """Echo of a heartbeat's wall timestamp, for RTT measurement."""

    sender: int
    echo_wall: float


@dataclass(frozen=True)
class Bye:
    """Graceful-shutdown notice: silence from me is not a failure."""

    sender: int


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > MAX_NAME_BYTES:
        raise CodecError(f"variable name too long ({len(raw)} > {MAX_NAME_BYTES}): {name!r}")
    return _NAME_LEN.pack(len(raw)) + raw


def _encode_sparse_vars(payload) -> list[bytes]:
    parts = []
    for name, (idx, vals) in payload.items():
        idx = np.asarray(idx)
        vals = np.asarray(vals)
        if idx.shape != vals.shape or idx.ndim != 1:
            raise CodecError(f"sparse variable {name!r}: need aligned 1-D index/value arrays")
        parts.append(_encode_name(name))
        parts.append(_U32.pack(idx.size))
        parts.append(np.ascontiguousarray(idx, dtype="<u4").tobytes())
        parts.append(np.ascontiguousarray(vals, dtype="<f4").tobytes())
    return parts


def _encode_dense_vars(payload) -> list[bytes]:
    parts = []
    for name, arr in payload.items():
        arr = np.asarray(arr)
        if arr.ndim > MAX_NDIM:
            raise CodecError(f"dense variable {name!r}: ndim {arr.ndim} > {MAX_NDIM}")
        parts.append(_encode_name(name))
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        parts.append(np.ascontiguousarray(arr, dtype="<f4").tobytes())
    return parts


def _frame(msg_type: int, body: bytes, *, pad_to: int = 0) -> bytes:
    if pad_to:
        deficit = pad_to - (FRAME_HEADER_BYTES + len(body))
        if deficit > 0:
            body = body + b"\x00" * deficit
    if len(body) > MAX_BODY_BYTES:
        raise CodecError(f"body too large: {len(body)} bytes")
    return FRAME_HEADER.pack(MAGIC, VERSION, msg_type, len(body)) + body


def encode_message(msg) -> bytes:
    """Serialize a cluster or transport message into one wire frame."""
    if isinstance(msg, GradientMessage):
        if msg.sparse is not None:
            prefix = _GRAD_PREFIX.pack(msg.sender, msg.iteration, msg.lbs, 0, len(msg.sparse))
            parts = _encode_sparse_vars(msg.sparse)
        else:
            prefix = _GRAD_PREFIX.pack(msg.sender, msg.iteration, msg.lbs, 1, len(msg.dense))
            parts = _encode_dense_vars(msg.dense)
        return _frame(T_GRADIENT, prefix + b"".join(parts))
    if isinstance(msg, WeightMessage):
        prefix = _WEIGHT_PREFIX.pack(msg.sender, msg.iteration, len(msg.weights))
        return _frame(T_WEIGHTS, prefix + b"".join(_encode_dense_vars(msg.weights)))
    if isinstance(msg, LossShareMessage):
        body = _LOSS_SHARE.pack(msg.sender, msg.iteration, msg.avg_loss)
        return _frame(T_LOSS_SHARE, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, DktRequestMessage):
        body = _DKT_REQUEST.pack(msg.sender, msg.iteration)
        return _frame(T_DKT_REQUEST, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, RcpShareMessage):
        body = _RCP_SHARE.pack(msg.sender, msg.rcp)
        return _frame(T_RCP_SHARE, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, ControlMessage):
        kind = msg.kind.encode("utf-8")
        payload = json.dumps(msg.payload, sort_keys=True).encode("utf-8")
        if len(kind) > 0xFFFF:
            raise CodecError("control kind too long")
        body = _CONTROL_PREFIX.pack(msg.sender, len(kind), len(payload)) + kind + payload
        return _frame(T_CONTROL, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, Hello):
        return _frame(T_HELLO, _HELLO.pack(msg.sender, msg.channel), pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, Heartbeat):
        body = _HEARTBEAT.pack(msg.sender, msg.samples_drawn, msg.time, msg.wall)
        return _frame(T_HEARTBEAT, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, HeartbeatAck):
        body = _HEARTBEAT_ACK.pack(msg.sender, msg.echo_wall)
        return _frame(T_HEARTBEAT_ACK, body, pad_to=CONTROL_MESSAGE_BYTES)
    if isinstance(msg, Bye):
        return _frame(T_BYE, _BYE.pack(msg.sender), pad_to=CONTROL_MESSAGE_BYTES)
    raise CodecError(f"cannot encode {type(msg).__name__}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _take(body: bytes, offset: int, n: int) -> tuple[bytes, int]:
    end = offset + n
    if end > len(body):
        raise CodecError(f"truncated body: wanted {n} bytes at offset {offset}")
    return body[offset:end], end


def _decode_name(body: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _take(body, offset, _NAME_LEN.size)
    (n,) = _NAME_LEN.unpack(raw)
    if n > MAX_NAME_BYTES:
        raise CodecError(f"variable name too long on wire: {n}")
    raw, offset = _take(body, offset, n)
    return raw.decode("utf-8"), offset


def _decode_sparse_vars(body: bytes, offset: int, n_vars: int) -> dict:
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for _ in range(n_vars):
        name, offset = _decode_name(body, offset)
        raw, offset = _take(body, offset, _U32.size)
        (count,) = _U32.unpack(raw)
        raw, offset = _take(body, offset, 4 * count)
        idx = np.frombuffer(raw, dtype="<u4").astype(np.int64)
        raw, offset = _take(body, offset, 4 * count)
        vals = np.frombuffer(raw, dtype="<f4").astype(np.float32)
        out[name] = (idx, vals)
    return out


def _decode_dense_vars(body: bytes, offset: int, n_vars: int) -> dict:
    out: dict[str, np.ndarray] = {}
    for _ in range(n_vars):
        name, offset = _decode_name(body, offset)
        raw, offset = _take(body, offset, 1)
        ndim = raw[0]
        if ndim > MAX_NDIM:
            raise CodecError(f"ndim too large on wire: {ndim}")
        raw, offset = _take(body, offset, 4 * ndim)
        shape = struct.unpack(f"<{ndim}I", raw)
        count = 1
        for d in shape:
            count *= d
        raw, offset = _take(body, offset, 4 * count)
        out[name] = np.frombuffer(raw, dtype="<f4").astype(np.float32).reshape(shape)
    return out


def _decode_gradient(body: bytes):
    sender, iteration, lbs, kind, n_vars = _GRAD_PREFIX.unpack_from(body)
    offset = _GRAD_PREFIX.size
    if kind == 0:
        return GradientMessage(
            sender=sender, iteration=iteration, lbs=lbs,
            sparse=_decode_sparse_vars(body, offset, n_vars),
        )
    return GradientMessage(
        sender=sender, iteration=iteration, lbs=lbs,
        dense=_decode_dense_vars(body, offset, n_vars),
    )


def _decode_weights(body: bytes):
    sender, iteration, n_vars = _WEIGHT_PREFIX.unpack_from(body)
    return WeightMessage(
        sender=sender, iteration=iteration,
        weights=_decode_dense_vars(body, _WEIGHT_PREFIX.size, n_vars),
    )


def _decode_control(body: bytes):
    sender, kind_len, payload_len = _CONTROL_PREFIX.unpack_from(body)
    offset = _CONTROL_PREFIX.size
    raw, offset = _take(body, offset, kind_len)
    kind = raw.decode("utf-8")
    raw, offset = _take(body, offset, payload_len)
    return ControlMessage(sender=sender, kind=kind, payload=json.loads(raw))


_DECODERS = {
    T_GRADIENT: _decode_gradient,
    T_WEIGHTS: _decode_weights,
    T_LOSS_SHARE: lambda b: LossShareMessage(*_LOSS_SHARE.unpack_from(b)),
    T_DKT_REQUEST: lambda b: DktRequestMessage(*_DKT_REQUEST.unpack_from(b)),
    T_RCP_SHARE: lambda b: RcpShareMessage(*_RCP_SHARE.unpack_from(b)),
    T_CONTROL: _decode_control,
    T_HELLO: lambda b: Hello(*_HELLO.unpack_from(b)),
    T_HEARTBEAT: lambda b: Heartbeat(*_HEARTBEAT.unpack_from(b)),
    T_HEARTBEAT_ACK: lambda b: HeartbeatAck(*_HEARTBEAT_ACK.unpack_from(b)),
    T_BYE: lambda b: Bye(*_BYE.unpack_from(b)),
}


def decode_body(msg_type: int, body: bytes):
    """Decode one frame body given its header's message type."""
    decoder = _DECODERS.get(msg_type)
    if decoder is None:
        raise CodecError(f"unknown message type {msg_type}")
    try:
        return decoder(body)
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed body for type {msg_type}: {exc}") from exc


def decode_frame_header(header: bytes) -> tuple[int, int]:
    """Validate an 8-byte frame header; returns ``(msg_type, body_len)``."""
    if len(header) != FRAME_HEADER_BYTES:
        raise CodecError(f"short header: {len(header)} bytes")
    magic, version, msg_type, body_len = FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported codec version {version}")
    if body_len > MAX_BODY_BYTES:
        raise CodecError(f"body length {body_len} exceeds limit")
    return msg_type, body_len


def decode_message(frame: bytes):
    """Deserialize one complete wire frame back into its message."""
    msg_type, body_len = decode_frame_header(frame[:FRAME_HEADER_BYTES])
    body = frame[FRAME_HEADER_BYTES:]
    if len(body) != body_len:
        raise CodecError(f"frame length mismatch: header says {body_len}, got {len(body)}")
    return decode_body(msg_type, body)


def size_slack(n_vars: int) -> int:
    """The documented bound on ``|len(encode_message(m)) - m.wire_bytes()|``.

    ``n_vars`` is the number of weight variables the message carries
    (0 for control messages, whose frames match the estimate exactly).
    """
    return SIZE_SLACK_FIXED + n_vars * SIZE_SLACK_PER_VAR
