"""Asyncio peer mesh with control/data channels and tcp/shm lanes.

The prototype gives every worker pair two Redis queues — a control
queue for signalling and a data queue for gradients and weights (paper
§4.2). The live backend mirrors that: each worker runs one
:class:`PeerMesh` that listens on a loopback/LAN TCP port and opens two
outgoing connections (``CHANNEL_CONTROL``, ``CHANNEL_DATA``) to every
peer, identified by a :class:`~repro.transport.codec.Hello` handshake.

Reliability mechanics:

* **connect/retry** — outgoing connections (re)connect with exponential
  backoff plus jitter, bounded by a per-episode attempt budget;
* **per-message timeouts** — every write is bounded by
  ``send_timeout_s``; a timeout tears the connection down and re-enters
  the retry path;
* **heartbeats** — a periodic beacon on every control channel carries
  liveness plus the sender's training progress (the live GBS
  controller's input);
* **dead peers** — once a reconnect episode exhausts its budget the
  peer is declared dead and surfaced through ``on_peer_dead`` — the
  runtime turns that into a membership change
  (:meth:`repro.core.worker.Worker.on_membership_change`), exactly like
  the simulator's churn events. A peer that announced
  :class:`~repro.transport.codec.Bye` first is treated as a graceful
  departure and produces no callback;
* **resurrection** — :meth:`PeerMesh.revive` clears a peer's dead
  state, installs fresh outgoing links at its (new) address, and resets
  the reconnect episode — the supervisor's rejoin path after a crashed
  worker is respawned (docs/robustness.md). A superseded link's retry
  loop can never declare the revived peer dead again. Revived links are
  always TCP: the old ring segment's positions are unknowable after a
  crash, so the shm lane is not rebuilt;
* **fault injection** — an optional ``fault_fn(dst, channel)`` is
  consulted on every send: ``None`` silently drops the frame (blackout
  / drop windows of a chaos plan), a positive value delays the actual
  write by that many wall seconds. The delay is applied by the link's
  FIFO sender task, so ordering is preserved (head-of-line blocking,
  exactly like real added latency on one TCP stream).

Performance mechanics (docs/architecture.md, "Transport lanes"):

* **zero-copy encode** — :meth:`PeerMesh.send` encodes into a pooled
  :class:`~repro.transport.codec.FrameBuffer` and enqueues a memoryview
  of it; the buffer returns to the pool once the frame is written (or
  dropped), so the steady state allocates nothing per frame;
* **frame coalescing** — each sender drains whatever its outbox holds
  (up to ``coalesce_max_bytes``) and issues one batched write:
  ``writelines`` + a single ``drain()`` on TCP, one ``push_many`` on a
  ring. The token bucket is charged the batch's full byte count in one
  ``throttle`` call, so ``transport_stall_seconds_total`` stays
  truthful per link; per-frame histograms still observe every frame;
* **shm lanes** — data channels between co-hosted peers can ride a
  single-producer/single-consumer shared-memory ring
  (:mod:`repro.transport.shm`) instead of a socket. The receiver
  creates one inbound ring per shm peer at :meth:`start`; the sender
  attaches at :meth:`connect`. Control channels (heartbeats, death
  detection, Bye) always stay on TCP, so liveness semantics are
  lane-independent. A frame too large for its ring demotes the link to
  TCP after the ring drains (``transport_lane`` flips accordingly).

Outgoing bytes pass through a per-peer :class:`TokenBucket` so the
modelled link bandwidth (Table 3, wire-scaled, sped up by the run's
wall-clock factor) is enforced on the real transport — the shm lane
changes a frame's transport cost, never its modelled bandwidth.
Transfers are recorded through the shared ``obs`` surfaces:
``transport_*`` metric families, ``transport/connect`` /
``transport/send_bytes`` profiler scopes, and per-transfer spans on the
worker's ``net-out`` trace thread.
"""

from __future__ import annotations

import asyncio
import functools
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterable, Mapping

from repro.core.run_metrics import TransportMetrics
from repro.obs import profile as _profile
from repro.obs.trace import NULL_TRACER, TID_NET
from repro.transport.codec import (
    Bye,
    CodecError,
    FRAME_HEADER_BYTES,
    FrameBuffer,
    Heartbeat,
    HeartbeatAck,
    Hello,
    decode_body,
    decode_frame_header,
    decode_message,
    encode_into,
    encode_message,
)
from repro.transport.shaper import TokenBucket
from repro.transport.shm import ShmRing, ShmRingError, ring_name

__all__ = ["CHANNEL_CONTROL", "CHANNEL_DATA", "CHANNEL_NAMES", "TransportConfig", "PeerMesh"]

CHANNEL_CONTROL = 0
CHANNEL_DATA = 1
CHANNEL_NAMES = {CHANNEL_CONTROL: "control", CHANNEL_DATA: "data"}

_CLOSE = object()  # sender-task shutdown sentinel

# Ring/outbox polling backoff: start fine-grained, decay when idle.
_POLL_MIN_S = 0.0005
_POLL_MAX_S = 0.005

# Encode-buffer pool bound per mesh: enough for every link's outbox to
# hold a few frames without thrash, small enough to cap retained memory.
_POOL_MAX = 64


@dataclass(frozen=True)
class TransportConfig:
    """Tunables for the live transport (timeouts, retries, heartbeats,
    coalescing, and the shared-memory lane)."""

    connect_timeout_s: float = 5.0
    send_timeout_s: float = 10.0
    retry_base_s: float = 0.05
    retry_max_s: float = 1.0
    retry_attempts: int = 6
    heartbeat_interval_s: float = 0.2
    outbox_capacity: int = 4096
    shape_bandwidth: bool = True
    # One batched write drains at most this many bytes from an outbox;
    # keeps a single coalesced write from monopolising the link when a
    # burst backs up behind a stall.
    coalesce_max_bytes: int = 262144
    # A data link rides the shm lane only when both directions of the
    # modelled link start at or above this bandwidth. 0.0 = every
    # co-hosted pair qualifies (wire-scaled Mbps are tiny in absolute
    # terms, so an absolute cutoff is only meaningful in tests).
    shm_min_mbps: float = 0.0
    shm_ring_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if min(self.connect_timeout_s, self.send_timeout_s, self.retry_base_s,
               self.retry_max_s, self.heartbeat_interval_s) <= 0:
            raise ValueError("transport timeouts must be positive")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.outbox_capacity < 1:
            raise ValueError("outbox_capacity must be >= 1")
        if self.coalesce_max_bytes < 1:
            raise ValueError("coalesce_max_bytes must be >= 1")
        if self.shm_min_mbps < 0:
            raise ValueError("shm_min_mbps must be >= 0")
        if self.shm_ring_bytes < 4096:
            raise ValueError("shm_ring_bytes must be >= 4096")


class _OutLink:
    """One outgoing (peer, channel) lane with its FIFO outbox."""

    __slots__ = (
        "dst", "channel", "queue", "writer", "ring", "task", "addr",
        "ever_connected", "high_water",
    )

    def __init__(self, dst: int, channel: int, capacity: int):
        self.dst = dst
        self.channel = channel
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.writer: asyncio.StreamWriter | None = None
        self.ring: ShmRing | None = None  # shm lane, else TCP
        self.task: asyncio.Task | None = None
        self.addr: tuple[str, int] | None = None
        self.ever_connected = False  # distinguishes connect vs. reconnect
        self.high_water = 0  # deepest the outbox has ever been


class PeerMesh:
    """One worker's live transport endpoint (server + outgoing links)."""

    def __init__(
        self,
        worker_id: int,
        *,
        on_message: Callable[[int, int, object], None],
        on_peer_dead: Callable[[int], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
        on_heartbeat: Callable[[Heartbeat], None] | None = None,
        rate_fn: Callable[[int], float] | None = None,
        config: TransportConfig | None = None,
        metrics=None,
        tracer=NULL_TRACER,
        now_fn: Callable[[], float] | None = None,
        progress_fn: Callable[[], int] | None = None,
        fault_fn: Callable[[int, int], float | None] | None = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        shm_out: Iterable[int] = (),
        shm_in: Iterable[int] = (),
        shm_token: str = "",
    ):
        self.worker_id = worker_id
        self.host = host
        self.cfg = config if config is not None else TransportConfig()
        self._on_message = on_message
        self._on_peer_dead = on_peer_dead
        self._on_error = on_error
        self._on_heartbeat = on_heartbeat
        self._rate_fn = rate_fn
        self._now_fn = now_fn
        self._progress_fn = progress_fn
        self._fault_fn = fault_fn
        self.tracer = tracer
        self._rng = random.Random(seed * 7919 + worker_id)

        self._server: asyncio.AbstractServer | None = None
        self._out: dict[tuple[int, int], _OutLink] = {}
        self._buckets: dict[int, TokenBucket] = {}
        self._dead: set[int] = set()
        self._graceful: set[int] = set()
        self._closing = False
        self._draining = False  # close() in its flush phase
        self._hb_task: asyncio.Task | None = None
        self._serve_writers: set[asyncio.StreamWriter] = set()
        self._serve_tasks: set[asyncio.Task] = set()

        # Shared-memory lane membership: peers whose data channel rides
        # a ring outbound (we attach) / inbound (we create + poll).
        self._shm_out = frozenset(shm_out)
        self._shm_in = frozenset(shm_in)
        self._shm_token = shm_token
        self._rings_in: dict[int, ShmRing] = {}
        self._ring_tasks: list[asyncio.Task] = []

        # Pooled encode buffers: send() borrows one, the sender task (or
        # any drop path) returns it once the frame view is dead.
        self._pool: list[FrameBuffer] = []

        # Metric families (registered only when a registry is attached,
        # so sim-backend dumps carry no empty transport series). The
        # catalog itself lives in core/run_metrics.py next to the
        # engine's shared families.
        self._m = None
        if metrics is not None:
            self._m = TransportMetrics(metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind the listening socket and create inbound shm rings;
        returns the bound TCP port."""
        self._server = await asyncio.start_server(self._serve, self.host, 0)
        for peer in sorted(self._shm_in):
            ring = ShmRing.create(
                ring_name(self._shm_token, peer, self.worker_id),
                self.cfg.shm_ring_bytes,
            )
            self._rings_in[peer] = ring
            task = asyncio.ensure_future(self._shm_reader(peer, ring))
            task.add_done_callback(self._task_done)
            self._ring_tasks.append(task)
        return self._server.sockets[0].getsockname()[1]

    async def connect(self, port_map: Mapping[int, tuple[str, int]]) -> None:
        """Open control+data links to every peer and start heartbeats.

        ``port_map`` maps worker id to ``(host, port)``; this worker's
        own entry is ignored. Blocks until every link's first connection
        succeeds (or a peer exhausts its retry budget and is declared
        dead). Data links to shm peers attach their outbound ring
        instead of dialling TCP.
        """
        loop = asyncio.get_event_loop()
        waits: list[Awaitable] = []
        for dst, addr in sorted(port_map.items()):
            if dst == self.worker_id:
                continue
            if self._rate_fn is not None and self.cfg.shape_bandwidth:
                self._buckets[dst] = TokenBucket(max(1.0, self._rate_fn(dst)))
            for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
                link = _OutLink(dst, channel, self.cfg.outbox_capacity)
                link.addr = tuple(addr)
                self._out[(dst, channel)] = link
                if channel == CHANNEL_DATA and dst in self._shm_out:
                    # ShmRing.attach retries with blocking sleeps, so it
                    # runs off-loop; the peer creates the ring in start()
                    # before reporting its port, so this resolves fast.
                    link.ring = await loop.run_in_executor(
                        None,
                        functools.partial(
                            ShmRing.attach,
                            ring_name(self._shm_token, self.worker_id, dst),
                            timeout_s=self.cfg.connect_timeout_s,
                        ),
                    )
                else:
                    waits.append(self._ensure_connected(link))
                if channel == CHANNEL_DATA:
                    self._set_lane(dst, "shm" if link.ring is not None else "tcp")
        await asyncio.gather(*waits)
        for link in self._out.values():
            link.task = asyncio.ensure_future(self._sender(link))
            link.task.add_done_callback(self._task_done)
        if self._progress_fn is not None:
            self._hb_task = asyncio.ensure_future(self._heartbeat_loop())
            self._hb_task.add_done_callback(self._task_done)

    async def close(self, *, bye: bool = True, drain_timeout_s: float = 2.0) -> None:
        """Flush outboxes, announce departure, and tear everything down."""
        if bye:
            for dst in self.live_peers():
                self.send(dst, CHANNEL_CONTROL, Bye(self.worker_id))
        # From here on we are departing: a peer that cannot be reached
        # any more (it is tearing down too) is a graceful goodbye, not a
        # crash to surface through on_peer_dead.
        self._draining = True
        # Event-driven drain: every enqueued frame is task_done()'d by
        # its sender once written (or abandoned), so join() resolves the
        # moment an outbox is truly flushed — no polling.
        joins = [
            asyncio.ensure_future(link.queue.join())
            for link in self._out.values()
            if link.dst not in self._dead
        ]
        if joins:
            _, pending = await asyncio.wait(joins, timeout=drain_timeout_s)
            for j in pending:
                j.cancel()
        self._closing = True
        if self._hb_task is not None:
            self._hb_task.cancel()
        for link in self._out.values():
            self._put_close(link)
        tasks = [link.task for link in self._out.values() if link.task is not None]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=drain_timeout_s)
            for t in pending:
                t.cancel()
        for t in self._ring_tasks:
            t.cancel()
        for link in self._out.values():
            if link.writer is not None:
                link.writer.close()
                link.writer = None
            if link.ring is not None:
                link.ring.close()
                link.ring = None
        for ring in self._rings_in.values():
            ring.close()  # creator side: detaches and unlinks
        self._rings_in.clear()
        for w in list(self._serve_writers):
            w.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let the per-connection reader tasks observe their closed
        # transports and unwind; otherwise loop teardown cancels them
        # mid-read and asyncio logs spurious CancelledError callbacks.
        if self._serve_tasks:
            await asyncio.wait(list(self._serve_tasks), timeout=drain_timeout_s)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, channel: int, msg, *, trace_name: str | None = None) -> bool:
        """Enqueue ``msg`` for ``dst`` on ``channel`` (FIFO per link).

        Returns ``False`` — and counts a drop — when the peer is dead,
        the mesh is closing, or the link's outbox is full
        (backpressure); ``True`` means the message is queued, with
        delivery subject to the retry budget.
        """
        if dst in self._dead or self._closing:
            return False
        link = self._out.get((dst, channel))
        if link is None:
            return False
        not_before = 0.0
        if self._fault_fn is not None:
            verdict = self._fault_fn(dst, channel)
            if verdict is None:
                # Injected loss (blackout / drop window): the frame
                # vanishes exactly as the simulator's _deliver drops it.
                return False
            if verdict > 0.0:
                not_before = asyncio.get_event_loop().time() + verdict
        if isinstance(msg, (bytes, bytearray, memoryview)):
            frame, fbuf = bytes(msg), None
        else:
            fbuf = self._pool.pop() if self._pool else FrameBuffer()
            try:
                frame = encode_into(msg, fbuf)
            except CodecError:
                self._release(fbuf)
                raise
        t_enq = asyncio.get_event_loop().time()
        try:
            link.queue.put_nowait((frame, trace_name, not_before, t_enq, fbuf))
        except asyncio.QueueFull:
            self._release(fbuf)
            if self._m:
                self._m.dropped.inc(1, self.worker_id, dst, CHANNEL_NAMES[channel])
            return False
        depth = link.queue.qsize()
        if depth > link.high_water:
            link.high_water = depth
            if self._m:
                self._m.outbox_high_water.set(
                    depth, self.worker_id, dst, CHANNEL_NAMES[channel]
                )
        if self._m:
            self._m.outbox_depth.set(
                depth, self.worker_id, dst, CHANNEL_NAMES[channel]
            )
        return True

    def revive(self, peer: int, addr: tuple[str, int]) -> None:
        """Resurrect ``peer`` at a (possibly new) address.

        Clears the dead/graceful state, rebuilds the token bucket, and
        replaces both channels' links with fresh outboxes and sender
        tasks pointed at ``addr`` — resetting the reconnect episode.
        Safe to call even when the peer was never declared dead (e.g.
        the supervisor respawned it before the retry budget ran out):
        the old links are superseded, and their in-flight retry loops
        unwind without side effects (see :meth:`_ensure_connected`).
        Frames still queued on the old links are abandoned — exactly the
        in-flight loss a real crash implies. Revived links are TCP even
        for shm peers: the respawned process cannot trust a ring whose
        positions the crashed one last wrote.
        """
        if self._closing:
            return
        self._dead.discard(peer)
        self._graceful.discard(peer)
        if self._rate_fn is not None and self.cfg.shape_bandwidth:
            self._buckets[peer] = TokenBucket(max(1.0, self._rate_fn(peer)))
        for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
            old = self._out.get((peer, channel))
            if old is not None:
                self._put_close(old)
                self._drop_writer(old)
                if old.ring is not None:
                    old.ring.close()
                    old.ring = None
            link = _OutLink(peer, channel, self.cfg.outbox_capacity)
            link.addr = tuple(addr)
            self._out[(peer, channel)] = link
            link.task = asyncio.ensure_future(self._sender(link))
            link.task.add_done_callback(self._task_done)
        self._set_lane(peer, "tcp")
        if self._m:
            self._m.revives.inc(1, self.worker_id, peer)
        if self.tracer.enabled:
            self.tracer.instant(
                "peer-revived",
                self.worker_id,
                TID_NET,
                self._now_fn() if self._now_fn is not None else 0.0,
                cat="net",
                args={"peer": peer, "addr": f"{addr[0]}:{addr[1]}"},
            )

    def live_peers(self) -> list[int]:
        """Peers not (yet) declared dead, in ascending id order."""
        return sorted({dst for dst, _ in self._out} - self._dead)

    def is_dead(self, peer: int) -> bool:
        """Whether ``peer`` has been declared dead."""
        return peer in self._dead

    # ------------------------------------------------------------------
    # Internals: outgoing side
    # ------------------------------------------------------------------
    def _release(self, fbuf: FrameBuffer | None) -> None:
        if fbuf is not None and len(self._pool) < _POOL_MAX:
            self._pool.append(fbuf)

    @staticmethod
    def _put_close(link: _OutLink) -> None:
        """Wake ``link``'s sender with the shutdown sentinel. The
        sentinel is not work: its unfinished-count contribution is
        balanced here so ``queue.join()`` only tracks real frames."""
        try:
            link.queue.put_nowait(_CLOSE)
            link.queue.task_done()
        except asyncio.QueueFull:
            pass

    def _set_lane(self, dst: int, lane: str) -> None:
        if self._m:
            self._m.lane.set(1.0 if lane == "shm" else 0.0, self.worker_id, dst, "shm")
            self._m.lane.set(1.0 if lane == "tcp" else 0.0, self.worker_id, dst, "tcp")

    async def _sender(self, link: _OutLink) -> None:
        loop = asyncio.get_event_loop()
        carry = None  # dequeued head whose injected delay hasn't elapsed
        while True:
            if carry is not None:
                item, carry = carry, None
            else:
                item = await link.queue.get()
            if item is _CLOSE:
                return  # already balanced by _put_close
            if item[2]:
                # Injected latency: hold the FIFO head back, so ordering
                # is preserved (later frames queue behind the delay).
                pause = item[2] - loop.time()
                if pause > 0:
                    await asyncio.sleep(pause)
            # Coalesce: drain whatever else is already queued into one
            # batched write, bounded by coalesce_max_bytes. A delayed
            # frame ends the batch (it must wait; order is preserved by
            # carrying it into the next round).
            batch = [item]
            batch_bytes = len(item[0])
            close_after = False
            while batch_bytes < self.cfg.coalesce_max_bytes:
                try:
                    nxt = link.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _CLOSE:
                    close_after = True
                    break
                if nxt[2] and nxt[2] > loop.time():
                    carry = nxt
                    break
                batch.append(nxt)
                batch_bytes += len(nxt[0])
            ok = await self._send_batch(link, batch, batch_bytes)
            for it in batch:
                link.queue.task_done()
                self._release(it[4])
            if not ok:
                if carry is not None:
                    link.queue.task_done()
                    self._release(carry[4])
                return  # dead / superseded / closing; outbox abandoned
            if close_after:
                return

    async def _send_batch(self, link: _OutLink, batch: list, batch_bytes: int) -> bool:
        """Write ``batch`` (one or more frames) as a single transport
        operation; returns ``False`` when the link is defunct."""
        loop = asyncio.get_event_loop()
        while True:
            if link.ring is None and not await self._ensure_connected(link):
                return False
            bucket = self._buckets.get(link.dst)
            t0_sim = self._now_fn() if self._now_fn is not None else 0.0
            if bucket is not None:
                if self._rate_fn is not None:
                    bucket.set_rate(max(1.0, self._rate_fn(link.dst)))
                # One charge for the whole batch: the modelled link pays
                # for every byte exactly once, and the stall counter
                # reflects the real sleep the batch produced.
                stalled = await bucket.throttle(batch_bytes)
                if stalled > 0 and self._m:
                    self._m.stall_seconds.inc(stalled, self.worker_id, link.dst)
            if link.ring is not None:
                if not await self._push_ring(link, batch):
                    if link.ring is None:
                        continue  # demoted to TCP mid-batch; resend there
                    return False
            else:
                try:
                    with _profile.scope("transport/send_bytes"):
                        if len(batch) > 1:
                            link.writer.writelines([it[0] for it in batch])
                        else:
                            link.writer.write(batch[0][0])
                        await asyncio.wait_for(
                            link.writer.drain(), self.cfg.send_timeout_s
                        )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    self._drop_writer(link)
                    continue  # re-enter the connect/retry path
            break
        if self._m:
            ch = CHANNEL_NAMES[link.channel]
            self._m.send_bytes.inc(batch_bytes, self.worker_id, link.dst, ch)
            self._m.send_msgs.inc(len(batch), self.worker_id, link.dst, ch)
            if len(batch) > 1:
                self._m.coalesced.inc(len(batch), self.worker_id, link.dst, ch)
            self._m.outbox_depth.set(
                link.queue.qsize(), self.worker_id, link.dst, ch
            )
            t_done = loop.time()
            for frame, _tn, _nb, t_enq, _fb in batch:
                self._m.h_frame_bytes.observe(
                    len(frame), self.worker_id, link.dst, ch
                )
                self._m.h_frame_latency.observe(
                    max(t_done - t_enq, 0.0), self.worker_id, link.dst, ch
                )
        if self.tracer.enabled and self._now_fn is not None:
            t1_sim = self._now_fn()
            dur = max(t1_sim - t0_sim, 0.0)
            for frame, trace_name, _nb, _t_enq, _fb in batch:
                self.tracer.complete(
                    trace_name or f"send->{link.dst}",
                    self.worker_id,
                    TID_NET,
                    t0_sim,
                    dur,
                    cat="net",
                    args={"dst": link.dst, "bytes": len(frame)},
                )
        return True

    async def _push_ring(self, link: _OutLink, batch: list) -> bool:
        """Push a batch onto the link's outbound ring, backing off while
        the consumer catches up. A frame too large for the ring demotes
        the link to TCP (after the ring drains, to preserve order);
        returns ``False`` with ``link.ring`` cleared in that case so the
        caller re-sends over TCP."""
        frames = [it[0] for it in batch]
        backoff = _POLL_MIN_S
        while True:
            try:
                with _profile.scope("transport/send_bytes"):
                    if link.ring.push_many(frames):
                        return True
            except ShmRingError:
                await self._demote_to_tcp(link)
                return False
            if (link.dst in self._dead or self._closing
                    or self._superseded(link)):
                return False
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2.0, _POLL_MAX_S)

    async def _demote_to_tcp(self, link: _OutLink) -> None:
        """Retire a link's shm lane: wait for the consumer to drain the
        ring (bounded), then detach — subsequent writes dial TCP."""
        ring, link.ring = link.ring, None
        deadline = asyncio.get_event_loop().time() + self.cfg.send_timeout_s
        while (ring.pending_bytes() > 0
               and asyncio.get_event_loop().time() < deadline
               and link.dst not in self._dead
               and not self._closing):
            await asyncio.sleep(_POLL_MIN_S)
        ring.close()
        self._set_lane(link.dst, "tcp")

    def _task_done(self, task: asyncio.Task) -> None:
        """Surface an unexpected sender/heartbeat crash instead of a stall.

        A transport task that dies with an exception would otherwise
        leave its outbox quietly backing up forever; route the failure
        to ``on_error`` (the live runtime fails the whole run) or
        re-raise into the event loop's exception handler.
        """
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None or self._closing:
            return
        if self._on_error is not None:
            self._on_error(exc)
        else:
            raise exc

    def _drop_writer(self, link: _OutLink) -> None:
        if link.writer is not None:
            try:
                link.writer.close()
            except Exception:
                pass
            link.writer = None

    def _superseded(self, link: _OutLink) -> bool:
        """Whether ``link`` was replaced by :meth:`revive` — its retry
        loop must unwind without declaring the (revived) peer dead."""
        return self._out.get((link.dst, link.channel)) is not link

    async def _ensure_connected(self, link: _OutLink) -> bool:
        if self._superseded(link):
            return False
        if link.writer is not None:
            return True
        if link.dst in self._dead or self._closing:
            return False
        with _profile.scope("transport/connect"):
            for attempt in range(self.cfg.retry_attempts):
                if self._closing or self._superseded(link):
                    return False
                try:
                    host, port = link.addr
                    _, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        self.cfg.connect_timeout_s,
                    )
                    writer.write(encode_message(Hello(self.worker_id, link.channel)))
                    await writer.drain()
                    link.writer = writer
                    if self._m:
                        self._m.connects.inc(1, self.worker_id, link.dst)
                        if link.ever_connected:
                            self._m.reconnects.inc(1, self.worker_id, link.dst)
                    link.ever_connected = True
                    return True
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    if self._m:
                        self._m.retries.inc(1, self.worker_id, link.dst)
                    # Exponential backoff with jitter.
                    delay = min(
                        self.cfg.retry_max_s,
                        self.cfg.retry_base_s * (2.0 ** attempt),
                    ) * (0.5 + self._rng.random())
                    await asyncio.sleep(delay)
        if not self._superseded(link):
            self._declare_dead(link.dst)
        return False

    def _declare_dead(self, peer: int) -> None:
        if peer in self._dead:
            return
        self._dead.add(peer)
        for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
            link = self._out.get((peer, channel))
            if link is None:
                continue
            dropped = 0
            while not link.queue.empty():
                item = link.queue.get_nowait()
                if item is not _CLOSE:
                    link.queue.task_done()
                    dropped += 1
                    self._release(item[4])
            if dropped and self._m:
                self._m.dropped.inc(
                    dropped, self.worker_id, peer, CHANNEL_NAMES[channel]
                )
            self._put_close(link)
            self._drop_writer(link)
        graceful = peer in self._graceful or self._closing or self._draining
        if self.tracer.enabled:
            self.tracer.instant(
                "peer-dead" if not graceful else "peer-bye",
                self.worker_id,
                TID_NET,
                self._now_fn() if self._now_fn is not None else 0.0,
                cat="net",
                args={"peer": peer},
            )
        if not graceful and self._on_peer_dead is not None:
            self._on_peer_dead(peer)

    # ------------------------------------------------------------------
    # Internals: heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.cfg.heartbeat_interval_s)
            sim_now = self._now_fn() if self._now_fn is not None else 0.0
            hb = Heartbeat(
                self.worker_id, int(self._progress_fn()), sim_now,
                wall=asyncio.get_event_loop().time(),
            )
            for dst in self.live_peers():
                self.send(dst, CHANNEL_CONTROL, hb)
            if self._m:
                self._m.heartbeats.inc(1, self.worker_id)

    # ------------------------------------------------------------------
    # Internals: incoming side
    # ------------------------------------------------------------------
    async def _shm_reader(self, peer: int, ring: ShmRing) -> None:
        """Poll one inbound ring, dispatching frames like a data-channel
        socket reader would. Polling is adaptive: sub-millisecond while
        traffic flows, decaying toward ``_POLL_MAX_S`` when idle."""
        backoff = _POLL_MIN_S
        while not self._closing:
            records = ring.pop_all()
            if not records:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, _POLL_MAX_S)
                continue
            backoff = _POLL_MIN_S
            for rec in records:
                try:
                    msg = decode_message(rec)
                except CodecError:
                    # Same stance as the socket reader: a garbage stream
                    # is dropped, liveness is the control channel's job.
                    return
                self._on_message(peer, CHANNEL_DATA, msg)
            # Yield between drains so a flooded ring cannot starve the
            # event loop (pop_all caps records per call already).
            await asyncio.sleep(0)

    async def _read_frame(self, reader: asyncio.StreamReader):
        header = await reader.readexactly(FRAME_HEADER_BYTES)
        msg_type, body_len = decode_frame_header(header)
        body = await reader.readexactly(body_len)
        return decode_body(msg_type, body)

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
        self._serve_writers.add(writer)
        peer = channel = None
        try:
            hello = await self._read_frame(reader)
            if not isinstance(hello, Hello):
                return
            peer, channel = hello.sender, hello.channel
            while True:
                msg = await self._read_frame(reader)
                if isinstance(msg, Heartbeat):
                    if msg.wall:
                        # Echo the sender's wall timestamp so it can
                        # measure a full round trip (its clock, both
                        # ends — no cross-process clock comparison).
                        self.send(
                            msg.sender, CHANNEL_CONTROL,
                            HeartbeatAck(self.worker_id, msg.wall),
                        )
                    if self._on_heartbeat is not None:
                        self._on_heartbeat(msg)
                    continue
                if isinstance(msg, HeartbeatAck):
                    if self._m:
                        rtt = asyncio.get_event_loop().time() - msg.echo_wall
                        if rtt >= 0:
                            self._m.hb_rtt.set(rtt, self.worker_id, msg.sender)
                    continue
                if isinstance(msg, Bye):
                    self._graceful.add(msg.sender)
                    continue
                if isinstance(msg, Hello):
                    continue
                self._on_message(peer, channel, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, CodecError):
            pass  # connection gone or garbage stream; outgoing side decides death
        finally:
            self._serve_writers.discard(writer)
            if task is not None:
                self._serve_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass
