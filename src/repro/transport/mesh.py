"""Asyncio TCP peer mesh with control/data channels per peer.

The prototype gives every worker pair two Redis queues — a control
queue for signalling and a data queue for gradients and weights (paper
§4.2). The live backend mirrors that: each worker runs one
:class:`PeerMesh` that listens on a loopback/LAN TCP port and opens two
outgoing connections (``CHANNEL_CONTROL``, ``CHANNEL_DATA``) to every
peer, identified by a :class:`~repro.transport.codec.Hello` handshake.

Reliability mechanics:

* **connect/retry** — outgoing connections (re)connect with exponential
  backoff plus jitter, bounded by a per-episode attempt budget;
* **per-message timeouts** — every write is bounded by
  ``send_timeout_s``; a timeout tears the connection down and re-enters
  the retry path;
* **heartbeats** — a periodic beacon on every control channel carries
  liveness plus the sender's training progress (the live GBS
  controller's input);
* **dead peers** — once a reconnect episode exhausts its budget the
  peer is declared dead and surfaced through ``on_peer_dead`` — the
  runtime turns that into a membership change
  (:meth:`repro.core.worker.Worker.on_membership_change`), exactly like
  the simulator's churn events. A peer that announced
  :class:`~repro.transport.codec.Bye` first is treated as a graceful
  departure and produces no callback;
* **resurrection** — :meth:`PeerMesh.revive` clears a peer's dead
  state, installs fresh outgoing links at its (new) address, and resets
  the reconnect episode — the supervisor's rejoin path after a crashed
  worker is respawned (docs/robustness.md). A superseded link's retry
  loop can never declare the revived peer dead again;
* **fault injection** — an optional ``fault_fn(dst, channel)`` is
  consulted on every send: ``None`` silently drops the frame (blackout
  / drop windows of a chaos plan), a positive value delays the actual
  socket write by that many wall seconds. The delay is applied by the
  link's FIFO sender task, so ordering is preserved (head-of-line
  blocking, exactly like real added latency on one TCP stream).

Outgoing bytes pass through a per-peer :class:`TokenBucket` so the
modelled link bandwidth (Table 3, wire-scaled, sped up by the run's
wall-clock factor) is enforced on the real socket. Transfers are
recorded through the shared ``obs`` surfaces: ``transport_*`` metric
families, ``transport/connect`` / ``transport/send_bytes`` profiler
scopes, and per-transfer spans on the worker's ``net-out`` trace
thread.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Mapping

from repro.core.run_metrics import TransportMetrics
from repro.obs import profile as _profile
from repro.obs.trace import NULL_TRACER, TID_NET
from repro.transport.codec import (
    Bye,
    CodecError,
    FRAME_HEADER_BYTES,
    Heartbeat,
    HeartbeatAck,
    Hello,
    decode_body,
    decode_frame_header,
    encode_message,
)
from repro.transport.shaper import TokenBucket

__all__ = ["CHANNEL_CONTROL", "CHANNEL_DATA", "CHANNEL_NAMES", "TransportConfig", "PeerMesh"]

CHANNEL_CONTROL = 0
CHANNEL_DATA = 1
CHANNEL_NAMES = {CHANNEL_CONTROL: "control", CHANNEL_DATA: "data"}

_CLOSE = object()  # sender-task shutdown sentinel


@dataclass(frozen=True)
class TransportConfig:
    """Tunables for the live transport (timeouts, retries, heartbeats)."""

    connect_timeout_s: float = 5.0
    send_timeout_s: float = 10.0
    retry_base_s: float = 0.05
    retry_max_s: float = 1.0
    retry_attempts: int = 6
    heartbeat_interval_s: float = 0.2
    outbox_capacity: int = 4096
    shape_bandwidth: bool = True

    def __post_init__(self) -> None:
        if min(self.connect_timeout_s, self.send_timeout_s, self.retry_base_s,
               self.retry_max_s, self.heartbeat_interval_s) <= 0:
            raise ValueError("transport timeouts must be positive")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.outbox_capacity < 1:
            raise ValueError("outbox_capacity must be >= 1")


class _OutLink:
    """One outgoing (peer, channel) connection with its FIFO outbox."""

    __slots__ = (
        "dst", "channel", "queue", "writer", "task", "addr",
        "ever_connected", "high_water",
    )

    def __init__(self, dst: int, channel: int, capacity: int):
        self.dst = dst
        self.channel = channel
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None
        self.addr: tuple[str, int] | None = None
        self.ever_connected = False  # distinguishes connect vs. reconnect
        self.high_water = 0  # deepest the outbox has ever been


class PeerMesh:
    """One worker's live transport endpoint (server + outgoing links)."""

    def __init__(
        self,
        worker_id: int,
        *,
        on_message: Callable[[int, int, object], None],
        on_peer_dead: Callable[[int], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
        on_heartbeat: Callable[[Heartbeat], None] | None = None,
        rate_fn: Callable[[int], float] | None = None,
        config: TransportConfig | None = None,
        metrics=None,
        tracer=NULL_TRACER,
        now_fn: Callable[[], float] | None = None,
        progress_fn: Callable[[], int] | None = None,
        fault_fn: Callable[[int, int], float | None] | None = None,
        seed: int = 0,
        host: str = "127.0.0.1",
    ):
        self.worker_id = worker_id
        self.host = host
        self.cfg = config if config is not None else TransportConfig()
        self._on_message = on_message
        self._on_peer_dead = on_peer_dead
        self._on_error = on_error
        self._on_heartbeat = on_heartbeat
        self._rate_fn = rate_fn
        self._now_fn = now_fn
        self._progress_fn = progress_fn
        self._fault_fn = fault_fn
        self.tracer = tracer
        self._rng = random.Random(seed * 7919 + worker_id)

        self._server: asyncio.AbstractServer | None = None
        self._out: dict[tuple[int, int], _OutLink] = {}
        self._buckets: dict[int, TokenBucket] = {}
        self._dead: set[int] = set()
        self._graceful: set[int] = set()
        self._closing = False
        self._hb_task: asyncio.Task | None = None
        self._serve_writers: set[asyncio.StreamWriter] = set()
        self._serve_tasks: set[asyncio.Task] = set()

        # Metric families (registered only when a registry is attached,
        # so sim-backend dumps carry no empty transport series). The
        # catalog itself lives in core/run_metrics.py next to the
        # engine's shared families.
        self._m = None
        if metrics is not None:
            self._m = TransportMetrics(metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind the listening socket; returns the bound TCP port."""
        self._server = await asyncio.start_server(self._serve, self.host, 0)
        return self._server.sockets[0].getsockname()[1]

    async def connect(self, port_map: Mapping[int, tuple[str, int]]) -> None:
        """Open control+data links to every peer and start heartbeats.

        ``port_map`` maps worker id to ``(host, port)``; this worker's
        own entry is ignored. Blocks until every link's first connection
        succeeds (or a peer exhausts its retry budget and is declared
        dead).
        """
        waits: list[Awaitable] = []
        for dst, addr in sorted(port_map.items()):
            if dst == self.worker_id:
                continue
            if self._rate_fn is not None and self.cfg.shape_bandwidth:
                self._buckets[dst] = TokenBucket(max(1.0, self._rate_fn(dst)))
            for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
                link = _OutLink(dst, channel, self.cfg.outbox_capacity)
                link.addr = tuple(addr)
                self._out[(dst, channel)] = link
                waits.append(self._ensure_connected(link))
        results = await asyncio.gather(*waits)
        for link in self._out.values():
            link.task = asyncio.ensure_future(self._sender(link))
            link.task.add_done_callback(self._task_done)
        if self._progress_fn is not None:
            self._hb_task = asyncio.ensure_future(self._heartbeat_loop())
            self._hb_task.add_done_callback(self._task_done)
        if not all(results):
            # Dead peers were already declared inside _ensure_connected.
            pass

    async def close(self, *, bye: bool = True, drain_timeout_s: float = 2.0) -> None:
        """Flush outboxes, announce departure, and tear everything down."""
        if bye:
            for dst in self.live_peers():
                self.send(dst, CHANNEL_CONTROL, Bye(self.worker_id))
        deadline = asyncio.get_event_loop().time() + drain_timeout_s
        for link in self._out.values():
            while (not link.queue.empty()
                   and link.dst not in self._dead
                   and asyncio.get_event_loop().time() < deadline):
                await asyncio.sleep(0.01)
        self._closing = True
        if self._hb_task is not None:
            self._hb_task.cancel()
        for link in self._out.values():
            try:
                link.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                pass
        tasks = [link.task for link in self._out.values() if link.task is not None]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_timeout_s)
            for t in pending:
                t.cancel()
        for link in self._out.values():
            if link.writer is not None:
                link.writer.close()
                link.writer = None
        for w in list(self._serve_writers):
            w.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let the per-connection reader tasks observe their closed
        # transports and unwind; otherwise loop teardown cancels them
        # mid-read and asyncio logs spurious CancelledError callbacks.
        if self._serve_tasks:
            await asyncio.wait(list(self._serve_tasks), timeout=drain_timeout_s)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, channel: int, msg, *, trace_name: str | None = None) -> bool:
        """Enqueue ``msg`` for ``dst`` on ``channel`` (FIFO per link).

        Returns ``False`` — and counts a drop — when the peer is dead,
        the mesh is closing, or the link's outbox is full
        (backpressure); ``True`` means the message is queued, with
        delivery subject to the retry budget.
        """
        if dst in self._dead or self._closing:
            return False
        not_before = 0.0
        if self._fault_fn is not None:
            verdict = self._fault_fn(dst, channel)
            if verdict is None:
                # Injected loss (blackout / drop window): the frame
                # vanishes exactly as the simulator's _deliver drops it.
                return False
            if verdict > 0.0:
                not_before = asyncio.get_event_loop().time() + verdict
        frame = msg if isinstance(msg, (bytes, bytearray)) else encode_message(msg)
        link = self._out.get((dst, channel))
        if link is None:
            return False
        t_enq = asyncio.get_event_loop().time()
        try:
            link.queue.put_nowait((bytes(frame), trace_name, not_before, t_enq))
        except asyncio.QueueFull:
            if self._m:
                self._m.dropped.inc(1, self.worker_id, dst, CHANNEL_NAMES[channel])
            return False
        depth = link.queue.qsize()
        if depth > link.high_water:
            link.high_water = depth
            if self._m:
                self._m.outbox_high_water.set(
                    depth, self.worker_id, dst, CHANNEL_NAMES[channel]
                )
        if self._m:
            self._m.outbox_depth.set(
                depth, self.worker_id, dst, CHANNEL_NAMES[channel]
            )
        return True

    def revive(self, peer: int, addr: tuple[str, int]) -> None:
        """Resurrect ``peer`` at a (possibly new) address.

        Clears the dead/graceful state, rebuilds the token bucket, and
        replaces both channels' links with fresh outboxes and sender
        tasks pointed at ``addr`` — resetting the reconnect episode.
        Safe to call even when the peer was never declared dead (e.g.
        the supervisor respawned it before the retry budget ran out):
        the old links are superseded, and their in-flight retry loops
        unwind without side effects (see :meth:`_ensure_connected`).
        Frames still queued on the old links are abandoned — exactly the
        in-flight loss a real crash implies.
        """
        if self._closing:
            return
        self._dead.discard(peer)
        self._graceful.discard(peer)
        if self._rate_fn is not None and self.cfg.shape_bandwidth:
            self._buckets[peer] = TokenBucket(max(1.0, self._rate_fn(peer)))
        for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
            old = self._out.get((peer, channel))
            if old is not None:
                try:
                    old.queue.put_nowait(_CLOSE)
                except asyncio.QueueFull:
                    pass
                self._drop_writer(old)
            link = _OutLink(peer, channel, self.cfg.outbox_capacity)
            link.addr = tuple(addr)
            self._out[(peer, channel)] = link
            link.task = asyncio.ensure_future(self._sender(link))
            link.task.add_done_callback(self._task_done)
        if self._m:
            self._m.revives.inc(1, self.worker_id, peer)
        if self.tracer.enabled:
            self.tracer.instant(
                "peer-revived",
                self.worker_id,
                TID_NET,
                self._now_fn() if self._now_fn is not None else 0.0,
                cat="net",
                args={"peer": peer, "addr": f"{addr[0]}:{addr[1]}"},
            )

    def live_peers(self) -> list[int]:
        """Peers not (yet) declared dead, in ascending id order."""
        return sorted({dst for dst, _ in self._out} - self._dead)

    def is_dead(self, peer: int) -> bool:
        """Whether ``peer`` has been declared dead."""
        return peer in self._dead

    # ------------------------------------------------------------------
    # Internals: outgoing side
    # ------------------------------------------------------------------
    async def _sender(self, link: _OutLink) -> None:
        while True:
            item = await link.queue.get()
            if item is _CLOSE:
                return
            frame, trace_name, not_before, t_enq = item
            if not_before:
                # Injected latency: hold the FIFO head back, so ordering
                # is preserved (later frames queue behind the delay).
                pause = not_before - asyncio.get_event_loop().time()
                if pause > 0:
                    await asyncio.sleep(pause)
            while True:
                if not await self._ensure_connected(link):
                    return  # peer dead or link superseded; outbox abandoned
                bucket = self._buckets.get(link.dst)
                t0_sim = self._now_fn() if self._now_fn is not None else 0.0
                if bucket is not None:
                    if self._rate_fn is not None:
                        bucket.set_rate(max(1.0, self._rate_fn(link.dst)))
                    stalled = await bucket.throttle(len(frame))
                    if stalled > 0 and self._m:
                        self._m.stall_seconds.inc(
                            stalled, self.worker_id, link.dst
                        )
                try:
                    with _profile.scope("transport/send_bytes"):
                        link.writer.write(frame)
                        await asyncio.wait_for(
                            link.writer.drain(), self.cfg.send_timeout_s
                        )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    self._drop_writer(link)
                    continue  # re-enter the connect/retry path
                break
            if self._m:
                ch = CHANNEL_NAMES[link.channel]
                self._m.send_bytes.inc(len(frame), self.worker_id, link.dst, ch)
                self._m.send_msgs.inc(1, self.worker_id, link.dst, ch)
                self._m.outbox_depth.set(
                    link.queue.qsize(), self.worker_id, link.dst, ch
                )
                self._m.h_frame_bytes.observe(
                    len(frame), self.worker_id, link.dst, ch
                )
                self._m.h_frame_latency.observe(
                    max(asyncio.get_event_loop().time() - t_enq, 0.0),
                    self.worker_id, link.dst, ch,
                )
            if self.tracer.enabled and self._now_fn is not None:
                t1_sim = self._now_fn()
                self.tracer.complete(
                    trace_name or f"send->{link.dst}",
                    self.worker_id,
                    TID_NET,
                    t0_sim,
                    max(t1_sim - t0_sim, 0.0),
                    cat="net",
                    args={"dst": link.dst, "bytes": len(frame)},
                )

    def _task_done(self, task: asyncio.Task) -> None:
        """Surface an unexpected sender/heartbeat crash instead of a stall.

        A transport task that dies with an exception would otherwise
        leave its outbox quietly backing up forever; route the failure
        to ``on_error`` (the live runtime fails the whole run) or
        re-raise into the event loop's exception handler.
        """
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None or self._closing:
            return
        if self._on_error is not None:
            self._on_error(exc)
        else:
            raise exc

    def _drop_writer(self, link: _OutLink) -> None:
        if link.writer is not None:
            try:
                link.writer.close()
            except Exception:
                pass
            link.writer = None

    def _superseded(self, link: _OutLink) -> bool:
        """Whether ``link`` was replaced by :meth:`revive` — its retry
        loop must unwind without declaring the (revived) peer dead."""
        return self._out.get((link.dst, link.channel)) is not link

    async def _ensure_connected(self, link: _OutLink) -> bool:
        if self._superseded(link):
            return False
        if link.writer is not None:
            return True
        if link.dst in self._dead or self._closing:
            return False
        with _profile.scope("transport/connect"):
            for attempt in range(self.cfg.retry_attempts):
                if self._closing or self._superseded(link):
                    return False
                try:
                    host, port = link.addr
                    _, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        self.cfg.connect_timeout_s,
                    )
                    writer.write(encode_message(Hello(self.worker_id, link.channel)))
                    await writer.drain()
                    link.writer = writer
                    if self._m:
                        self._m.connects.inc(1, self.worker_id, link.dst)
                        if link.ever_connected:
                            self._m.reconnects.inc(1, self.worker_id, link.dst)
                    link.ever_connected = True
                    return True
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    if self._m:
                        self._m.retries.inc(1, self.worker_id, link.dst)
                    # Exponential backoff with jitter.
                    delay = min(
                        self.cfg.retry_max_s,
                        self.cfg.retry_base_s * (2.0 ** attempt),
                    ) * (0.5 + self._rng.random())
                    await asyncio.sleep(delay)
        if not self._superseded(link):
            self._declare_dead(link.dst)
        return False

    def _declare_dead(self, peer: int) -> None:
        if peer in self._dead:
            return
        self._dead.add(peer)
        for channel in (CHANNEL_CONTROL, CHANNEL_DATA):
            link = self._out.get((peer, channel))
            if link is None:
                continue
            dropped = 0
            while not link.queue.empty():
                if link.queue.get_nowait() is not _CLOSE:
                    dropped += 1
            if dropped and self._m:
                self._m.dropped.inc(
                    dropped, self.worker_id, peer, CHANNEL_NAMES[channel]
                )
            try:
                link.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                pass
            self._drop_writer(link)
        graceful = peer in self._graceful or self._closing
        if self.tracer.enabled:
            self.tracer.instant(
                "peer-dead" if not graceful else "peer-bye",
                self.worker_id,
                TID_NET,
                self._now_fn() if self._now_fn is not None else 0.0,
                cat="net",
                args={"peer": peer},
            )
        if not graceful and self._on_peer_dead is not None:
            self._on_peer_dead(peer)

    # ------------------------------------------------------------------
    # Internals: heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.cfg.heartbeat_interval_s)
            sim_now = self._now_fn() if self._now_fn is not None else 0.0
            hb = Heartbeat(
                self.worker_id, int(self._progress_fn()), sim_now,
                wall=asyncio.get_event_loop().time(),
            )
            for dst in self.live_peers():
                self.send(dst, CHANNEL_CONTROL, hb)
            if self._m:
                self._m.heartbeats.inc(1, self.worker_id)

    # ------------------------------------------------------------------
    # Internals: incoming side
    # ------------------------------------------------------------------
    async def _read_frame(self, reader: asyncio.StreamReader):
        header = await reader.readexactly(FRAME_HEADER_BYTES)
        msg_type, body_len = decode_frame_header(header)
        body = await reader.readexactly(body_len)
        return decode_body(msg_type, body)

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
        self._serve_writers.add(writer)
        peer = channel = None
        try:
            hello = await self._read_frame(reader)
            if not isinstance(hello, Hello):
                return
            peer, channel = hello.sender, hello.channel
            while True:
                msg = await self._read_frame(reader)
                if isinstance(msg, Heartbeat):
                    if msg.wall:
                        # Echo the sender's wall timestamp so it can
                        # measure a full round trip (its clock, both
                        # ends — no cross-process clock comparison).
                        self.send(
                            msg.sender, CHANNEL_CONTROL,
                            HeartbeatAck(self.worker_id, msg.wall),
                        )
                    if self._on_heartbeat is not None:
                        self._on_heartbeat(msg)
                    continue
                if isinstance(msg, HeartbeatAck):
                    if self._m:
                        rtt = asyncio.get_event_loop().time() - msg.echo_wall
                        if rtt >= 0:
                            self._m.hb_rtt.set(rtt, self.worker_id, msg.sender)
                    continue
                if isinstance(msg, Bye):
                    self._graceful.add(msg.sender)
                    continue
                if isinstance(msg, Hello):
                    continue
                self._on_message(peer, channel, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, CodecError):
            pass  # connection gone or garbage stream; outgoing side decides death
        finally:
            self._serve_writers.discard(writer)
            if task is not None:
                self._serve_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass
